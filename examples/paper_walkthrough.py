"""A guided tour of the paper's explanatory figures (1-4).

Run:  python examples/paper_walkthrough.py

* Figure 1 - the trivial bit-string embedding gated on a secret input;
* Figure 2 - tracing GCD and decoding the trace bit-string;
* Figure 3 - splitting W = 17 over p = (2, 3, 5) via the CRT;
* Figure 4 - recombining after an attack corrupts one statement.
"""

from repro.bytecode_wm import WatermarkKey, embed, trace_bitstring
from repro.core.bitstring import decode_bits
from repro.core.crt import Congruence, generalized_crt
from repro.core.enumeration import Statement
from repro.core.recovery import _resolve_conflicts  # noqa: the tour pokes inside
from repro.core.splitting import split
from repro.vm import run_module
from repro.workloads import argc_secret_module, gcd_module


def figure_1() -> None:
    print("=" * 64)
    print("Figure 1: watermark code gated on the secret input")
    module = argc_secret_module()
    # argc == 3 is the secret input; the watermark path only runs then.
    for argc in (1, 2, 3):
        out = run_module(module, [argc]).output
        print(f"  argc={argc}: output={out}"
              + ("   <- watermark path taken" if out else ""))


def figure_2() -> None:
    print("=" * 64)
    print("Figure 2: tracing GCD(25, 10) and decoding the bit-string")
    module = gcd_module()
    result = run_module(module, [25, 10], trace_mode="branch")
    bits = decode_bits(result.trace.branch_pairs())
    print(f"  output: {result.output}")
    print(f"  {len(result.trace.branches)} conditional-branch events")
    print(f"  trace bit-string: {''.join(map(str, bits))}")

    # And the real thing: embedding makes the bit-string carry pieces.
    key = WatermarkKey(secret=b"walkthrough", inputs=[25, 10])
    marked = embed(module, 17, key, pieces=4, watermark_bits=8)
    marked_bits = trace_bitstring(marked.module, key)
    print(f"  after embedding W=17: {len(marked_bits)} trace bits "
          f"(was {len(bits)})")


def figure_3() -> None:
    print("=" * 64)
    print("Figure 3: splitting W = 17 with p1=2, p2=3, p3=5")
    moduli = [2, 3, 5]
    statements = split(17, moduli, piece_count=3)
    for s in statements:
        print(f"  W = {s.x} mod {moduli[s.i]}*{moduli[s.j]} "
              f"(= {s.modulus(moduli)})")


def figure_4() -> None:
    print("=" * 64)
    print("Figure 4: recombination despite a corrupted statement")
    moduli = [2, 3, 5]
    genuine = split(17, moduli, piece_count=3)
    # The attack of Figure 4: one statement decodes to a wrong value,
    # plus an unrelated junk block appears.
    corrupted = Statement(1, 2, (17 + 1) % 15)   # wrong W mod p2 p3
    noise = Statement(0, 1, 2)                   # junk: W = 2 mod 6
    pool = [s for s in genuine if not (s.i == 1 and s.j == 2)]
    pool += [corrupted, noise]

    from collections import Counter
    counts = Counter({s: 1 for s in pool})
    accepted = _resolve_conflicts(list(counts), counts, moduli)
    combined = generalized_crt(s.congruence(moduli) for s in accepted)
    print(f"  statements in play: {len(pool)} "
          f"(1 corrupted, 1 unrelated)")
    print(f"  accepted after G/H elimination: {len(accepted)}")
    print(f"  recombined: W = {combined.value} (mod {combined.modulus})")
    assert combined.value == 17

    # Why the real scheme uses ~20-bit primes rather than 2, 3, 5: with
    # tiny primes a junk statement has a good chance of *agreeing* with
    # a corrupted one mod some shared prime, and the coalition can win
    # the consistency contest ("if the p's are large, it is unlikely
    # for statements about W to agree mod p_i at random").
    colluding = Statement(0, 1, 0)  # agrees with `corrupted` mod 3
    pool2 = [s for s in pool if s != noise] + [colluding]
    counts2 = Counter({s: 1 for s in pool2})
    accepted2 = _resolve_conflicts(list(counts2), counts2, moduli)
    combined2 = generalized_crt(s.congruence(moduli) for s in accepted2)
    print(f"  with a *colluding* junk statement instead: "
          f"W = {combined2.value} (mod {combined2.modulus}) "
          f"- tiny primes can be beaten, large ones cannot")


if __name__ == "__main__":
    figure_1()
    figure_2()
    figure_3()
    figure_4()
    print("=" * 64)
    print("walkthrough complete")
