"""Fingerprinting: tracing a leaked copy back to its customer.

Run:  python examples/fingerprinting.py

Both of the paper's implementations are *fingerprinting* schemes:
"every distributed copy of a program encodes a unique integer". A
vendor embeds each customer's ID into their copy of the rule-engine
application; when a copy leaks, dynamic blind recognition names the
customer — even after the pirate runs an off-the-shelf obfuscation
pass over the bytecode.
"""

import random

from repro.attacks.bytecode import (
    insert_noops,
    invert_branch_senses,
    renumber_locals,
)
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.vm import run_module
from repro.workloads import jess_module

CUSTOMERS = {
    1001: "acme-corp",
    2477: "globex",
    9003: "initech",
}
FINGERPRINT_BITS = 16


def main() -> None:
    app = jess_module(rule_count=36, burn=2000)
    key = WatermarkKey(secret=b"vendor-master-key", inputs=[7, 13])
    reference_output = run_module(app, key.inputs).output

    print("building fingerprinted releases:")
    releases = {}
    for customer_id, name in CUSTOMERS.items():
        marked = embed(app, customer_id, key, pieces=12,
                       watermark_bits=FINGERPRINT_BITS)
        assert run_module(marked.module, key.inputs).output \
            == reference_output
        releases[customer_id] = marked.module
        print(f"  {name:10s} id={customer_id}  "
              f"(+{marked.byte_size_increase} bytes)")

    # One copy leaks; the pirate obfuscates it before distributing.
    leaked_id = 2477
    rng = random.Random(99)
    pirated = renumber_locals(
        invert_branch_senses(
            insert_noops(releases[leaked_id], 300, rng), 1.0, rng
        ),
        rng,
    )
    print("\na pirated copy appears (obfuscated: noops, inverted "
          "branches, renumbered locals)")
    print("  pirated copy still works:",
          run_module(pirated, key.inputs).output == reference_output)

    found = recognize(pirated, key, watermark_bits=FINGERPRINT_BITS)
    print(f"  recovered fingerprint: {found.value} "
          f"-> customer {CUSTOMERS.get(found.value, '???')}")
    assert found.value == leaked_id

    # No false accusation: the other releases decode to their own IDs.
    for customer_id, module in releases.items():
        got = recognize(module, key, watermark_bits=FINGERPRINT_BITS)
        assert got.value == customer_id
    print("  cross-check: every release decodes to its own customer id")


if __name__ == "__main__":
    main()
