"""Native branch-function watermarking (paper Section 4).

Run:  python examples/native_branch_functions.py

Compiles a small application to N32 native code, embeds a watermark
in the *direction pattern* of branch-function call sites, shows the
disassembly around the chain, extracts the mark with a single-step
tracer, and demonstrates the tamper-proofing: bypassing the branch
function crashes the binary, while the rerouting attack only defeats
the naive tracer.
"""

from repro.attacks.native import (
    bypass_branch_function,
    reroute_branch_function,
)
from repro.lang.codegen_native import compile_source_native
from repro.native import MachineFault, run_image
from repro.native_wm import embed_native, extract_native

APP = """
fn average(values, n) {
    var total = 0;
    for (var i = 0; i < n; i = i + 1) { total = total + values[i]; }
    return total / n;
}
fn spread(values, n, mean) {
    var acc = 0;
    if (n < 2) { return 0; }
    for (var i = 0; i < n; i = i + 1) {
        var d = values[i] - mean;
        acc = acc + d * d;
    }
    return acc / (n - 1);
}
fn main() {
    var n = input();
    var values = new(n);
    for (var i = 0; i < n; i = i + 1) { values[i] = (i * 37 + 11) % 100; }
    var mean = average(values, n);
    print(mean);
    print(spread(values, n, mean));
    if (mean > 40) { print(1); } else { print(0); }
    return 0;
}
"""

KEY_INPUT = [24]
WATERMARK = 0xB00C  # 16-bit mark
WIDTH = 16


def main() -> None:
    image = compile_source_native(APP)
    base = run_image(image, KEY_INPUT)
    print("original output:", base.output,
          f"({base.steps:,} instructions, {image.file_size():,} B)")

    emb = embed_native(image, WATERMARK, WIDTH, KEY_INPUT)
    marked = emb.image
    r = run_image(marked, KEY_INPUT)
    print(f"\nwatermarked output: {r.output} ({r.steps:,} instructions, "
          f"+{marked.file_size() - image.file_size():,} B)")
    assert r.output == base.output

    print(f"\nbranch function at {emb.bf_entry:#x}; "
          f"chain of {len(emb.call_addresses)} calls:")
    for i, addr in enumerate(emb.call_addresses[:6]):
        direction = ""
        if i < len(emb.call_addresses) - 1:
            nxt = emb.call_addresses[i + 1]
            direction = f" -> {'forward (1)' if nxt > addr else 'backward (0)'}"
        print(f"  a_{i}: call bf @ {addr:#x}{direction}")
    print(f"  ... ending at end = {emb.end:#x}")
    print(f"tamper-proofed jumps: {len(emb.tamper_jumps)} lockdown cells")

    for tracer in ("simple", "smart"):
        res = extract_native(marked, WIDTH, emb.begin, emb.end,
                             KEY_INPUT, tracer=tracer)
        print(f"{tracer} tracer extracted: {res.watermark:#x}")
        assert res.watermark == WATERMARK

    # Subtractive attack: overwrite each `call bf` with a same-size
    # direct jump. The lockdown cells never initialize -> crash.
    print("\nbypass attack (call -> jmp, same size):")
    bypassed = bypass_branch_function(marked, emb.bf_entry, KEY_INPUT)
    try:
        out = run_image(bypassed, KEY_INPUT).output
        print("  program output:", out, "(unexpected!)")
    except MachineFault as fault:
        print(f"  program breaks: {fault}")

    # Rerouting: call a trampoline Y: jmp bf. Program works; only the
    # naive tracer is fooled.
    print("\nreroute attack (call Y; Y: jmp bf):")
    rerouted = reroute_branch_function(marked, emb.bf_entry, KEY_INPUT)
    print("  program output:", run_image(rerouted, KEY_INPUT).output)
    for tracer in ("simple", "smart"):
        res = extract_native(rerouted, WIDTH, emb.begin, emb.end,
                             KEY_INPUT, tracer=tracer,
                             bf_entry=emb.bf_entry)
        verdict = (f"{res.watermark:#x}" if res.watermark is not None
                   else "FAILED")
        print(f"  {tracer} tracer: {verdict}")


if __name__ == "__main__":
    main()
