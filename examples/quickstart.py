"""Quickstart: embed and recognize a path-based watermark.

Run:  python examples/quickstart.py

Embeds a fingerprint into the paper's GCD example (Figure 2), checks
that the program still works, recognizes the mark dynamically and
blindly, and shows that a layout attack does not dislodge it.
"""

import random

from repro.attacks.bytecode import invert_branch_senses, reorder_blocks
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.vm import run_module
from repro.workloads import gcd_module


def main() -> None:
    # The program under protection: gcd of two inputs (paper Fig. 2).
    module = gcd_module()

    # The watermark key: a cipher secret plus the secret input
    # sequence the program will be traced with.
    key = WatermarkKey(secret=b"pldi-2004-demo", inputs=[25, 10])
    watermark = 0x1337

    print("original output:", run_module(module, key.inputs).output)
    print("original size:  ", module.byte_size(), "bytes")

    # Embed: trace -> split via CRT -> encrypt -> insert branch code.
    result = embed(module, watermark, key, pieces=8, watermark_bits=16)
    marked = result.module
    print(f"\nembedded {result.piece_count} pieces "
          f"(+{result.byte_size_increase} bytes)")
    for p in result.placements[:4]:
        print(f"  piece at {p.site} via {p.generator} codegen "
              f"(site runs {p.site_frequency}x)")

    print("\nwatermarked output:", run_module(marked, key.inputs).output)

    # Recognition is dynamic and blind: only the marked program and
    # the key are needed.
    found = recognize(marked, key, watermark_bits=16)
    print(f"recognized watermark: {found.value:#x} "
          f"(complete={found.complete})")
    assert found.value == watermark

    # A determined layout attack: flip every branch, then shuffle all
    # basic blocks. The trace bit-string is invariant (Section 3.1).
    attacked = reorder_blocks(
        invert_branch_senses(marked, 1.0, random.Random(1)),
        random.Random(2),
    )
    print("\nafter sense-inversion + block-reordering attack:")
    print("  program output:", run_module(attacked, key.inputs).output)
    survived = recognize(attacked, key, watermark_bits=16)
    print(f"  watermark still recovered: {survived.value:#x}")
    assert survived.value == watermark


if __name__ == "__main__":
    main()
