"""Threat-model-driven protection: plan redundancy, embed, verify.

Run:  python examples/plan_and_protect.py

Uses the Eq.(1)-backed planner to pick a piece count for an assumed
attack intensity, embeds accordingly, then simulates the assumed
attack many times and compares the measured survival rate against the
planner's prediction — closing the loop between Section 3.3's theory
and Section 5.1's empirical resilience.
"""

import random

from repro.attacks.bytecode import insert_branches
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.core.planner import plan_redundancy
from repro.vm import VMError
from repro.workloads import jess_module

WATERMARK_BITS = 64
WATERMARK = 0xFEEDC0DE
ASSUMED_PIECE_LOSS = 0.5     # threat model: attacker kills half the pieces
TARGET_SUCCESS = 0.95
ATTACK_BRANCHES = 60         # the attack intensity we simulate
TRIALS = 12


def main() -> None:
    plan = plan_redundancy(WATERMARK_BITS, ASSUMED_PIECE_LOSS,
                           TARGET_SUCCESS)
    print("redundancy plan (Eq. 1):")
    print(f"  {plan.moduli_count} moduli, {plan.pair_count} possible pieces")
    print(f"  assumed piece loss: {plan.piece_loss_probability:.0%}")
    print(f"  plan: embed {plan.pieces} pieces "
          f"-> predicted success {plan.expected_success:.3f}")

    app = jess_module(rule_count=36, burn=2000)
    key = WatermarkKey(secret=b"planner-demo", inputs=[7, 13])
    marked = embed(app, WATERMARK, key, pieces=plan.pieces,
                   watermark_bits=WATERMARK_BITS)
    print(f"\nembedded {marked.piece_count} pieces "
          f"(+{marked.byte_size_increase} bytes)")

    survived = 0
    for trial in range(TRIALS):
        attacked = insert_branches(marked.module, ATTACK_BRANCHES,
                                   random.Random(trial))
        try:
            found = recognize(attacked, key,
                              watermark_bits=WATERMARK_BITS)
            survived += int(found.complete and found.value == WATERMARK)
        except VMError:
            pass
    rate = survived / TRIALS
    print(f"\nsimulated attack: {ATTACK_BRANCHES} random branch "
          f"insertions x {TRIALS} trials")
    print(f"  measured survival: {survived}/{TRIALS} = {rate:.0%} "
          f"(planned for >= {TARGET_SUCCESS:.0%} at "
          f"{ASSUMED_PIECE_LOSS:.0%} piece loss)")

    # The planner's model is per-piece loss; the branch-insertion
    # attack at this intensity destroys well under half the pieces on
    # this host, so measured survival should meet the planned target.
    assert rate >= 0.75, "survival collapsed below the planned regime"


if __name__ == "__main__":
    main()
