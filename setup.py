"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only lets
`pip install -e . --no-use-pep517` work offline.
"""

from setuptools import setup

setup()
