"""Wee → WVM bytecode compiler.

A straightforward one-pass stack-machine code generator. Comparisons
and logical operators appearing in control-flow conditions are fused
into conditional branches (``if_icmplt`` etc.); in value positions
they materialize 0/1 through small branch diamonds, as javac does.

The generated module passes the WVM verifier by construction (tested
property: every compiled workload verifies).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..vm.instructions import Instruction, ins, label as label_ins
from ..vm.program import Function, Module
from . import ast_nodes as A
from .analysis import FnInfo, ProgramInfo, SemanticError, analyze
from .parser import parse

_CMP_OPCODE = {
    "==": "if_icmpeq", "!=": "if_icmpne", "<": "if_icmplt",
    "<=": "if_icmple", ">": "if_icmpgt", ">=": "if_icmpge",
}
_CMP_INVERSE = {
    "==": "if_icmpne", "!=": "if_icmpeq", "<": "if_icmpge",
    "<=": "if_icmpgt", ">": "if_icmple", ">=": "if_icmplt",
}
_ARITH_OPCODE = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "band", "|": "bor", "^": "bxor", "<<": "shl", ">>": "shr",
}


class _FnCompiler:
    def __init__(self, fn_info: FnInfo, info: ProgramInfo):
        self.fn_info = fn_info
        self.info = info
        self.code: List[Instruction] = []
        self._label_counter = 0
        self._loop_stack: List[Dict[str, str]] = []  # break/continue labels

    # -- helpers --------------------------------------------------------------

    def fresh(self, hint: str) -> str:
        name = f"{hint}_{self._label_counter}"
        self._label_counter += 1
        return name

    def emit(self, *instructions: Instruction) -> None:
        self.code.extend(instructions)

    def mark(self, name: str) -> None:
        self.emit(label_ins(name))

    def slot(self, node) -> Optional[int]:
        """Resolved local slot of a Var/VarDecl node (None = global)."""
        return self.fn_info.slot_of(node)

    # -- statements -------------------------------------------------------------

    def compile(self) -> Function:
        for stmt in self.fn_info.decl.body:
            self.stmt(stmt)
        # Implicit `return 0` at the end of every function body.
        self.emit(ins("const", 0), ins("ret"))
        return Function(
            self.fn_info.decl.name,
            len(self.fn_info.decl.params),
            self.fn_info.locals_count,
            self.code,
        )

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.VarDecl):
            if s.init is not None:
                self.expr(s.init)
                self.emit(ins("store", self.slot(s)))
        elif isinstance(s, A.Assign):
            self.assign(s)
        elif isinstance(s, A.If):
            self.if_stmt(s)
        elif isinstance(s, A.While):
            self.while_stmt(s)
        elif isinstance(s, A.For):
            self.for_stmt(s)
        elif isinstance(s, A.Return):
            if s.value is not None:
                self.expr(s.value)
            else:
                self.emit(ins("const", 0))
            self.emit(ins("ret"))
        elif isinstance(s, A.Break):
            self.emit(ins("goto", self._loop_stack[-1]["break"]))
        elif isinstance(s, A.Continue):
            self.emit(ins("goto", self._loop_stack[-1]["continue"]))
        elif isinstance(s, A.Print):
            self.expr(s.value)
            self.emit(ins("print"))
        elif isinstance(s, A.ExprStmt):
            self.expr(s.value)
            self.emit(ins("pop"))
        else:  # pragma: no cover - analysis rejects unknown nodes
            raise SemanticError(s.line, f"cannot compile {type(s).__name__}")

    def assign(self, s: A.Assign) -> None:
        target = s.target
        if isinstance(target, A.Var):
            slot = self.slot(target)
            self.expr(s.value)
            if slot is not None:
                self.emit(ins("store", slot))
            else:
                self.emit(ins("gstore", self.info.globals[target.name]))
        else:
            assert isinstance(target, A.Index)
            self.expr(target.base)
            self.expr(target.index)
            self.expr(s.value)
            self.emit(ins("astore"))

    def if_stmt(self, s: A.If) -> None:
        else_label = self.fresh("else")
        end_label = self.fresh("endif")
        self.branch_if_false(s.cond, else_label)
        for st in s.then:
            self.stmt(st)
        if s.otherwise:
            self.emit(ins("goto", end_label))
            self.mark(else_label)
            for st in s.otherwise:
                self.stmt(st)
            self.mark(end_label)
        else:
            self.mark(else_label)

    def while_stmt(self, s: A.While) -> None:
        head = self.fresh("while")
        end = self.fresh("endwhile")
        self._loop_stack.append({"break": end, "continue": head})
        self.mark(head)
        self.branch_if_false(s.cond, end)
        for st in s.body:
            self.stmt(st)
        self.emit(ins("goto", head))
        self.mark(end)
        self._loop_stack.pop()

    def for_stmt(self, s: A.For) -> None:
        head = self.fresh("for")
        step_label = self.fresh("forstep")
        end = self.fresh("endfor")
        if s.init is not None:
            self.stmt(s.init)
        self._loop_stack.append({"break": end, "continue": step_label})
        self.mark(head)
        if s.cond is not None:
            self.branch_if_false(s.cond, end)
        for st in s.body:
            self.stmt(st)
        self.mark(step_label)
        if s.step is not None:
            self.stmt(s.step)
        self.emit(ins("goto", head))
        self.mark(end)
        self._loop_stack.pop()

    # -- conditions ---------------------------------------------------------------

    def branch_if_false(self, e: A.Expr, target: str) -> None:
        if isinstance(e, A.Binary) and e.op in _CMP_OPCODE:
            self.expr(e.left)
            self.expr(e.right)
            self.emit(ins(_CMP_INVERSE[e.op], target))
            return
        if isinstance(e, A.Unary) and e.op == "!":
            self.branch_if_true(e.operand, target)
            return
        if isinstance(e, A.Logical):
            if e.op == "&&":
                self.branch_if_false(e.left, target)
                self.branch_if_false(e.right, target)
            else:  # "||"
                keep_going = self.fresh("or")
                self.branch_if_true(e.left, keep_going)
                self.branch_if_false(e.right, target)
                self.mark(keep_going)
            return
        self.expr(e)
        self.emit(ins("ifeq", target))

    def branch_if_true(self, e: A.Expr, target: str) -> None:
        if isinstance(e, A.Binary) and e.op in _CMP_OPCODE:
            self.expr(e.left)
            self.expr(e.right)
            self.emit(ins(_CMP_OPCODE[e.op], target))
            return
        if isinstance(e, A.Unary) and e.op == "!":
            self.branch_if_false(e.operand, target)
            return
        if isinstance(e, A.Logical):
            if e.op == "||":
                self.branch_if_true(e.left, target)
                self.branch_if_true(e.right, target)
            else:  # "&&"
                bail = self.fresh("and")
                self.branch_if_false(e.left, bail)
                self.branch_if_true(e.right, target)
                self.mark(bail)
            return
        self.expr(e)
        self.emit(ins("ifne", target))

    # -- expressions -----------------------------------------------------------------

    def expr(self, e: A.Expr) -> None:
        if isinstance(e, A.IntLit):
            self.emit(ins("const", e.value))
        elif isinstance(e, A.Var):
            slot = self.slot(e)
            if slot is not None:
                self.emit(ins("load", slot))
            else:
                self.emit(ins("gload", self.info.globals[e.name]))
        elif isinstance(e, A.Unary):
            if e.op == "-":
                self.expr(e.operand)
                self.emit(ins("neg"))
            elif e.op == "~":
                self.expr(e.operand)
                self.emit(ins("bnot"))
            else:  # "!" in value position
                self.materialize_bool(e)
        elif isinstance(e, A.Binary):
            if e.op in _CMP_OPCODE:
                self.materialize_bool(e)
            else:
                self.expr(e.left)
                self.expr(e.right)
                self.emit(ins(_ARITH_OPCODE[e.op]))
        elif isinstance(e, A.Logical):
            self.materialize_bool(e)
        elif isinstance(e, A.Call):
            for a in e.args:
                self.expr(a)
            self.emit(ins("call", e.name))
        elif isinstance(e, A.Input):
            self.emit(ins("input"))
        elif isinstance(e, A.NewArray):
            self.expr(e.size)
            self.emit(ins("newarray"))
        elif isinstance(e, A.Index):
            self.expr(e.base)
            self.expr(e.index)
            self.emit(ins("aload"))
        elif isinstance(e, A.Len):
            self.expr(e.base)
            self.emit(ins("alen"))
        else:  # pragma: no cover
            raise SemanticError(e.line, f"cannot compile {type(e).__name__}")

    def materialize_bool(self, e: A.Expr) -> None:
        """Compile a boolean expression in value position to 0/1."""
        true_label = self.fresh("true")
        end_label = self.fresh("endbool")
        self.branch_if_true(e, true_label)
        self.emit(ins("const", 0), ins("goto", end_label))
        self.mark(true_label)
        self.emit(ins("const", 1))
        self.mark(end_label)


def compile_program(program: A.Program) -> Module:
    """Compile an analyzed AST into a WVM module with entry ``main``."""
    info = analyze(program)
    module = Module(entry="main")
    module.globals_count = len(info.globals)
    for name in sorted(info.functions):
        module.add(_FnCompiler(info.functions[name], info).compile())
    module.validate_structure()
    return module


def compile_source(source: str) -> Module:
    """Convenience: parse, analyze and compile wee source text."""
    return compile_program(parse(source))
