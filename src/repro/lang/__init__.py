"""The wee mini-language: lexer, parser, analysis, and code generators.

Workload programs (CaffeineMark-like, Jess-like, SPEC-like; see
``repro.workloads``) are written once in wee and compiled to both
substrates:

* :func:`compile_source` — wee source → WVM module (``repro.vm``);
* :func:`repro.lang.codegen_native.compile_source_native` — wee source
  → N32 binary (``repro.native``).
"""

from .analysis import ProgramInfo, SemanticError, analyze
from .ast_nodes import Program
from .codegen_vm import compile_program, compile_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse

__all__ = [
    "LexError",
    "ParseError",
    "Program",
    "ProgramInfo",
    "SemanticError",
    "Token",
    "analyze",
    "compile_program",
    "compile_source",
    "parse",
    "tokenize",
]
