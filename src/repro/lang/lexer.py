"""Lexer for the "wee" mini-language.

Wee is the small C-like language the workload programs are written in
(see DESIGN.md): integer-only, with functions, globals, arrays,
``input()``/``print()`` builtins, and the usual operators. One source
program compiles to both substrates (WVM bytecode and N32 native
code), which is how the evaluation runs the same benchmark on both
sides of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset({
    "fn", "var", "global", "if", "else", "while", "for", "return",
    "break", "continue", "print", "input", "new", "len",
})

SYMBOLS = [
    # longest first
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "(", ")", "{", "}", "[", "]", ";", ",",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
]


@dataclass(frozen=True)
class Token:
    kind: str          # "int", "name", "keyword", "symbol", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


class LexError(Exception):
    def __init__(self, line: int, column: int, message: str):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> List[Token]:
    """Tokenize a wee program; comments are ``//`` to end of line."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if c.isdigit():
            start = i
            start_col = col
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                if i == start + 2:
                    raise LexError(line, start_col, "bad hex literal")
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            col += i - start
            tokens.append(Token("int", text, line, start_col))
            continue
        if c.isalpha() or c == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            col += i - start
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, start_col))
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("symbol", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise LexError(line, col, f"unexpected character {c!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
