"""Wee → N32 native code generator.

A simple stack-machine-over-hardware-stack compiler (think ``gcc -O0``
shape): expression intermediates live on the machine stack, locals in
an ``ebp`` frame, globals and the array heap in the data section. The
point is producing *realistic binaries* — real calls, frames, hot
loops and cold paths — for the Section 4/5.2 native watermarking
pipeline, not producing fast code.

Calling convention (matches the hand-written runtime below):

* arguments pushed left-to-right; caller pops them after return;
* parameter ``i`` of ``n`` lives at ``[ebp + 8 + 4*(n-1-i)]``;
* locals at ``[ebp - 4*(slot - params + 1)]``;
* return value in ``eax``.

Arrays are ``[length, elem0, elem1, ...]`` word blocks from a bump
allocator (``rt_alloc``), with no bounds checks — like the C programs
the paper watermarks, an out-of-range index wanders off and faults or
corrupts, it does not raise.
"""

from __future__ import annotations

from typing import List, Optional

from ..native.assembler import DataBlock, SymMem, TextItem, build_image
from ..native.image import BinaryImage
from ..native.isa import Imm, Label, Mem, NInstruction, Reg, ni
from . import ast_nodes as A
from .analysis import FnInfo, ProgramInfo, SemanticError, analyze
from .parser import parse

EAX, EBX, ECX, EDX = Reg("eax"), Reg("ebx"), Reg("ecx"), Reg("edx")
ESP, EBP = Reg("esp"), Reg("ebp")

_CMP_JCC = {"==": "je", "!=": "jne", "<": "jl",
            "<=": "jle", ">": "jg", ">=": "jge"}
_CMP_JCC_INV = {"==": "jne", "!=": "je", "<": "jge",
                "<=": "jg", ">": "jle", ">=": "jl"}

DEFAULT_HEAP_BYTES = 1 << 20


class _NativeFnCompiler:
    def __init__(self, fn_info: FnInfo, info: ProgramInfo):
        self.fn_info = fn_info
        self.info = info
        self.items: List[TextItem] = []
        self._label_counter = 0
        self._loop_stack: List[dict] = []

    # -- helpers ---------------------------------------------------------

    def fresh(self, hint: str) -> str:
        name = f"{self.fn_info.decl.name}__{hint}_{self._label_counter}"
        self._label_counter += 1
        return name

    def emit(self, *instrs: NInstruction) -> None:
        self.items.extend(instrs)

    def mark(self, name: str) -> None:
        self.items.append(("label", name))

    def slot_mem(self, node) -> Optional[Mem]:
        """Frame address of a resolved Var/VarDecl node (None = global)."""
        slot = self.fn_info.slot_of(node)
        if slot is None:
            return None
        params = len(self.fn_info.decl.params)
        if slot < params:
            return Mem(base="ebp", disp=8 + 4 * (params - 1 - slot))
        return Mem(base="ebp", disp=-4 * (slot - params + 1))

    def global_ref(self, name: str) -> SymMem:
        return SymMem(f"g_{name}")

    # -- top level ----------------------------------------------------------

    def compile(self) -> List[TextItem]:
        fn = self.fn_info.decl
        self.mark(fn.name)
        local_count = self.fn_info.locals_count - len(fn.params)
        self.emit(ni("push", EBP), ni("mov_rr", EBP, ESP))
        if local_count:
            self.emit(ni("sub_ri", ESP, Imm(4 * local_count)))
        for stmt in fn.body:
            self.stmt(stmt)
        # Implicit `return 0`.
        self.emit(ni("mov_ri", EAX, Imm(0)))
        self._emit_epilogue()
        return self.items

    def _emit_epilogue(self) -> None:
        self.emit(ni("mov_rr", ESP, EBP), ni("pop", EBP), ni("ret"))

    # -- statements -------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.VarDecl):
            if s.init is not None:
                self.expr(s.init)
                self.emit(ni("pop", EAX),
                          ni("mov_mr", self.slot_mem(s), EAX))
        elif isinstance(s, A.Assign):
            self.assign(s)
        elif isinstance(s, A.If):
            self.if_stmt(s)
        elif isinstance(s, A.While):
            self.while_stmt(s)
        elif isinstance(s, A.For):
            self.for_stmt(s)
        elif isinstance(s, A.Return):
            if s.value is not None:
                self.expr(s.value)
                self.emit(ni("pop", EAX))
            else:
                self.emit(ni("mov_ri", EAX, Imm(0)))
            self._emit_epilogue()
        elif isinstance(s, A.Break):
            self.emit(ni("jmp", Label(self._loop_stack[-1]["break"])))
        elif isinstance(s, A.Continue):
            self.emit(ni("jmp", Label(self._loop_stack[-1]["continue"])))
        elif isinstance(s, A.Print):
            self.expr(s.value)
            self.emit(ni("pop", EAX), ni("sys_out"))
        elif isinstance(s, A.ExprStmt):
            self.expr(s.value)
            self.emit(ni("pop", EAX))
        else:  # pragma: no cover
            raise SemanticError(s.line, f"cannot compile {type(s).__name__}")

    def assign(self, s: A.Assign) -> None:
        target = s.target
        if isinstance(target, A.Var):
            self.expr(s.value)
            self.emit(ni("pop", EAX))
            mem = self.slot_mem(target)
            if mem is not None:
                self.emit(ni("mov_mr", mem, EAX))
            else:
                self.emit(ni("mov_ar", self.global_ref(target.name), EAX))
        else:
            assert isinstance(target, A.Index)
            self.expr(target.base)
            self.expr(target.index)
            self.expr(s.value)
            self.emit(
                ni("pop", ECX),              # value
                ni("pop", EBX),              # index
                ni("pop", EAX),              # base
                ni("shl_ri", EBX, Imm(2)),
                ni("add_rr", EAX, EBX),
                ni("mov_mr", Mem(base="eax", disp=4), ECX),
            )

    def if_stmt(self, s: A.If) -> None:
        else_label = self.fresh("else")
        end_label = self.fresh("endif")
        self.branch_if_false(s.cond, else_label)
        for st in s.then:
            self.stmt(st)
        if s.otherwise:
            self.emit(ni("jmp", Label(end_label)))
            self.mark(else_label)
            for st in s.otherwise:
                self.stmt(st)
            self.mark(end_label)
        else:
            self.mark(else_label)

    def while_stmt(self, s: A.While) -> None:
        head = self.fresh("while")
        end = self.fresh("endwhile")
        self._loop_stack.append({"break": end, "continue": head})
        self.mark(head)
        self.branch_if_false(s.cond, end)
        for st in s.body:
            self.stmt(st)
        self.emit(ni("jmp", Label(head)))
        self.mark(end)
        self._loop_stack.pop()

    def for_stmt(self, s: A.For) -> None:
        head = self.fresh("for")
        step_label = self.fresh("forstep")
        end = self.fresh("endfor")
        if s.init is not None:
            self.stmt(s.init)
        self._loop_stack.append({"break": end, "continue": step_label})
        self.mark(head)
        if s.cond is not None:
            self.branch_if_false(s.cond, end)
        for st in s.body:
            self.stmt(st)
        self.mark(step_label)
        if s.step is not None:
            self.stmt(s.step)
        self.emit(ni("jmp", Label(head)))
        self.mark(end)
        self._loop_stack.pop()

    # -- conditions ---------------------------------------------------------------

    def _cmp_operands(self, e: A.Binary) -> None:
        self.expr(e.left)
        self.expr(e.right)
        self.emit(ni("pop", EBX), ni("pop", EAX), ni("cmp_rr", EAX, EBX))

    def branch_if_false(self, e: A.Expr, target: str) -> None:
        if isinstance(e, A.Binary) and e.op in _CMP_JCC:
            self._cmp_operands(e)
            self.emit(ni(_CMP_JCC_INV[e.op], Label(target)))
            return
        if isinstance(e, A.Unary) and e.op == "!":
            self.branch_if_true(e.operand, target)
            return
        if isinstance(e, A.Logical):
            if e.op == "&&":
                self.branch_if_false(e.left, target)
                self.branch_if_false(e.right, target)
            else:
                keep = self.fresh("or")
                self.branch_if_true(e.left, keep)
                self.branch_if_false(e.right, target)
                self.mark(keep)
            return
        self.expr(e)
        self.emit(ni("pop", EAX), ni("test_rr", EAX, EAX),
                  ni("je", Label(target)))

    def branch_if_true(self, e: A.Expr, target: str) -> None:
        if isinstance(e, A.Binary) and e.op in _CMP_JCC:
            self._cmp_operands(e)
            self.emit(ni(_CMP_JCC[e.op], Label(target)))
            return
        if isinstance(e, A.Unary) and e.op == "!":
            self.branch_if_false(e.operand, target)
            return
        if isinstance(e, A.Logical):
            if e.op == "||":
                self.branch_if_true(e.left, target)
                self.branch_if_true(e.right, target)
            else:
                bail = self.fresh("and")
                self.branch_if_false(e.left, bail)
                self.branch_if_true(e.right, target)
                self.mark(bail)
            return
        self.expr(e)
        self.emit(ni("pop", EAX), ni("test_rr", EAX, EAX),
                  ni("jne", Label(target)))

    # -- expressions -----------------------------------------------------------------

    def expr(self, e: A.Expr) -> None:
        if isinstance(e, A.IntLit):
            self.emit(ni("pushi", Imm(e.value)))
        elif isinstance(e, A.Var):
            mem = self.slot_mem(e)
            if mem is not None:
                self.emit(ni("mov_rm", EAX, mem))
            else:
                self.emit(ni("mov_ra", EAX, self.global_ref(e.name)))
            self.emit(ni("push", EAX))
        elif isinstance(e, A.Unary):
            if e.op == "-":
                self.expr(e.operand)
                self.emit(ni("pop", EAX), ni("neg", EAX), ni("push", EAX))
            elif e.op == "~":
                self.expr(e.operand)
                self.emit(ni("pop", EAX), ni("not", EAX), ni("push", EAX))
            else:
                self.materialize_bool(e)
        elif isinstance(e, A.Binary):
            if e.op in _CMP_JCC:
                self.materialize_bool(e)
            else:
                self.expr(e.left)
                self.expr(e.right)
                self.binary_op(e.op)
        elif isinstance(e, A.Logical):
            self.materialize_bool(e)
        elif isinstance(e, A.Call):
            for a in e.args:
                self.expr(a)
            self.emit(ni("call", Label(e.name)))
            if e.args:
                self.emit(ni("add_ri", ESP, Imm(4 * len(e.args))))
            self.emit(ni("push", EAX))
        elif isinstance(e, A.Input):
            self.emit(ni("sys_in"), ni("push", EAX))
        elif isinstance(e, A.NewArray):
            self.expr(e.size)
            self.emit(ni("call", Label("rt_newarray")),
                      ni("add_ri", ESP, Imm(4)),
                      ni("push", EAX))
        elif isinstance(e, A.Index):
            self.expr(e.base)
            self.expr(e.index)
            self.emit(
                ni("pop", EBX),
                ni("pop", EAX),
                ni("shl_ri", EBX, Imm(2)),
                ni("add_rr", EAX, EBX),
                ni("mov_rm", EAX, Mem(base="eax", disp=4)),
                ni("push", EAX),
            )
        elif isinstance(e, A.Len):
            self.expr(e.base)
            self.emit(ni("pop", EAX),
                      ni("mov_rm", EAX, Mem(base="eax", disp=0)),
                      ni("push", EAX))
        else:  # pragma: no cover
            raise SemanticError(e.line, f"cannot compile {type(e).__name__}")

    def binary_op(self, op: str) -> None:
        self.emit(ni("pop", EBX), ni("pop", EAX))
        if op == "+":
            self.emit(ni("add_rr", EAX, EBX))
        elif op == "-":
            self.emit(ni("sub_rr", EAX, EBX))
        elif op == "*":
            self.emit(ni("imul_rr", EAX, EBX))
        elif op == "/":
            self.emit(ni("idiv", EBX))
        elif op == "%":
            self.emit(ni("idiv", EBX), ni("mov_rr", EAX, EDX))
        elif op == "&":
            self.emit(ni("and_rr", EAX, EBX))
        elif op == "|":
            self.emit(ni("or_rr", EAX, EBX))
        elif op == "^":
            self.emit(ni("xor_rr", EAX, EBX))
        elif op == "<<":
            self.emit(ni("shl_rr", EAX, EBX))
        elif op == ">>":
            self.emit(ni("sar_rr", EAX, EBX))
        else:  # pragma: no cover
            raise SemanticError(0, f"unknown binary operator {op!r}")
        self.emit(ni("push", EAX))

    def materialize_bool(self, e: A.Expr) -> None:
        true_label = self.fresh("true")
        end_label = self.fresh("endbool")
        self.branch_if_true(e, true_label)
        self.emit(ni("pushi", Imm(0)), ni("jmp", Label(end_label)))
        self.mark(true_label)
        self.emit(ni("pushi", Imm(1)))
        self.mark(end_label)


def _runtime_items() -> List[TextItem]:
    """Hand-written runtime: bump allocator + array constructor."""
    items: List[TextItem] = []

    def mark(name):
        items.append(("label", name))

    # rt_alloc(words) -> eax = base of fresh block
    mark("rt_alloc")
    items.extend([
        ni("push", EBP),
        ni("mov_rr", EBP, ESP),
        ni("mov_ra", EAX, SymMem("rt_heap_ptr")),
        ni("cmp_ri", EAX, Imm(0)),
        ni("jne", Label("rt_alloc_ok")),
        ni("mov_ri", EAX, Label("rt_heap_area")),
    ])
    mark("rt_alloc_ok")
    items.extend([
        ni("mov_rr", ECX, EAX),                       # result
        ni("mov_rm", EBX, Mem(base="ebp", disp=8)),   # word count
        ni("shl_ri", EBX, Imm(2)),
        ni("add_rr", EAX, EBX),
        ni("mov_ar", SymMem("rt_heap_ptr"), EAX),
        ni("mov_rr", EAX, ECX),
        ni("mov_rr", ESP, EBP),
        ni("pop", EBP),
        ni("ret"),
    ])
    # rt_newarray(n) -> eax = block with length header
    mark("rt_newarray")
    items.extend([
        ni("push", EBP),
        ni("mov_rr", EBP, ESP),
        ni("mov_rm", EAX, Mem(base="ebp", disp=8)),
        ni("add_ri", EAX, Imm(1)),
        ni("push", EAX),
        ni("call", Label("rt_alloc")),
        ni("add_ri", ESP, Imm(4)),
        ni("mov_rm", EBX, Mem(base="ebp", disp=8)),
        ni("mov_mr", Mem(base="eax", disp=0), EBX),
        ni("mov_rr", ESP, EBP),
        ni("pop", EBP),
        ni("ret"),
    ])
    return items


def compile_program_native(
    program: A.Program,
    heap_bytes: int = DEFAULT_HEAP_BYTES,
) -> BinaryImage:
    """Compile an AST to an N32 binary image with entry ``main``."""
    info = analyze(program)
    items: List[TextItem] = []
    for name in sorted(info.functions):
        items.extend(_NativeFnCompiler(info.functions[name], info).compile())
    items.extend(_runtime_items())

    data_blocks = [DataBlock(f"g_{name}", [0])
                   for name in sorted(info.globals, key=info.globals.get)]
    data_blocks.append(DataBlock("rt_heap_ptr", [0]))
    data_blocks.append(DataBlock("rt_heap_area", [0] * 4))
    return build_image(items, data_blocks, entry="main",
                       extra_data_space=heap_bytes)


def compile_source_native(
    source: str, heap_bytes: int = DEFAULT_HEAP_BYTES
) -> BinaryImage:
    """Parse, analyze and compile wee source to a native binary."""
    return compile_program_native(parse(source), heap_bytes)
