"""Semantic analysis for wee programs.

Checks performed before code generation:

* duplicate function, parameter, global, or local names (within one
  scope — nested blocks may shadow);
* use of undeclared variables; assignment targets exist;
* calls name a declared function with the right arity;
* ``break`` / ``continue`` only inside loops;
* a ``main`` function with no parameters exists (it becomes the
  module entry point).

Scoping is lexical: every ``{ }`` block (and each ``for`` header)
introduces a scope; declarations shadow outer bindings and die with
their block. Each declaration gets its own local slot (no reuse), and
the analyzer records a per-*node* resolution — ``FnInfo.resolution``
maps each variable reference to its slot (or to ``None`` for a
global) — which both code generators consume, so name lookup happens
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from . import ast_nodes as A


class SemanticError(Exception):
    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class FnInfo:
    """Analysis results for one function.

    ``frame`` maps names to slots for the *outermost* bindings (kept
    for introspection and tests); codegen must use ``resolution``,
    which disambiguates shadowed names per reference node.
    """

    decl: A.FnDecl
    frame: Dict[str, int] = field(default_factory=dict)  # name -> slot
    #: id(node) -> slot for locals, or None for globals; covers every
    #: Var reference and VarDecl in the function.
    resolution: Dict[int, "int | None"] = field(default_factory=dict)
    slot_count: int = 0

    @property
    def locals_count(self) -> int:
        return self.slot_count

    def slot_of(self, node) -> "int | None":
        """Resolved local slot of a Var/VarDecl node (None = global)."""
        return self.resolution.get(id(node))


@dataclass
class ProgramInfo:
    """Analysis results for a whole program."""

    program: A.Program
    functions: Dict[str, FnInfo] = field(default_factory=dict)
    globals: Dict[str, int] = field(default_factory=dict)  # name -> index


def analyze(program: A.Program) -> ProgramInfo:
    """Run all checks; raise :class:`SemanticError` on the first failure."""
    info = ProgramInfo(program)

    for g in program.globals:
        if g.name in info.globals:
            raise SemanticError(g.line, f"duplicate global {g.name!r}")
        info.globals[g.name] = len(info.globals)

    for fn in program.functions:
        if fn.name in info.functions:
            raise SemanticError(fn.line, f"duplicate function {fn.name!r}")
        if fn.name in info.globals:
            raise SemanticError(
                fn.line, f"{fn.name!r} is both a global and a function"
            )
        info.functions[fn.name] = FnInfo(fn)

    if "main" not in info.functions:
        raise SemanticError(0, "program must define fn main()")
    if info.functions["main"].decl.params:
        raise SemanticError(
            info.functions["main"].decl.line, "fn main() takes no parameters"
        )

    for fn_info in info.functions.values():
        _analyze_function(fn_info, info)
    return info


def _analyze_function(fn_info: FnInfo, info: ProgramInfo) -> None:
    fn = fn_info.decl
    scopes: list = [{}]  # innermost last

    def new_slot(name: str) -> int:
        slot = fn_info.slot_count
        fn_info.slot_count += 1
        if name not in fn_info.frame:
            fn_info.frame[name] = slot
        return slot

    for p in fn.params:
        if p in scopes[0]:
            raise SemanticError(fn.line, f"duplicate parameter {p!r}")
        scopes[0][p] = new_slot(p)

    def declare(node: A.VarDecl) -> None:
        if node.name in scopes[-1]:
            raise SemanticError(
                node.line, f"redeclaration of {node.name!r}"
            )
        slot = new_slot(node.name)
        scopes[-1][node.name] = slot
        fn_info.resolution[id(node)] = slot

    def resolve(name: str, line: int, node) -> None:
        for scope in reversed(scopes):
            if name in scope:
                fn_info.resolution[id(node)] = scope[name]
                return
        if name in info.globals:
            fn_info.resolution[id(node)] = None
            return
        raise SemanticError(line, f"undeclared variable {name!r}")

    def walk_expr(e: A.Expr) -> None:
        if isinstance(e, A.IntLit) or isinstance(e, A.Input):
            return
        if isinstance(e, A.Var):
            resolve(e.name, e.line, e)
        elif isinstance(e, A.Unary):
            walk_expr(e.operand)
        elif isinstance(e, (A.Binary, A.Logical)):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, A.Call):
            callee = info.functions.get(e.name)
            if callee is None:
                raise SemanticError(e.line, f"call to unknown function "
                                            f"{e.name!r}")
            if len(e.args) != len(callee.decl.params):
                raise SemanticError(
                    e.line,
                    f"{e.name} expects {len(callee.decl.params)} args, "
                    f"got {len(e.args)}",
                )
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, A.NewArray):
            walk_expr(e.size)
        elif isinstance(e, A.Index):
            walk_expr(e.base)
            walk_expr(e.index)
        elif isinstance(e, A.Len):
            walk_expr(e.base)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(e.line, f"unknown expression {type(e).__name__}")

    def walk_stmts(stmts: List[A.Stmt], loop_depth: int,
                   own_scope: bool = True) -> None:
        if own_scope:
            scopes.append({})
        for s in stmts:
            if isinstance(s, A.VarDecl):
                if s.init is not None:
                    walk_expr(s.init)
                declare(s)
            elif isinstance(s, A.Assign):
                walk_expr(s.value)
                if isinstance(s.target, A.Var):
                    resolve(s.target.name, s.target.line, s.target)
                else:
                    walk_expr(s.target)
            elif isinstance(s, A.If):
                walk_expr(s.cond)
                walk_stmts(s.then, loop_depth)
                walk_stmts(s.otherwise, loop_depth)
            elif isinstance(s, A.While):
                walk_expr(s.cond)
                walk_stmts(s.body, loop_depth + 1)
            elif isinstance(s, A.For):
                # The for-header introduces its own scope covering the
                # init declaration, condition, body and step.
                scopes.append({})
                if s.init is not None:
                    walk_stmts([s.init], loop_depth, own_scope=False)
                if s.cond is not None:
                    walk_expr(s.cond)
                walk_stmts(s.body, loop_depth + 1)
                if s.step is not None:
                    walk_stmts([s.step], loop_depth + 1, own_scope=False)
                scopes.pop()
            elif isinstance(s, A.Return):
                if s.value is not None:
                    walk_expr(s.value)
            elif isinstance(s, (A.Break, A.Continue)):
                if loop_depth == 0:
                    kind = "break" if isinstance(s, A.Break) else "continue"
                    raise SemanticError(s.line, f"{kind} outside a loop")
            elif isinstance(s, A.Print):
                walk_expr(s.value)
            elif isinstance(s, A.ExprStmt):
                walk_expr(s.value)
            else:  # pragma: no cover
                raise SemanticError(s.line, f"unknown statement "
                                            f"{type(s).__name__}")
        if own_scope:
            scopes.pop()

    walk_stmts(fn.body, 0, own_scope=False)
