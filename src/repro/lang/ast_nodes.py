"""Abstract syntax tree for the wee mini-language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    """Base class; ``line`` supports error reporting."""

    line: int = field(default=0, compare=False)


# -- expressions -------------------------------------------------------------


@dataclass
class IntLit(Node):
    value: int = 0


@dataclass
class Var(Node):
    name: str = ""


@dataclass
class Unary(Node):
    op: str = ""            # "-", "!", "~"
    operand: "Expr" = None  # type: ignore[assignment]


@dataclass
class Binary(Node):
    op: str = ""            # arithmetic/comparison/bitwise operator text
    left: "Expr" = None     # type: ignore[assignment]
    right: "Expr" = None    # type: ignore[assignment]


@dataclass
class Logical(Node):
    """Short-circuiting ``&&`` / ``||``."""

    op: str = ""
    left: "Expr" = None     # type: ignore[assignment]
    right: "Expr" = None    # type: ignore[assignment]


@dataclass
class Call(Node):
    name: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class Input(Node):
    """``input()`` — read the next secret-input value."""


@dataclass
class NewArray(Node):
    size: "Expr" = None     # type: ignore[assignment]


@dataclass
class Index(Node):
    base: "Expr" = None     # type: ignore[assignment]
    index: "Expr" = None    # type: ignore[assignment]


@dataclass
class Len(Node):
    base: "Expr" = None     # type: ignore[assignment]


Expr = Node  # informal union; analysis narrows


# -- statements ---------------------------------------------------------------


@dataclass
class VarDecl(Node):
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Node):
    target: Expr = None     # Var or Index
    value: Expr = None      # type: ignore[assignment]


@dataclass
class If(Node):
    cond: Expr = None       # type: ignore[assignment]
    then: List["Stmt"] = field(default_factory=list)
    otherwise: List["Stmt"] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Expr = None       # type: ignore[assignment]
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class For(Node):
    init: Optional["Stmt"] = None
    cond: Optional[Expr] = None
    step: Optional["Stmt"] = None
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class Return(Node):
    value: Optional[Expr] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Print(Node):
    value: Expr = None      # type: ignore[assignment]


@dataclass
class ExprStmt(Node):
    value: Expr = None      # type: ignore[assignment]


Stmt = Node


# -- top level ----------------------------------------------------------------


@dataclass
class FnDecl(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class GlobalDecl(Node):
    name: str = ""


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FnDecl] = field(default_factory=list)
