"""Recursive-descent parser for the wee mini-language.

Grammar (precedence from loosest to tightest)::

    program   := (global | fn)*
    global    := 'global' NAME ';'
    fn        := 'fn' NAME '(' [NAME (',' NAME)*] ')' block
    block     := '{' stmt* '}'
    stmt      := 'var' NAME ['=' expr] ';'
               | 'if' '(' expr ')' block ['else' (block | if-stmt)]
               | 'while' '(' expr ')' block
               | 'for' '(' [simple] ';' [expr] ';' [simple] ')' block
               | 'return' [expr] ';'
               | 'break' ';' | 'continue' ';'
               | 'print' '(' expr ')' ';'
               | simple ';'
    simple    := lvalue '=' expr | 'var' NAME ['=' expr] | expr
    expr      := or
    or        := and ('||' and)*
    and       := cmp ('&&' cmp)*
    cmp       := bitor (('=='|'!='|'<'|'<='|'>'|'>=') bitor)*
    bitor     := bitxor ('|' bitxor)*
    bitxor    := bitand ('^' bitand)*
    bitand    := shift ('&' shift)*
    shift     := sum (('<<'|'>>') sum)*
    sum       := term (('+'|'-') term)*
    term      := unary (('*'|'/'|'%') unary)*
    unary     := ('-'|'!'|'~') unary | postfix
    postfix   := primary ('[' expr ']')*
    primary   := INT | NAME | NAME '(' args ')' | 'input' '(' ')'
               | 'new' '(' expr ')' | 'len' '(' expr ')' | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as A
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, token: Token, message: str):
        super().__init__(f"{token.line}:{token.column}: {message}")
        self.token = token


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(tok, f"expected {want!r}, found {tok.text!r}")
        return self.advance()

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> A.Program:
        program = A.Program()
        while not self.check("eof"):
            if self.check("keyword", "global"):
                tok = self.advance()
                name = self.expect("name").text
                self.expect("symbol", ";")
                program.globals.append(A.GlobalDecl(tok.line, name))
            elif self.check("keyword", "fn"):
                program.functions.append(self.parse_fn())
            else:
                raise ParseError(
                    self.peek(), "expected 'fn' or 'global' at top level"
                )
        return program

    def parse_fn(self) -> A.FnDecl:
        tok = self.expect("keyword", "fn")
        name = self.expect("name").text
        self.expect("symbol", "(")
        params: List[str] = []
        if not self.check("symbol", ")"):
            params.append(self.expect("name").text)
            while self.match("symbol", ","):
                params.append(self.expect("name").text)
        self.expect("symbol", ")")
        body = self.parse_block()
        return A.FnDecl(tok.line, name, params, body)

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> List[A.Stmt]:
        self.expect("symbol", "{")
        stmts: List[A.Stmt] = []
        while not self.check("symbol", "}"):
            stmts.append(self.parse_stmt())
        self.expect("symbol", "}")
        return stmts

    def parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if self.check("keyword", "var"):
            stmt = self.parse_var_decl()
            self.expect("symbol", ";")
            return stmt
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            self.advance()
            self.expect("symbol", "(")
            cond = self.parse_expr()
            self.expect("symbol", ")")
            body = self.parse_block()
            return A.While(tok.line, cond, body)
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.check("keyword", "return"):
            self.advance()
            value = None if self.check("symbol", ";") else self.parse_expr()
            self.expect("symbol", ";")
            return A.Return(tok.line, value)
        if self.check("keyword", "break"):
            self.advance()
            self.expect("symbol", ";")
            return A.Break(tok.line)
        if self.check("keyword", "continue"):
            self.advance()
            self.expect("symbol", ";")
            return A.Continue(tok.line)
        if self.check("keyword", "print"):
            self.advance()
            self.expect("symbol", "(")
            value = self.parse_expr()
            self.expect("symbol", ")")
            self.expect("symbol", ";")
            return A.Print(tok.line, value)
        stmt = self.parse_simple()
        self.expect("symbol", ";")
        return stmt

    def parse_var_decl(self) -> A.VarDecl:
        tok = self.expect("keyword", "var")
        name = self.expect("name").text
        init = None
        if self.match("symbol", "="):
            init = self.parse_expr()
        return A.VarDecl(tok.line, name, init)

    def parse_if(self) -> A.If:
        tok = self.expect("keyword", "if")
        self.expect("symbol", "(")
        cond = self.parse_expr()
        self.expect("symbol", ")")
        then = self.parse_block()
        otherwise: List[A.Stmt] = []
        if self.match("keyword", "else"):
            if self.check("keyword", "if"):
                otherwise = [self.parse_if()]
            else:
                otherwise = self.parse_block()
        return A.If(tok.line, cond, then, otherwise)

    def parse_for(self) -> A.For:
        tok = self.expect("keyword", "for")
        self.expect("symbol", "(")
        init = None if self.check("symbol", ";") else self.parse_simple_or_var()
        self.expect("symbol", ";")
        cond = None if self.check("symbol", ";") else self.parse_expr()
        self.expect("symbol", ";")
        step = None if self.check("symbol", ")") else self.parse_simple()
        self.expect("symbol", ")")
        body = self.parse_block()
        return A.For(tok.line, init, cond, step, body)

    def parse_simple_or_var(self) -> A.Stmt:
        if self.check("keyword", "var"):
            return self.parse_var_decl()
        return self.parse_simple()

    def parse_simple(self) -> A.Stmt:
        """Assignment or bare expression (no trailing semicolon)."""
        tok = self.peek()
        expr = self.parse_expr()
        if self.match("symbol", "="):
            if not isinstance(expr, (A.Var, A.Index)):
                raise ParseError(tok, "assignment target must be a variable "
                                      "or array element")
            value = self.parse_expr()
            return A.Assign(tok.line, expr, value)
        return A.ExprStmt(tok.line, expr)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_or()

    def parse_or(self) -> A.Expr:
        left = self.parse_and()
        while self.check("symbol", "||"):
            tok = self.advance()
            left = A.Logical(tok.line, "||", left, self.parse_and())
        return left

    def parse_and(self) -> A.Expr:
        left = self.parse_cmp()
        while self.check("symbol", "&&"):
            tok = self.advance()
            left = A.Logical(tok.line, "&&", left, self.parse_cmp())
        return left

    _CMP = ("==", "!=", "<", "<=", ">", ">=")

    def parse_cmp(self) -> A.Expr:
        left = self.parse_bitor()
        while self.peek().kind == "symbol" and self.peek().text in self._CMP:
            tok = self.advance()
            left = A.Binary(tok.line, tok.text, left, self.parse_bitor())
        return left

    def _left_assoc(self, sub, ops) -> A.Expr:
        left = sub()
        while self.peek().kind == "symbol" and self.peek().text in ops:
            tok = self.advance()
            left = A.Binary(tok.line, tok.text, left, sub())
        return left

    def parse_bitor(self) -> A.Expr:
        return self._left_assoc(self.parse_bitxor, ("|",))

    def parse_bitxor(self) -> A.Expr:
        return self._left_assoc(self.parse_bitand, ("^",))

    def parse_bitand(self) -> A.Expr:
        return self._left_assoc(self.parse_shift, ("&",))

    def parse_shift(self) -> A.Expr:
        return self._left_assoc(self.parse_sum, ("<<", ">>"))

    def parse_sum(self) -> A.Expr:
        return self._left_assoc(self.parse_term, ("+", "-"))

    def parse_term(self) -> A.Expr:
        return self._left_assoc(self.parse_unary, ("*", "/", "%"))

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "symbol" and tok.text in ("-", "!", "~"):
            self.advance()
            return A.Unary(tok.line, tok.text, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while self.check("symbol", "["):
            tok = self.advance()
            index = self.parse_expr()
            self.expect("symbol", "]")
            expr = A.Index(tok.line, expr, index)
        return expr

    def parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return A.IntLit(tok.line, int(tok.text, 0))
        if tok.kind == "keyword" and tok.text == "input":
            self.advance()
            self.expect("symbol", "(")
            self.expect("symbol", ")")
            return A.Input(tok.line)
        if tok.kind == "keyword" and tok.text == "new":
            self.advance()
            self.expect("symbol", "(")
            size = self.parse_expr()
            self.expect("symbol", ")")
            return A.NewArray(tok.line, size)
        if tok.kind == "keyword" and tok.text == "len":
            self.advance()
            self.expect("symbol", "(")
            base = self.parse_expr()
            self.expect("symbol", ")")
            return A.Len(tok.line, base)
        if tok.kind == "name":
            self.advance()
            if self.match("symbol", "("):
                args: List[A.Expr] = []
                if not self.check("symbol", ")"):
                    args.append(self.parse_expr())
                    while self.match("symbol", ","):
                        args.append(self.parse_expr())
                self.expect("symbol", ")")
                return A.Call(tok.line, tok.text, args)
            return A.Var(tok.line, tok.text)
        if self.match("symbol", "("):
            expr = self.parse_expr()
            self.expect("symbol", ")")
            return expr
        raise ParseError(tok, f"unexpected token {tok.text!r} in expression")


def parse(source: str) -> A.Program:
    """Parse wee source text into an AST."""
    return Parser(tokenize(source)).parse_program()
