"""repro - Dynamic Path-Based Software Watermarking (PLDI 2004).

A full reproduction of Collberg et al., "Dynamic Path-Based Software
Watermarking" (PLDI 2004), with synthetic substrates standing in for
the JVM (``repro.vm``, a stack-based virtual machine) and IA-32
(``repro.native``, a byte-addressed register machine), a mini-language
compiler (``repro.lang``) used to build realistic workloads, the
bytecode watermarker of Section 3 (``repro.bytecode_wm``), the
branch-function watermarker of Section 4 (``repro.native_wm``), and
the attack suites of Section 5 (``repro.attacks``).

Quick start (bytecode side)::

    from repro.bytecode_wm import WatermarkKey, embed, recognize
    from repro.workloads import gcd_module

    module = gcd_module()
    key = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])
    marked = embed(module, watermark=1234567, key=key, pieces=24)
    result = recognize(marked.module, key)
    assert result.value == 1234567
"""

__version__ = "1.0.0"
