"""Small example programs (the paper's walkthrough examples).

``gcd`` is the running example of Figure 2; ``argc_secret`` mirrors
Figure 1's program whose watermark code is guarded by the secret input
(there, ``argc == 3``; here, ``input() == 3``).
"""

from __future__ import annotations

from ..lang import compile_source
from ..vm import Module

GCD_SRC = """
// Figure 2: greatest common divisor of two secret inputs.
fn gcd(a, b) {
    while (a % b != 0) {
        var t = a % b;
        a = b;
        b = t;
    }
    return b;
}

fn main() {
    var a = input();
    var b = input();
    print(gcd(a, b));
    return 0;
}
"""

ARGC_SECRET_SRC = """
// Figure 1(a): prints a secret marker when the key input is 3.
fn main() {
    var argc = input();
    if (argc == 3) {
        print(777);   // stands in for printf("secret")
    }
    return 0;
}
"""

COLLATZ_SRC = """
// A branchy little program useful for trace tests.
fn steps(n) {
    var count = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        count = count + 1;
    }
    return count;
}

fn main() {
    print(steps(input()));
    return 0;
}
"""


def gcd_module() -> Module:
    """The paper's Figure 2 GCD program, compiled to WVM."""
    return compile_source(GCD_SRC)


def argc_secret_module() -> Module:
    """The paper's Figure 1 example, compiled to WVM."""
    return compile_source(ARGC_SECRET_SRC)


def collatz_module() -> Module:
    """A small branch-heavy program for tests and examples."""
    return compile_source(COLLATZ_SRC)
