"""CaffeineMark-like microbenchmark suite (WVM workload).

The paper's first Java benchmark is CaffeineMark: "several
microbenchmarks that test the performance of integer and floating
point arithmetic operations, loops, logical operations, and method
calls. A high percentage of the instructions in CaffeineMark are
executed frequently" — i.e. the program is small and almost entirely
hot, which is why watermark pieces eventually land in hotspots and
cause the sharp slowdown of Figure 8(a).

This suite mirrors that profile: six kernels (loop, sieve, logic,
method, string/array, fixed-point "float"), all driven from a compact
``main``, with essentially no cold code. The secret input selects the
iteration scale, making every run reproducible from the watermark key.
"""

from __future__ import annotations

from ..lang import compile_source
from ..vm import Module

CAFFEINEMARK_SRC = """
// ---- loop kernel: tight counting loops ---------------------------------
fn loop_bench(n) {
    var total = 0;
    for (var i = 0; i < n; i = i + 1) {
        total = total + i;
        if (total > 1000000) { total = total - 1000000; }
    }
    return total;
}

// ---- sieve kernel: prime counting --------------------------------------
fn sieve_bench(limit) {
    var flags = new(limit);
    var count = 0;
    for (var i = 2; i < limit; i = i + 1) {
        if (flags[i] == 0) {
            count = count + 1;
            for (var j = i + i; j < limit; j = j + i) { flags[j] = 1; }
        }
    }
    return count;
}

// ---- logic kernel: bit twiddling with branches --------------------------
fn logic_bench(n) {
    var x = 0x1a;
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        x = (x << 1) ^ (x >> 3) ^ i;
        x = x & 0xffff;
        if ((x & 1) == 1) { acc = acc + 1; }
        if ((x & 2) == 2) { acc = acc + 2; } else { acc = acc - 1; }
        if ((x & 4) == 4) { acc = acc ^ x; }
    }
    return acc;
}

// ---- method kernel: call-heavy chain ------------------------------------
fn m_leaf(x) { return x + 1; }
fn m_mid(x) { return m_leaf(x) + m_leaf(x + 1); }
fn m_top(x) { return m_mid(x) + m_mid(x + 2); }
fn method_bench(n) {
    var total = 0;
    for (var i = 0; i < n; i = i + 1) {
        total = total + m_top(i & 0xff);
    }
    return total;
}

// ---- string kernel: array copy/reverse/compare --------------------------
fn string_bench(n) {
    var a = new(64);
    var b = new(64);
    for (var i = 0; i < 64; i = i + 1) { a[i] = (i * 7 + 3) & 0x7f; }
    var checksum = 0;
    for (var round = 0; round < n; round = round + 1) {
        // copy a -> b reversed
        for (var j = 0; j < 64; j = j + 1) { b[63 - j] = a[j]; }
        // compare halves
        for (var k = 0; k < 32; k = k + 1) {
            if (a[k] == b[k]) { checksum = checksum + 1; }
        }
        a[round & 63] = round & 0x7f;
    }
    return checksum;
}

// ---- "float" kernel: 16.16 fixed-point arithmetic ------------------------
fn fx_mul(a, b) { return (a * b) >> 16; }
fn fx_div(a, b) { return (a << 16) / b; }
fn float_bench(n) {
    var x = 1 << 16;            // 1.0
    var acc = 0;
    for (var i = 1; i <= n; i = i + 1) {
        x = fx_mul(x, (3 << 14));        // * 0.75
        x = x + fx_div(1 << 16, i + 1);  // + 1/(i+1)
        if (x > (10 << 16)) { x = x - (9 << 16); }
        acc = acc + (x >> 12);
    }
    return acc;
}

fn main() {
    var scale = input();    // the secret input drives the workload
    print(loop_bench(scale * 40));
    print(sieve_bench(200 + scale * 8));
    print(logic_bench(scale * 30));
    print(method_bench(scale * 10));
    print(string_bench(scale * 2));
    print(float_bench(scale * 20));
    return 0;
}
"""


def caffeinemark_module() -> Module:
    """Compile the CaffeineMark-like suite to a fresh WVM module."""
    return compile_source(CAFFEINEMARK_SRC)


#: Default secret input: a modest scale so unwatermarked runs take a
#: few hundred thousand WVM steps, matching "performance-critical code".
DEFAULT_INPUT = [25]
