"""Jess-like rule-engine workload (WVM).

The paper's second Java benchmark is Jess, "a language interpreter
[...] contains more code (300KB as opposed to 9KB for CaffeineMark)
and a lower percentage of frequently executed code", which is why
frequency-weighted placement keeps watermark pieces out of its
hotspots and the slowdown stays insignificant (Figure 8(a)).

This workload reproduces that *shape*: a forward-chaining production
system over a flat fact store, with a large generated rule base (most
rules never fire on the secret input) plus a library of utility
functions, many of them cold. The static code is roughly an order of
magnitude larger than the CaffeineMark-like suite while the dynamic
execution touches only a small fraction of it.
"""

from __future__ import annotations

from ..lang import compile_source
from ..vm import Module

_RULE_COUNT = 72

_PRELUDE = """
// ---- fact store ---------------------------------------------------------
// Facts are triples (kind, slot_a, slot_b) in a flat array; fact_count
// tracks how many are live. Kinds 0..9 are seeded; rules assert higher
// kinds as they fire.
global facts;
global fact_count;
global fired_total;

fn store_init(capacity) {
    facts = new(capacity * 3);
    fact_count = 0;
    return 0;
}

fn assert_fact(kind, a, b) {
    if (fact_count * 3 >= len(facts)) { return 0; }
    facts[fact_count * 3] = kind;
    facts[fact_count * 3 + 1] = a;
    facts[fact_count * 3 + 2] = b;
    fact_count = fact_count + 1;
    return 1;
}

fn find_fact(kind) {
    for (var i = 0; i < fact_count; i = i + 1) {
        if (facts[i * 3] == kind) { return i; }
    }
    return -1;
}

fn fact_a(i) { return facts[i * 3 + 1]; }
fn fact_b(i) { return facts[i * 3 + 2]; }

fn count_facts(kind) {
    var n = 0;
    for (var i = 0; i < fact_count; i = i + 1) {
        if (facts[i * 3] == kind) { n = n + 1; }
    }
    return n;
}

// ---- utility library (mostly cold on the secret input) -------------------
fn util_isqrt(n) {
    if (n < 0) { return -1; }
    var x = n;
    var y = (x + 1) / 2;
    while (y < x) { x = y; y = (x + n / x) / 2; }
    return x;
}

fn util_pow(base, exp) {
    var out = 1;
    while (exp > 0) {
        if (exp & 1) { out = out * base; }
        base = base * base;
        exp = exp >> 1;
    }
    return out;
}

fn util_hash(a, b) {
    var h = a * 31 + b;
    h = h ^ (h >> 7);
    h = h * 131 + 17;
    return h & 0xffff;
}

fn util_abs(x) { if (x < 0) { return -x; } return x; }

fn util_max(a, b) { if (a > b) { return a; } return b; }

fn util_min(a, b) { if (a < b) { return a; } return b; }

fn util_sort(arr, n) {
    for (var i = 1; i < n; i = i + 1) {
        var key = arr[i];
        var j = i - 1;
        while (j >= 0 && arr[j] > key) {
            arr[j + 1] = arr[j];
            j = j - 1;
        }
        arr[j + 1] = key;
    }
    return 0;
}

fn util_binsearch(arr, n, needle) {
    var lo = 0;
    var hi = n - 1;
    while (lo <= hi) {
        var mid = (lo + hi) / 2;
        if (arr[mid] == needle) { return mid; }
        if (arr[mid] < needle) { lo = mid + 1; } else { hi = mid - 1; }
    }
    return -1;
}

fn util_fib(n) {
    var a = 0; var b = 1;
    while (n > 0) { var t = a + b; a = b; b = t; n = n - 1; }
    return a;
}

fn util_digits(n) {
    var count = 0;
    n = util_abs(n);
    while (n > 0) { n = n / 10; count = count + 1; }
    return util_max(count, 1);
}

fn util_reverse_bits(x) {
    var out = 0;
    for (var i = 0; i < 16; i = i + 1) {
        out = (out << 1) | (x & 1);
        x = x >> 1;
    }
    return out;
}

fn util_checksum(arr, n) {
    var sum = 0;
    for (var i = 0; i < n; i = i + 1) {
        sum = (sum * 33 + arr[i]) & 0xffffff;
    }
    return sum;
}

// Cold report generators: only invoked for reporting modes the secret
// input never selects.
fn report_summary(mode) {
    if (mode == 99) {
        var scratch = new(32);
        for (var i = 0; i < 32; i = i + 1) {
            scratch[i] = util_hash(i, mode);
        }
        util_sort(scratch, 32);
        return util_checksum(scratch, 32);
    }
    return 0;
}

fn report_detail(mode) {
    if (mode > 90) {
        var total = 0;
        for (var k = 0; k < fact_count; k = k + 1) {
            total = total + util_digits(fact_a(k)) + util_digits(fact_b(k));
        }
        return total;
    }
    return 0;
}
"""


def _rule_source(k: int) -> str:
    """Generate one production rule.

    Rules come in four templates; which facts they match depends on
    ``k``, so only a thin band of rules ever fires for a given seed
    kind. This produces the "large, mostly cold rule base" profile.
    """
    trigger = k % 24          # fact kind the rule matches on
    derived = 24 + (k % 40)   # fact kind the rule asserts
    template = k % 4
    if template == 0:
        body = f"""
    var i = find_fact({trigger});
    if (i < 0) {{ return 0; }}
    if (fact_a(i) % 5 != {k % 5}) {{ return 0; }}
    if (count_facts({derived}) > 0) {{ return 0; }}
    assert_fact({derived}, fact_a(i) + {k}, fact_b(i) ^ {k * 3});
    return 1;"""
    elif template == 1:
        body = f"""
    var i = find_fact({trigger});
    if (i < 0) {{ return 0; }}
    var j = find_fact({(trigger + 1) % 24});
    if (j < 0) {{ return 0; }}
    if (count_facts({derived}) > 0) {{ return 0; }}
    if (util_hash(fact_a(i), fact_b(j)) % 7 != {k % 7}) {{ return 0; }}
    assert_fact({derived}, fact_a(i) + fact_a(j), {k});
    return 1;"""
    elif template == 2:
        body = f"""
    if (count_facts({trigger}) < 2) {{ return 0; }}
    if (count_facts({derived}) > 0) {{ return 0; }}
    var i = find_fact({trigger});
    var v = util_min(fact_a(i), fact_b(i));
    assert_fact({derived}, v * {1 + k % 3}, util_abs(v - {k}));
    return 1;"""
    else:
        body = f"""
    var i = find_fact({trigger});
    if (i < 0) {{ return 0; }}
    if (fact_b(i) <= {k % 11}) {{ return 0; }}
    if (count_facts({derived}) > 0) {{ return 0; }}
    var x = util_pow(2, fact_a(i) % 6) + util_fib(fact_b(i) % 8);
    assert_fact({derived}, x & 0xffff, {k});
    return 1;"""
    return f"fn rule_{k}() {{{body}\n}}\n"


def _agenda_source(rule_count: int, burn: int) -> str:
    calls = "\n".join(
        f"        fired = fired + rule_{k}();" for k in range(rule_count)
    )
    return f"""
// ---- agenda: fire rules to a fixed point ---------------------------------
fn run_agenda(max_cycles) {{
    var cycle = 0;
    while (cycle < max_cycles) {{
        var fired = 0;
{calls}
        fired_total = fired_total + fired;
        if (fired == 0) {{ return cycle; }}
        cycle = cycle + 1;
    }}
    return cycle;
}}

fn main() {{
    var seed = input();          // secret input: seeds the fact base
    var spice = input();         // secret input: second seed component
    store_init(512);
    fired_total = 0;
    // Seed a handful of base facts; only kinds derived from the seed
    // appear, so most rules never have a trigger.
    for (var i = 0; i < 6; i = i + 1) {{
        assert_fact((seed + i * 5) % 24, seed * 3 + i, spice + i * 7);
    }}
    var cycles = run_agenda(24);
    print(cycles);
    print(fact_count);
    print(fired_total);
    // A light post-pass using a slice of the utility library.
    var keys = new(fact_count);
    for (var f = 0; f < fact_count; f = f + 1) {{
        keys[f] = util_hash(fact_a(f), fact_b(f));
    }}
    util_sort(keys, fact_count);
    print(util_checksum(keys, fact_count));
    // Working-memory scan: the long-running interpreter core. One hot
    // loop = one trace site with a huge execution count, so weighted
    // placement gives it a vanishing probability - exactly Jess's
    // "lower percentage of frequently executed code" profile.
    var wm_hash = 0;
    for (var t = 0; t < {burn}; t = t + 1) {{
        var slot = t % (fact_count * 3);
        wm_hash = (wm_hash * 31 + facts[slot] + t) & 0xffffff;
    }}
    print(wm_hash);
    print(report_summary(seed % 24));
    print(report_detail(spice % 24));
    return 0;
}}
"""


def jess_source(rule_count: int = _RULE_COUNT, burn: int = 30000) -> str:
    """The complete wee source of the rule-engine workload.

    ``burn`` sizes the working-memory scan that dominates the running
    time (the interpreter core); the static rule base stays cold.
    """
    rules = "".join(_rule_source(k) for k in range(rule_count))
    return _PRELUDE + rules + _agenda_source(rule_count, burn)


def jess_module(rule_count: int = _RULE_COUNT, burn: int = 30000) -> Module:
    """Compile the Jess-like workload to a fresh WVM module."""
    return compile_source(jess_source(rule_count, burn))


#: Default secret input: seed and spice for the fact base.
DEFAULT_INPUT = [7, 13]
