"""Benchmark workloads, written in wee and compiled per substrate.

* :func:`gcd_module`, :func:`argc_secret_module`, :func:`collatz_module`
  — the paper's walkthrough examples (Figures 1 and 2);
* :func:`caffeinemark_module` — hot microbenchmark suite (Fig. 8);
* :func:`jess_module` — large, cold rule engine (Fig. 8);
* :mod:`repro.workloads.spec` — ten SPEC-like kernels (Fig. 9).
"""

from .caffeinemark import CAFFEINEMARK_SRC, caffeinemark_module
from .caffeinemark import DEFAULT_INPUT as CAFFEINEMARK_INPUT
from .jesslike import DEFAULT_INPUT as JESS_INPUT
from .jesslike import jess_module, jess_source
from .spec import (
    REF_INPUT as SPEC_REF_INPUT,
    SPEC_PROGRAMS,
    SPEC_SOURCES,
    TRAIN_INPUT as SPEC_TRAIN_INPUT,
    spec_native,
    spec_vm,
)
from .simple import (
    ARGC_SECRET_SRC,
    COLLATZ_SRC,
    GCD_SRC,
    argc_secret_module,
    collatz_module,
    gcd_module,
)

__all__ = [
    "ARGC_SECRET_SRC",
    "SPEC_PROGRAMS",
    "SPEC_REF_INPUT",
    "SPEC_SOURCES",
    "SPEC_TRAIN_INPUT",
    "spec_native",
    "spec_vm",
    "CAFFEINEMARK_INPUT",
    "CAFFEINEMARK_SRC",
    "COLLATZ_SRC",
    "GCD_SRC",
    "JESS_INPUT",
    "argc_secret_module",
    "caffeinemark_module",
    "collatz_module",
    "gcd_module",
    "jess_module",
    "jess_source",
]
