"""SPEC-like benchmark kernels (paper Section 5.2 evaluation programs).

The paper evaluates on ten SPECint-2000 programs (eon and perl were
dropped). We model each with a kernel that exercises the same *kind*
of computation, written in wee and compiled to N32 (for the native
evaluation, Fig. 9) and to WVM (used by a few cross-checks):

========  ==========================================================
bzip2     run-length + move-to-front compression round-trip
crafty    bitboard move generation and popcount-heavy search
gap       permutation-group orbit enumeration
gcc       constant folding over a small expression IR
gzip      LZ77-style greedy match compression
mcf       Bellman-Ford min-cost relaxation on a grid network
parser    tokenizer + operator-precedence evaluation
twolf     annealing-style placement cost minimization
vortex    hashed object store with inserts and lookups
vpr       BFS maze routing on a grid
========  ==========================================================

Every kernel reads two values from the secret input (a seed and a
scale), mixes them through a shared xorshift PRNG, does real work with
hot loops *and* one-shot cold paths (the native watermarker needs cold
begin edges and tamper-proofing candidates), and prints checksums.

Inputs: ``TRAIN_INPUT`` is used for profiling (the paper's SPEC train
set), ``REF_INPUT`` for measurement (the ref set).
"""

from __future__ import annotations

from typing import Dict, List

from ..lang import compile_source
from ..lang.codegen_native import compile_source_native
from ..native.image import BinaryImage
from ..vm import Module

# TRAIN and REF select different workload scales but deliberately warm
# the same cold-library routine ((seed*7 + scale) % 110 == 97 for
# both): a program's configuration-dependent code paths are fixed
# across runs of one deployment, and the native watermark's begin edge
# must execute on every input the evaluation uses.
TRAIN_INPUT: List[int] = [13, 6]
REF_INPUT: List[int] = [75, 12]

_PRELUDE = """
global rng_state;

// All PRNG arithmetic is masked to 31 bits after every potentially
// overflowing operation so the 64-bit WVM and the 32-bit N32 builds
// of each kernel produce identical streams.
fn rng_init(seed) {
    rng_state = (seed * 2654435761 + 1) & 0x7fffffff;
    if (rng_state == 0) { rng_state = 88172645; }
    return 0;
}

fn rng_next() {
    var x = rng_state;
    x = (x ^ (x << 13)) & 0x7fffffff;
    x = x ^ (x >> 17);
    x = (x ^ (x << 5)) & 0x7fffffff;
    if (x == 0) { x = 392687; }
    rng_state = x;
    return x;
}

fn checksum_mix(acc, v) {
    return ((acc * 33) + v) & 0xffffff;
}
"""

def _cold_library(n_funcs: int = 110) -> str:
    """A generated library of mostly-cold utility routines.

    Real SPEC programs carry large bodies of rarely executed code
    (option handling, error paths, format conversions); the paper's
    size figures (5-16% increase for a 512-bit watermark) only make
    sense against binaries of realistic size. This library gives each
    kernel tens of kilobytes of plausible code: a dispatcher invokes
    exactly one routine per run (selected by the seed), the rest stay
    cold - supplying the cold begin edges and tamper-proofing
    candidates the native embedder needs.
    """
    parts = []
    for k in range(n_funcs):
        variant = k % 4
        if variant == 0:
            body = f"""
    var acc = x + {k};
    for (var i = 0; i < 8; i = i + 1) {{
        if ((acc & {1 << (k % 7)}) != 0) {{ acc = acc * 3 + 1; }}
        else {{ acc = acc / 2 + {k % 13}; }}
        acc = acc & 0xffff;
    }}
    return acc;"""
        elif variant == 1:
            body = f"""
    var lo = 0;
    var hi = x & 0xff;
    var steps = 0;
    while (lo < hi) {{
        var mid = (lo + hi) / 2;
        if ((mid * mid) % 97 < {k % 47}) {{ lo = mid + 1; }}
        else {{ hi = mid; }}
        steps = steps + 1;
    }}
    return lo * 256 + steps;"""
        elif variant == 2:
            body = f"""
    var table = new(16);
    for (var i = 0; i < 16; i = i + 1) {{
        table[i] = (x * (i + {k})) & 0xff;
    }}
    var best = 0;
    for (var j = 1; j < 16; j = j + 1) {{
        if (table[j] > table[best]) {{ best = j; }}
    }}
    return table[best] * 16 + best;"""
        else:
            body = f"""
    var a = x & 0xffff;
    var b = {(k * 2654435761) & 0xFFFF};
    while (b != 0) {{
        var t = a % b;
        a = b;
        b = t;
    }}
    if (a == 0) {{ a = {k + 1}; }}
    return a;"""
        parts.append(f"fn util_cold_{k}(x) {{{body}\n}}\n")
    dispatch = ["fn cold_dispatch(sel, x) {"]
    for k in range(n_funcs):
        dispatch.append(
            f"    if (sel == {k}) {{ return util_cold_{k}(x); }}"
        )
    dispatch.append("    return 0;")
    dispatch.append("}")
    return "\n".join(["".join(parts)] + dispatch) + "\n"


_COLD_LIBRARY = _cold_library()

#: Call the dispatcher once per run; the selector depends on the seed,
#: so exactly one cold routine warms up and the rest never execute.
_COLD_CALL = "    print(cold_dispatch((seed * 7 + scale) % 110, seed));\n"

SPEC_SOURCES: Dict[str, str] = {}

SPEC_SOURCES["bzip2"] = _PRELUDE + """
fn rle_compress(src, n, dst) {
    var out = 0;
    var i = 0;
    while (i < n) {
        var v = src[i];
        var run = 1;
        while (i + run < n && src[i + run] == v && run < 255) {
            run = run + 1;
        }
        dst[out] = run;
        dst[out + 1] = v;
        out = out + 2;
        i = i + run;
    }
    return out;
}

fn rle_expand(src, n, dst) {
    var out = 0;
    for (var i = 0; i < n; i = i + 2) {
        var run = src[i];
        var v = src[i + 1];
        for (var j = 0; j < run; j = j + 1) {
            dst[out] = v;
            out = out + 1;
        }
    }
    return out;
}

fn mtf_encode(buf, n, table) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        var v = buf[i] & 15;
        var pos = 0;
        while (table[pos] != v) { pos = pos + 1; }
        acc = checksum_mix(acc, pos);
        while (pos > 0) {
            table[pos] = table[pos - 1];
            pos = pos - 1;
        }
        table[0] = v;
    }
    return acc;
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var n = 200 + scale * 40;
    var src = new(n);
    for (var i = 0; i < n; i = i + 1) {
        // Runs of repeated values, like real text blocks.
        if (rng_next() % 4 != 0 && i > 0) { src[i] = src[i - 1]; }
        else { src[i] = rng_next() % 16; }
    }
    var packed = new(2 * n + 4);
    var plen = rle_compress(src, n, packed);
    var unpacked = new(n + 4);
    var ulen = rle_expand(packed, plen, unpacked);
    if (ulen != n) { print(-1); return 1; }   // cold error path
    var ok = 1;
    for (var k = 0; k < n; k = k + 1) {
        if (unpacked[k] != src[k]) { ok = 0; }
    }
    if (ok == 0) { print(-2); return 1; }     // cold error path
    var table = new(16);
    for (var t = 0; t < 16; t = t + 1) { table[t] = t; }
    print(plen);
    print(mtf_encode(src, n, table));
    return 0;
}
"""

SPEC_SOURCES["crafty"] = _PRELUDE + """
fn popcount(x) {
    var count = 0;
    while (x != 0) {
        x = x & (x - 1);
        count = count + 1;
    }
    return count;
}

fn knight_moves(sq) {
    // Bitboard of knight moves on an 8x8 board packed in 32 bits of
    // two halves (squares 0..31 handled; upper half mirrored).
    var r = sq / 8;
    var f = sq % 8;
    var bb = 0;
    if (r + 2 <= 7 && f + 1 <= 7) { bb = bb | (1 << (((r + 2) * 8 + f + 1) & 31)); }
    if (r + 2 <= 7 && f - 1 >= 0) { bb = bb | (1 << (((r + 2) * 8 + f - 1) & 31)); }
    if (r - 2 >= 0 && f + 1 <= 7) { bb = bb | (1 << (((r - 2) * 8 + f + 1) & 31)); }
    if (r - 2 >= 0 && f - 1 >= 0) { bb = bb | (1 << (((r - 2) * 8 + f - 1) & 31)); }
    if (r + 1 <= 7 && f + 2 <= 7) { bb = bb | (1 << (((r + 1) * 8 + f + 2) & 31)); }
    if (r + 1 <= 7 && f - 2 >= 0) { bb = bb | (1 << (((r + 1) * 8 + f - 2) & 31)); }
    if (r - 1 >= 0 && f + 2 <= 7) { bb = bb | (1 << (((r - 1) * 8 + f + 2) & 31)); }
    if (r - 1 >= 0 && f - 2 >= 0) { bb = bb | (1 << (((r - 1) * 8 + f - 2) & 31)); }
    return bb;
}

fn search(occupied, sq, depth) {
    if (depth == 0) { return 1; }
    var moves = knight_moves(sq) & ~occupied;
    var nodes = 1;
    var m = moves;
    while (m != 0) {
        var bit = m & (-m);
        var target = popcount(bit - 1);
        nodes = nodes + search(occupied | bit, target, depth - 1);
        m = m & (m - 1);
    }
    return nodes;
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var total = 0;
    var games = 2 + scale / 4;
    for (var g = 0; g < games; g = g + 1) {
        var occupied = rng_next() & 0xffff;
        var sq = rng_next() % 32;
        total = checksum_mix(total, search(occupied, sq, 3));
    }
    print(total);
    if (total == 0) { print(-1); }   // cold path
    return 0;
}
"""

SPEC_SOURCES["gap"] = _PRELUDE + """
fn apply_perm(perm, x) { return perm[x]; }

fn orbit_size(perm1, perm2, n, start) {
    var seen = new(n);
    var queue = new(n * 2 + 2);
    var head = 0;
    var tail = 0;
    queue[tail] = start;
    tail = tail + 1;
    seen[start] = 1;
    var size = 0;
    while (head < tail) {
        var x = queue[head];
        head = head + 1;
        size = size + 1;
        var y1 = apply_perm(perm1, x);
        if (seen[y1] == 0) { seen[y1] = 1; queue[tail] = y1; tail = tail + 1; }
        var y2 = apply_perm(perm2, x);
        if (seen[y2] == 0) { seen[y2] = 1; queue[tail] = y2; tail = tail + 1; }
    }
    return size;
}

fn random_perm(n) {
    var p = new(n);
    for (var i = 0; i < n; i = i + 1) { p[i] = i; }
    for (var j = n - 1; j > 0; j = j - 1) {
        var k = rng_next() % (j + 1);
        var t = p[j];
        p[j] = p[k];
        p[k] = t;
    }
    return p;
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var n = 40 + scale * 8;
    var p1 = random_perm(n);
    var p2 = random_perm(n);
    var acc = 0;
    for (var s = 0; s < n; s = s + 4) {
        acc = checksum_mix(acc, orbit_size(p1, p2, n, s));
    }
    print(acc);
    if (acc == 12345) { print(-1); }   // cold path
    return 0;
}
"""

SPEC_SOURCES["gcc"] = _PRELUDE + """
// Expression IR: op-coded triples (op, left, right) in flat arrays.
// op: 0=const(left is value), 1=add, 2=sub, 3=mul, 4=and, 5=or.

fn fold(ops, lhs, rhs, vals, known, i) {
    if (known[i] == 1) { return vals[i]; }
    var op = ops[i];
    if (op == 0) {
        vals[i] = lhs[i];
        known[i] = 1;
        return vals[i];
    }
    var a = fold(ops, lhs, rhs, vals, known, lhs[i]);
    var b = fold(ops, lhs, rhs, vals, known, rhs[i]);
    var v = 0;
    if (op == 1) { v = a + b; }
    else if (op == 2) { v = a - b; }
    else if (op == 3) { v = (a * b) & 0xffff; }
    else if (op == 4) { v = a & b; }
    else if (op == 5) { v = a | b; }
    else { print(-9); return 0; }     // cold: bad opcode
    vals[i] = v;
    known[i] = 1;
    return v;
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var n = 60 + scale * 12;
    var ops = new(n);
    var lhs = new(n);
    var rhs = new(n);
    var vals = new(n);
    var known = new(n);
    // Leaves first, then interior nodes referencing earlier entries.
    for (var i = 0; i < n; i = i + 1) {
        if (i < 8) {
            ops[i] = 0;
            lhs[i] = rng_next() % 1000;
        } else {
            ops[i] = 1 + rng_next() % 5;
            lhs[i] = rng_next() % i;
            rhs[i] = rng_next() % i;
        }
    }
    var acc = 0;
    for (var pass = 0; pass < 3; pass = pass + 1) {
        for (var k = 0; k < n; k = k + 1) { known[k] = 0; }
        for (var r = n - 1; r >= n - 5; r = r - 1) {
            acc = checksum_mix(acc, fold(ops, lhs, rhs, vals, known, r));
        }
    }
    print(acc);
    return 0;
}
"""

SPEC_SOURCES["gzip"] = _PRELUDE + """
fn find_match(buf, pos, n, max_back) {
    // Greedy longest match within a small window (LZ77 style).
    var best_len = 0;
    var best_dist = 0;
    var back = 1;
    while (back <= max_back && back <= pos) {
        var mlen = 0;
        while (pos + mlen < n && buf[pos + mlen] == buf[pos - back + mlen]
               && mlen < 32) {
            mlen = mlen + 1;
        }
        if (mlen > best_len) {
            best_len = mlen;
            best_dist = back;
        }
        back = back + 1;
    }
    return best_len * 256 + best_dist;
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var n = 300 + scale * 30;
    var buf = new(n);
    for (var i = 0; i < n; i = i + 1) {
        if (i >= 16 && rng_next() % 3 != 0) {
            buf[i] = buf[i - 9];     // induce matches
        } else {
            buf[i] = rng_next() % 8;
        }
    }
    var acc = 0;
    var tokens = 0;
    var pos = 0;
    while (pos < n) {
        var m = find_match(buf, pos, n, 24);
        var mlen = m / 256;
        if (mlen >= 3) {
            acc = checksum_mix(acc, m);
            pos = pos + mlen;
        } else {
            acc = checksum_mix(acc, buf[pos]);
            pos = pos + 1;
        }
        tokens = tokens + 1;
    }
    print(tokens);
    print(acc);
    if (tokens > n) { print(-1); }   // cold: impossible
    return 0;
}
"""

SPEC_SOURCES["mcf"] = _PRELUDE + """
fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var w = 6 + scale / 3;
    var h = 6 + scale / 3;
    var n = w * h;
    var dist = new(n);
    var cost_right = new(n);
    var cost_down = new(n);
    var big = 1000000;
    for (var i = 0; i < n; i = i + 1) {
        dist[i] = big;
        cost_right[i] = 1 + rng_next() % 9;
        cost_down[i] = 1 + rng_next() % 9;
    }
    dist[0] = 0;
    // Bellman-Ford style relaxation sweeps.
    var changed = 1;
    var rounds = 0;
    while (changed == 1 && rounds < n) {
        changed = 0;
        rounds = rounds + 1;
        for (var y = 0; y < h; y = y + 1) {
            for (var x = 0; x < w; x = x + 1) {
                var u = y * w + x;
                if (dist[u] < big) {
                    if (x + 1 < w) {
                        var v = u + 1;
                        if (dist[u] + cost_right[u] < dist[v]) {
                            dist[v] = dist[u] + cost_right[u];
                            changed = 1;
                        }
                    }
                    if (y + 1 < h) {
                        var d = u + w;
                        if (dist[u] + cost_down[u] < dist[d]) {
                            dist[d] = dist[u] + cost_down[u];
                            changed = 1;
                        }
                    }
                }
            }
        }
    }
    print(dist[n - 1]);
    print(rounds);
    if (dist[n - 1] >= big) { print(-1); }   // cold: unreachable sink
    return 0;
}
"""

SPEC_SOURCES["parser"] = _PRELUDE + """
// Token codes: 0..9 literal digit, 10 '+', 11 '*', 12 '(', 13 ')'.

fn gen_tokens(buf, cap, depth) {
    // Produce a random fully parenthesized expression; returns length.
    var used = 0;
    // iterative generation: (d (d (d ...)))
    for (var d = 0; d < depth; d = d + 1) {
        buf[used] = 12; used = used + 1;                 // (
        buf[used] = rng_next() % 10; used = used + 1;    // digit
        buf[used] = 10 + rng_next() % 2; used = used + 1; // + or *
    }
    buf[used] = rng_next() % 10; used = used + 1;
    for (var c = 0; c < depth; c = c + 1) {
        buf[used] = 13; used = used + 1;                 // )
    }
    return used;
}

fn eval_tokens(buf, tlen) {
    // Operator-precedence-free evaluation via explicit stacks.
    var vals = new(tlen + 2);
    var ops = new(tlen + 2);
    var vtop = 0;
    var otop = 0;
    for (var i = 0; i < tlen; i = i + 1) {
        var t = buf[i];
        if (t < 10) { vals[vtop] = t; vtop = vtop + 1; }
        else if (t == 12) { ops[otop] = t; otop = otop + 1; }
        else if (t == 13) {
            while (otop > 0 && ops[otop - 1] != 12) {
                var op = ops[otop - 1];
                otop = otop - 1;
                var b = vals[vtop - 1];
                var a = vals[vtop - 2];
                vtop = vtop - 2;
                if (op == 10) { vals[vtop] = (a + b) & 0xffff; }
                else { vals[vtop] = (a * b) & 0xffff; }
                vtop = vtop + 1;
            }
            if (otop == 0) { print(-3); return 0; }   // cold: unbalanced
            otop = otop - 1;
        }
        else { ops[otop] = t; otop = otop + 1; }
    }
    while (otop > 0) {
        var op2 = ops[otop - 1];
        otop = otop - 1;
        if (op2 == 12) { print(-4); return 0; }       // cold: unbalanced
        var b2 = vals[vtop - 1];
        var a2 = vals[vtop - 2];
        vtop = vtop - 2;
        if (op2 == 10) { vals[vtop] = (a2 + b2) & 0xffff; }
        else { vals[vtop] = (a2 * b2) & 0xffff; }
        vtop = vtop + 1;
    }
    return vals[0];
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var acc = 0;
    var sentences = 4 + scale;
    for (var s = 0; s < sentences; s = s + 1) {
        var buf = new(200);
        var tlen = gen_tokens(buf, 200, 8 + rng_next() % 24);
        acc = checksum_mix(acc, eval_tokens(buf, tlen));
    }
    print(acc);
    return 0;
}
"""

SPEC_SOURCES["twolf"] = _PRELUDE + """
fn placement_cost(xs, ys, nets_a, nets_b, ncells, nnets) {
    var cost = 0;
    for (var i = 0; i < nnets; i = i + 1) {
        var a = nets_a[i];
        var b = nets_b[i];
        var dx = xs[a] - xs[b];
        var dy = ys[a] - ys[b];
        if (dx < 0) { dx = -dx; }
        if (dy < 0) { dy = -dy; }
        cost = cost + dx + dy;
    }
    return cost;
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var ncells = 20 + scale * 2;
    var nnets = ncells * 2;
    var xs = new(ncells);
    var ys = new(ncells);
    var na = new(nnets);
    var nb = new(nnets);
    for (var i = 0; i < ncells; i = i + 1) {
        xs[i] = rng_next() % 64;
        ys[i] = rng_next() % 64;
    }
    for (var e = 0; e < nnets; e = e + 1) {
        na[e] = rng_next() % ncells;
        nb[e] = rng_next() % ncells;
    }
    var best = placement_cost(xs, ys, na, nb, ncells, nnets);
    var accepted = 0;
    var moves = 60 + scale * 15;
    for (var m = 0; m < moves; m = m + 1) {
        var c = rng_next() % ncells;
        var oldx = xs[c];
        var oldy = ys[c];
        xs[c] = rng_next() % 64;
        ys[c] = rng_next() % 64;
        var cost = placement_cost(xs, ys, na, nb, ncells, nnets);
        // Accept improving moves, plus a decaying random fraction.
        if (cost < best || rng_next() % (m + 2) == 0) {
            best = cost;
            accepted = accepted + 1;
        } else {
            xs[c] = oldx;
            ys[c] = oldy;
        }
    }
    print(best);
    print(accepted);
    if (best < 0) { print(-1); }   // cold: impossible
    return 0;
}
"""

SPEC_SOURCES["vortex"] = _PRELUDE + """
// Object store: open-addressed hash table of (key, field1, field2).

fn slot_of(keys, cap, key) {
    var h = (key * 2654435761) & 0x7fffffff;
    var s = h % cap;
    var probes = 0;
    while (keys[s] != 0 && keys[s] != key) {
        s = (s + 1) % cap;
        probes = probes + 1;
        if (probes > cap) { return -1; }   // cold: table full
    }
    return s;
}

fn store_insert(keys, f1, f2, cap, key, a, b) {
    var s = slot_of(keys, cap, key);
    if (s < 0) { return 0; }
    keys[s] = key;
    f1[s] = a;
    f2[s] = b;
    return 1;
}

fn store_lookup(keys, f1, f2, cap, key) {
    var s = slot_of(keys, cap, key);
    if (s < 0) { return -1; }
    if (keys[s] == 0) { return 0; }
    return f1[s] + f2[s];
}

fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var cap = 512;
    var n = 80 + scale * 16;
    var keys = new(cap);
    var f1 = new(cap);
    var f2 = new(cap);
    var inserted = 0;
    for (var i = 0; i < n; i = i + 1) {
        var key = 1 + rng_next() % 4096;
        inserted = inserted + store_insert(keys, f1, f2, cap, key,
                                           rng_next() % 100, i);
    }
    var acc = 0;
    for (var q = 0; q < n * 2; q = q + 1) {
        var probe = 1 + rng_next() % 4096;
        acc = checksum_mix(acc, store_lookup(keys, f1, f2, cap, probe));
    }
    print(inserted);
    print(acc);
    return 0;
}
"""

SPEC_SOURCES["vpr"] = _PRELUDE + """
fn main() {
    var seed = input();
    var scale = input();
    rng_init(seed);
    var w = 10 + scale;
    var h = 10 + scale;
    var n = w * h;
    var blocked = new(n);
    for (var i = 0; i < n; i = i + 1) {
        if (rng_next() % 5 == 0) { blocked[i] = 1; }
    }
    blocked[0] = 0;
    blocked[n - 1] = 0;
    // BFS maze route from corner to corner.
    var dist = new(n);
    var queue = new(n + 2);
    for (var d = 0; d < n; d = d + 1) { dist[d] = -1; }
    var head = 0;
    var tail = 0;
    dist[0] = 0;
    queue[tail] = 0;
    tail = tail + 1;
    while (head < tail) {
        var u = queue[head];
        head = head + 1;
        var ux = u % w;
        var uy = u / w;
        if (ux + 1 < w && blocked[u + 1] == 0 && dist[u + 1] < 0) {
            dist[u + 1] = dist[u] + 1; queue[tail] = u + 1; tail = tail + 1;
        }
        if (ux - 1 >= 0 && blocked[u - 1] == 0 && dist[u - 1] < 0) {
            dist[u - 1] = dist[u] + 1; queue[tail] = u - 1; tail = tail + 1;
        }
        if (uy + 1 < h && blocked[u + w] == 0 && dist[u + w] < 0) {
            dist[u + w] = dist[u] + 1; queue[tail] = u + w; tail = tail + 1;
        }
        if (uy - 1 >= 0 && blocked[u - w] == 0 && dist[u - w] < 0) {
            dist[u - w] = dist[u] + 1; queue[tail] = u - w; tail = tail + 1;
        }
    }
    print(dist[n - 1]);
    print(tail);
    if (dist[n - 1] < 0) { print(777); }   // cold-ish: unroutable maze
    return 0;
}
"""

def _weave_cold_library(src: str) -> str:
    """Append the cold library and call it once at the end of main."""
    # Insert the dispatcher call right before main's final `return 0;`.
    idx = src.rstrip().rfind("return 0;")
    woven = src[:idx] + _COLD_CALL + "    " + src[idx:]
    return woven + _COLD_LIBRARY


SPEC_SOURCES = {name: _weave_cold_library(src)
                for name, src in SPEC_SOURCES.items()}

SPEC_PROGRAMS = tuple(sorted(SPEC_SOURCES))


def spec_native(name: str) -> BinaryImage:
    """Compile one SPEC-like kernel to an N32 binary."""
    return compile_source_native(SPEC_SOURCES[name])


def spec_vm(name: str) -> Module:
    """Compile one SPEC-like kernel to a WVM module."""
    return compile_source(SPEC_SOURCES[name])
