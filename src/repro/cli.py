"""Command-line interface for the path-based watermarking toolchain.

Usage (also via ``python -m repro``)::

    # Compile a wee program to WVM assembly
    python -m repro compile app.wee -o app.wasm

    # Embed a fingerprint (traces the program on the key inputs)
    python -m repro embed app.wasm -o marked.wasm \\
        --watermark 0x1337 --bits 16 --secret vendor --inputs 25,10

    # Recognize (dynamic + blind: only the program and the key)
    python -m repro recognize marked.wasm \\
        --bits 16 --secret vendor --inputs 25,10

    # Run a module / apply an attack / plan redundancy
    python -m repro run app.wasm --inputs 25,10
    python -m repro attack marked.wasm -o attacked.wasm \\
        --transform sense-inversion
    python -m repro plan --bits 128 --loss 0.4 --target 0.99

    # Fingerprint many copies in parallel from one shared preparation,
    # with spans + metrics + a VM dispatch profile
    python -m repro batch-embed manifest.json -o dist/ --workers 4 \\
        --obs-out obs.jsonl --profile

    # Persist the preparation as a store artifact, then serve
    # embed/recognize over HTTP from it
    python -m repro artifact prepare manifest.json --store store/
    python -m repro serve --store store/ --port 8765 --workers 4

Modules travel as WVM assembly text (the `.wasm` extension here means
"watermarking asm", not WebAssembly).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
from typing import List, Optional, Sequence

from . import obs
from .obs.journal import read_events, read_journal, read_spans
from .obs.slo import SLOEngine, default_objectives, load_objectives
from .attacks.bytecode import (
    insert_branches,
    insert_noops,
    invert_branch_senses,
    renumber_locals,
    reorder_blocks,
    split_blocks,
)
from .bytecode_wm import (
    WatermarkKey,
    diversify,
    embed,
    recognition_report,
    recognize,
)
from .campaign import CampaignConfig, DEFAULT_ATTACKS, run_campaign
from .campaign.generator import GeneratorError
from .codec import CodecError
from .core.planner import plan_redundancy
from .lang import compile_source
from .lang.codegen_native import compile_source_native
from .native import MachineFault, format_listing, run_image
from .native.imagefile import dump_image, load_image
from .native_wm import embed_native, extract_native_auto, native_recognition_report
from .pipeline import (
    PrepareError,
    PreparedProgram,
    load_manifest,
    prepare,
    run_batch,
)
from .serve import (
    ServerConfig,
    ServiceClient,
    ServiceError,
    StoreError,
    open_store,
    serve,
)
from .vm import VMError, assemble, disassemble, run_module, verify_module

ATTACKS = {
    "noop-insertion": lambda m, r: insert_noops(m, 200, r),
    "branch-insertion": lambda m, r: insert_branches(m, 50, r),
    "sense-inversion": lambda m, r: invert_branch_senses(m, 1.0, r),
    "block-reordering": lambda m, r: reorder_blocks(m, r),
    "block-splitting": lambda m, r: split_blocks(m, 40, r),
    "locals-renumbering": lambda m, r: renumber_locals(m, r),
}


def _parse_inputs(text: Optional[str]) -> List[int]:
    if not text:
        return []
    return [int(tok, 0) for tok in text.split(",") if tok.strip()]


def _read_module(path: str):
    with open(path) as fp:
        return assemble(fp.read())


def _write_module(module, path: Optional[str]) -> None:
    text = disassemble(module)
    if path is None or path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w") as fp:
            fp.write(text)


def cmd_compile(args) -> int:
    with open(args.source) as fp:
        module = compile_source(fp.read())
    verify_module(module)
    _write_module(module, args.output)
    return 0


def cmd_run(args) -> int:
    module = _read_module(args.module)
    try:
        result = run_module(module, _parse_inputs(args.inputs))
    except VMError as exc:
        print(f"program trapped: {exc}", file=sys.stderr)
        return 2
    for value in result.output:
        print(value)
    print(f"[{result.steps} instructions executed]", file=sys.stderr)
    return 0


def cmd_embed(args) -> int:
    module = _read_module(args.module)
    key = WatermarkKey(secret=args.secret.encode(),
                       inputs=_parse_inputs(args.inputs))
    if args.diversify is not None:
        module = diversify(module, args.diversify)
    try:
        result = embed(
            module,
            watermark=int(args.watermark, 0),
            key=key,
            pieces=args.pieces,
            watermark_bits=args.bits,
            codec=args.codec,
        )
    except CodecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _write_module(result.module, args.output)
    print(
        f"embedded {result.piece_count} pieces "
        f"({result.codec} codec, +{result.byte_size_increase} bytes)",
        file=sys.stderr,
    )
    return 0


def cmd_recognize(args) -> int:
    module = _read_module(args.module)
    key = WatermarkKey(secret=args.secret.encode(),
                       inputs=_parse_inputs(args.inputs))
    try:
        found = recognize(module, key, watermark_bits=args.bits,
                          codec=args.codec)
    except CodecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except VMError as exc:
        print(f"program trapped during tracing: {exc}", file=sys.stderr)
        return 2
    if args.diagnose:
        report = recognition_report(found, watermark_bits=args.bits)
        print(report.summary(), file=sys.stderr)
    if found.complete:
        print(f"{found.value:#x}")
        return 0
    print("no watermark recovered", file=sys.stderr)
    return 1


def cmd_attack(args) -> int:
    module = _read_module(args.module)
    transform = ATTACKS[args.transform]
    attacked = transform(module, random.Random(args.seed))
    verify_module(attacked)
    _write_module(attacked, args.output)
    return 0


def cmd_batch_embed(args) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    manifest = load_manifest(args.manifest)
    module = _read_module(manifest.module_path)
    key = manifest.key()

    # --journal arms the tracer too: the hub's span sink only sees
    # spans when one is recording, and an empty span stream would
    # leave 'repro obs trace' nothing to render.
    tracer = None
    if args.obs_out or args.journal:
        tracer = obs.enable_tracing()
    hub = None
    if args.journal:
        hub = obs.TelemetryHub(obs.HubConfig(
            journal_path=os.path.join(args.journal, "journal.jsonl")
        ))
        obs.set_hub(hub)

    # Shared preparation, optionally persisted across invocations —
    # either in the multi-release artifact store (--store, optionally
    # sharded into a fabric via --store-shards) or a single-artifact
    # pickle file (--prepare-cache).
    prepared = None
    cache_hit = False
    if args.store:
        try:
            store = open_store(
                args.store, create=True,
                shards=getattr(args, "store_shards", None),
            )
        except StoreError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            prepared, cache_hit = store.get_or_prepare(
                module,
                key,
                manifest.watermark_bits,
                pieces=manifest.pieces,
                piece_loss=manifest.piece_loss,
                target_success=manifest.target_success,
                profile=args.profile,
                codec=manifest.codec,
            )
        except VMError as exc:
            print(f"program trapped during tracing: {exc}", file=sys.stderr)
            return 2
    elif args.prepare_cache and os.path.exists(args.prepare_cache):
        try:
            candidate = PreparedProgram.load(args.prepare_cache)
        except PrepareError as exc:
            print(f"ignoring prepare cache: {exc}", file=sys.stderr)
        else:
            if candidate.matches(
                module, key, manifest.watermark_bits, manifest.pieces,
                codec=manifest.codec,
            ):
                prepared, cache_hit = candidate, True
            else:
                print(
                    "prepare cache is stale for this manifest; re-preparing",
                    file=sys.stderr,
                )
    if prepared is None:
        try:
            prepared = prepare(
                module,
                key,
                manifest.watermark_bits,
                pieces=manifest.pieces,
                piece_loss=manifest.piece_loss,
                target_success=manifest.target_success,
                profile=args.profile,
                codec=manifest.codec,
            )
        except VMError as exc:
            print(f"program trapped during tracing: {exc}", file=sys.stderr)
            return 2
        if args.prepare_cache:
            prepared.save(args.prepare_cache)

    report = run_batch(
        prepared,
        manifest.copies,
        workers=args.workers,
        outdir=args.output,
        chunksize=args.chunksize,
        cache_hits=1 if cache_hit else 0,
        cache_misses=0 if cache_hit else 1,
        profile=args.profile,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    report.write(os.path.join(args.output, "report.json"))

    if args.obs_out and tracer is not None:
        # One JSON object per line, discriminated by "kind": every
        # span of the run's tree, then every metric sample.
        with open(args.obs_out, "w") as fp:
            tracer.write_jsonl(fp)
            obs.get_registry().write_jsonl(fp)
        prom_path = os.path.splitext(args.obs_out)[0] + ".prom"
        with open(prom_path, "w") as fp:
            fp.write(obs.get_registry().to_prometheus())
    if args.profile and report.dispatch_profile is not None:
        with open(os.path.join(args.output, "profile.json"), "w") as fp:
            report.dispatch_profile.write_json(fp)
        print(report.dispatch_profile.summary(), file=sys.stderr)
    if hub is not None:
        hub.snapshot_metrics(obs.get_registry())
        obs.set_hub(None)
        hub.close()
    if tracer is not None:
        obs.disable_tracing()

    print(report.summary(), file=sys.stderr)
    return 0 if report.all_ok else 1


def cmd_obs_tail(args) -> int:
    events = read_events(args.journal)
    matched = [
        e for e in events if e.matches(args.kind, args.name, args.route)
    ]
    for event in matched[-max(0, args.limit):]:
        print(json.dumps(event.to_dict(), sort_keys=True))
    return 0


def cmd_obs_summary(args) -> int:
    events = 0
    spans = 0
    snapshots = 0
    kinds: dict = {}
    traces: set = set()
    first = None
    last = None
    for doc in read_journal(args.journal):
        rec = doc.get("rec")
        if rec == "event":
            events += 1
            kinds[doc.get("kind", "?")] = kinds.get(doc.get("kind", "?"), 0) + 1
            unix = doc.get("unix")
            if isinstance(unix, (int, float)):
                first = unix if first is None else min(first, unix)
                last = unix if last is None else max(last, unix)
        elif rec == "span":
            spans += 1
            if doc.get("trace_id"):
                traces.add(doc["trace_id"])
        elif rec == "metrics":
            snapshots += 1
    print(f"events    {events}")
    for kind in sorted(kinds):
        print(f"  {kind:<18} {kinds[kind]}")
    print(f"spans     {spans}  ({len(traces)} trace(s))")
    print(f"snapshots {snapshots}")
    if first is not None and last is not None:
        print(f"window    {last - first:.1f}s of activity")
    return 0


def cmd_obs_slo(args) -> int:
    try:
        objectives = (
            load_objectives(args.spec) if args.spec else default_objectives()
        )
    except (OSError, ValueError) as exc:
        print(f"bad SLO spec: {exc}", file=sys.stderr)
        return 2
    if args.window is not None:
        objectives = [
            dataclasses.replace(o, window_seconds=args.window)
            for o in objectives
        ]
    engine = SLOEngine(objectives)
    statuses = engine.evaluate(read_events(args.journal))
    print(SLOEngine.summary(statuses))
    return 0 if all(s.met for s in statuses) else 1


def cmd_obs_trace(args) -> int:
    spans = read_spans(args.journal)
    grouped: dict = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    hits = [t for t in grouped if t and t.startswith(args.trace_id)]
    if not hits:
        print(f"no trace matches {args.trace_id!r} "
              f"({len(grouped)} trace(s) in the journal)", file=sys.stderr)
        return 2
    if len(hits) > 1:
        print(f"{args.trace_id!r} is ambiguous: " + ", ".join(sorted(hits)),
              file=sys.stderr)
        return 2
    print(obs.render_span_tree(grouped[hits[0]]), end="")
    return 0


def cmd_fleet_status(args) -> int:
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        body = client.healthz()
    except (OSError, ServiceError) as exc:
        print(f"front-end unreachable: {exc}", file=sys.stderr)
        return 2
    fleet = body.get("fleet")
    if not isinstance(fleet, dict):
        print(f"{args.url} is not a fleet front-end "
              "(no 'fleet' stats in /healthz)", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(fleet, indent=2, sort_keys=True))
    else:
        workers = fleet.get("workers") or {}
        in_flight = fleet.get("in_flight") or {}
        print(f"front-end {args.url}: {body.get('status', '?')}")
        for name in sorted(set(workers) | set(in_flight)):
            print(f"  {name:<16} {workers.get(name, 'unknown'):<8} "
                  f"in-flight {in_flight.get(name, 0)}")
        print(f"pending {fleet.get('pending', 0)}  "
              f"completed {fleet.get('completed', 0)}  "
              f"errors {fleet.get('errors', 0)}  "
              f"requeues {fleet.get('requeues', 0)}  "
              f"shed {fleet.get('shed', 0)}  "
              f"brownouts {fleet.get('brownouts', 0)}  "
              f"ejections {fleet.get('ejections', 0)}  "
              f"readmissions {fleet.get('readmissions', 0)}")
    workers = fleet.get("workers") or {}
    return 1 if any(s == "ejected" for s in workers.values()) else 0


def cmd_fleet_rebalance(args) -> int:
    if args.action == "remove-shard" and not args.shard:
        print("remove-shard requires --shard", file=sys.stderr)
        return 2
    client = ServiceClient(args.url, timeout=args.timeout)
    payload = {"action": args.action}
    if args.shard:
        payload["shard"] = args.shard
    try:
        status, doc, _ = client.request_ex(
            "POST", "/v1/store/rebalance", payload
        )
    except (OSError, ServiceError) as exc:
        print(f"front-end unreachable: {exc}", file=sys.stderr)
        return 2
    if status != 200:
        print(f"rebalance failed ({status}): "
              f"{doc.get('error', doc)}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    report = doc.get("report") or {}
    moved = report.get("moved") or {}
    print(f"{args.action}: moved {len(moved)} record(s), "
          f"kept {report.get('kept', 0)}")
    print("shards: " + ", ".join(doc.get("shards") or []))
    return 0


def cmd_campaign(args) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    try:
        config = CampaignConfig(
            seed=args.seed,
            workloads=args.workloads,
            copies=args.copies,
            bits=tuple(args.bits or [16]),
            attacks=tuple(args.attacks.split(","))
            if args.attacks else DEFAULT_ATTACKS,
            codecs=tuple(args.codecs.split(","))
            if args.codecs else ("gcrt",),
            secret=args.secret.encode(),
            workers=args.workers,
            cell_workers=args.cell_workers,
            checkpoint_dir=args.checkpoint,
            resume=args.resume,
        )
    except (KeyError, ValueError, CodecError) as exc:
        print(f"bad campaign configuration: {exc}", file=sys.stderr)
        return 2
    tracer = obs.enable_tracing() if args.obs_out else None
    os.makedirs(args.output, exist_ok=True)
    try:
        report = run_campaign(
            config,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except GeneratorError as exc:
        print(f"workload generation failed the oracle: {exc}",
              file=sys.stderr)
        return 2
    report.write(os.path.join(args.output, "report.json"))
    # The outcome view is deterministic in the seed: byte-identical
    # across reruns, so CI can diff it and cells can be replayed.
    with open(os.path.join(args.output, "outcomes.json"), "w") as fp:
        fp.write(report.outcomes_json())
    if args.obs_out and tracer is not None:
        with open(args.obs_out, "w") as fp:
            tracer.write_jsonl(fp)
            obs.get_registry().write_jsonl(fp)
        prom_path = os.path.splitext(args.obs_out)[0] + ".prom"
        with open(prom_path, "w") as fp:
            fp.write(obs.get_registry().to_prometheus())
        obs.disable_tracing()
    print(report.summary(), file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    try:
        config = ServerConfig(
            store_root=args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            request_timeout=args.timeout,
            executor=args.executor,
            self_check=not args.no_self_check,
            drain_timeout=args.drain_timeout,
            journal_dir=args.journal,
            slo_spec=args.slo,
            fleet=args.fleet,
            fleet_max_pending=args.fleet_max_pending,
        )
    except ValueError as exc:
        print(f"bad serve configuration: {exc}", file=sys.stderr)
        return 2
    # The journal records spans, so --journal arms the tracer too —
    # otherwise 'repro obs trace' would find an empty span stream.
    tracer = None
    if args.obs_out or args.journal:
        tracer = obs.enable_tracing()
    try:
        serve(config)
    except (StoreError, OSError, ValueError) as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.obs_out and tracer is not None:
            with open(args.obs_out, "w") as fp:
                tracer.write_jsonl(fp)
                obs.get_registry().write_jsonl(fp)
            prom_path = os.path.splitext(args.obs_out)[0] + ".prom"
            with open(prom_path, "w") as fp:
                fp.write(obs.get_registry().to_prometheus())
        if tracer is not None:
            obs.disable_tracing()
    return 0


def cmd_artifact_prepare(args) -> int:
    manifest = load_manifest(args.manifest)
    module = _read_module(manifest.module_path)
    store = open_store(args.store, create=True, shards=args.shards)
    try:
        prepared, hit = store.get_or_prepare(
            module,
            manifest.key(),
            manifest.watermark_bits,
            pieces=manifest.pieces,
            piece_loss=manifest.piece_loss,
            target_success=manifest.target_success,
            profile=args.profile,
            label=args.label,
            codec=manifest.codec,
        )
    except VMError as exc:
        print(f"program trapped during tracing: {exc}", file=sys.stderr)
        return 2
    record = store.record(prepared.fingerprint())
    state = "already stored" if hit else "prepared and stored"
    print(
        f"{state}: {record.size_bytes} bytes, "
        f"{record.watermark_bits}-bit marks, {record.pieces} pieces, "
        f"{record.codec} codec",
        file=sys.stderr,
    )
    print(record.digest)
    return 0


def cmd_artifact_list(args) -> int:
    try:
        store = open_store(args.store)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    records = store.records()
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2))
        return 0
    for r in records:
        label = f"  {r.label}" if r.label else ""
        print(
            f"{r.digest[:16]}  bits={r.watermark_bits} pieces={r.pieces} "
            f"codec={r.codec} {r.size_bytes}B{label}"
        )
    print(f"{len(records)} artifact(s) in {args.store}", file=sys.stderr)
    return 0


def cmd_artifact_evict(args) -> int:
    try:
        store = open_store(args.store)
        digest = store.resolve(args.digest)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store.evict(digest)
    print(f"evicted {digest}", file=sys.stderr)
    return 0


def cmd_artifact_quarantine_list(args) -> int:
    try:
        store = open_store(args.store)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    records = store.quarantined()
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2))
        return 0
    for r in records:
        print(f"{r.digest[:16]}  {r.quarantined_at}  {r.reason}")
    print(f"{len(records)} quarantined blob(s) in {args.store}",
          file=sys.stderr)
    return 0


def cmd_artifact_verify(args) -> int:
    try:
        store = open_store(args.store)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    problems = store.verify()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"{len(store)} artifact(s) intact", file=sys.stderr)
    return 0


def cmd_ncompile(args) -> int:
    with open(args.source) as fp:
        image = compile_source_native(fp.read())
    with open(args.output, "w") as fp:
        dump_image(image, fp)
    print(f"{image.file_size()} bytes (text+data), "
          f"entry {image.entry:#x}", file=sys.stderr)
    return 0


def cmd_nrun(args) -> int:
    with open(args.image) as fp:
        image = load_image(fp)
    try:
        result = run_image(image, _parse_inputs(args.inputs))
    except MachineFault as exc:
        print(f"program faulted: {exc}", file=sys.stderr)
        return 2
    for value in result.output:
        print(value)
    print(f"[{result.steps} instructions executed]", file=sys.stderr)
    return 0


def cmd_nembed(args) -> int:
    with open(args.image) as fp:
        image = load_image(fp)
    emb = embed_native(
        image,
        watermark=int(args.watermark, 0),
        width=args.bits,
        inputs=_parse_inputs(args.inputs),
        obfuscate_extra=args.obfuscate_extra,
    )
    with open(args.output, "w") as fp:
        dump_image(emb.image, fp)
    print(
        f"chain of {len(emb.call_addresses)} calls, begin={emb.begin:#x} "
        f"end={emb.end:#x}, {len(emb.tamper_jumps)} lockdown cells, "
        f"+{emb.image.file_size() - image.file_size()} bytes",
        file=sys.stderr,
    )
    return 0


def cmd_nextract(args) -> int:
    with open(args.image) as fp:
        image = load_image(fp)
    result = extract_native_auto(
        image, _parse_inputs(args.inputs),
        width=args.bits, tracer=args.tracer,
    )
    if args.diagnose:
        report = native_recognition_report(result)
        print(report.summary(), file=sys.stderr)
    if result.watermark is not None:
        print(f"{result.watermark:#x}")
        return 0
    print("no watermark extracted", file=sys.stderr)
    return 1


def cmd_ndis(args) -> int:
    with open(args.image) as fp:
        image = load_image(fp)
    print(format_listing(image, max_instructions=args.max))
    return 0


def cmd_plan(args) -> int:
    try:
        plan = plan_redundancy(args.bits, args.loss, args.target,
                               codec=args.codec)
    except CodecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"watermark bits:      {plan.watermark_bits}")
    print(f"codec:               {plan.codec}")
    print(f"moduli:              {plan.moduli_count} "
          f"({plan.pair_count} possible pieces)")
    print(f"piece loss assumed:  {plan.piece_loss_probability:.0%}")
    print(f"pieces to embed:     {plan.pieces}")
    print(f"expected success:    {plan.expected_success:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic path-based software watermarking (PLDI 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile wee source to WVM assembly")
    p.add_argument("source")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="execute a WVM module")
    p.add_argument("module")
    p.add_argument("--inputs", default="", help="comma-separated integers")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("embed", help="embed a watermark")
    p.add_argument("module")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--watermark", required=True,
                   help="integer (0x.. accepted)")
    p.add_argument("--bits", type=int, required=True,
                   help="fingerprint width in bits")
    p.add_argument("--secret", required=True, help="cipher secret")
    p.add_argument("--inputs", default="",
                   help="secret input sequence, comma-separated")
    p.add_argument("--pieces", type=int, default=None)
    p.add_argument("--codec", default=None, metavar="SPEC",
                   help="redundancy codec: gcrt (default), rs[-N], "
                        "hybrid[-N]")
    p.add_argument("--diversify", type=int, default=None, metavar="SEED",
                   help="pre-watermark diversification seed "
                        "(collusion defense)")
    p.set_defaults(fn=cmd_embed)

    p = sub.add_parser("recognize", help="recover a watermark")
    p.add_argument("module")
    p.add_argument("--bits", type=int, required=True)
    p.add_argument("--secret", required=True)
    p.add_argument("--inputs", default="")
    p.add_argument("--codec", default=None, metavar="SPEC",
                   help="codec the mark was embedded with "
                        "(must match --codec at embed time)")
    p.add_argument("--diagnose", action="store_true",
                   help="print the window/voting/CRT funnel to stderr")
    p.set_defaults(fn=cmd_recognize)

    p = sub.add_parser(
        "batch-embed",
        help="fingerprint many copies in parallel from a manifest",
    )
    p.add_argument("manifest", help="JSON batch manifest (see docs/)")
    p.add_argument("-o", "--output", required=True,
                   help="output directory for copies and report.json")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel embed processes (default 1)")
    p.add_argument("--chunksize", type=int, default=None,
                   help="work-queue chunk size (default: auto)")
    cache = p.add_mutually_exclusive_group()
    cache.add_argument("--prepare-cache", default=None, metavar="FILE",
                       help="pickle file persisting the shared preparation "
                            "across invocations")
    cache.add_argument("--store", default=None, metavar="DIR",
                       help="content-addressed artifact store persisting "
                            "preparations across releases (see "
                            "'repro artifact')")
    p.add_argument("--store-shards", type=int, default=None, metavar="N",
                   help="when creating --store, lay it out as a sharded "
                        "fabric of N shard stores (see docs/scaling.md)")
    p.add_argument("--obs-out", default=None, metavar="FILE",
                   help="write spans + metrics as JSON lines to FILE "
                        "(plus Prometheus text to FILE's .prom sibling)")
    p.add_argument("--profile", action="store_true",
                   help="count VM dispatches (prepare trace + every "
                        "self-check run); writes <outdir>/profile.json")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="journal each completed copy to FILE (JSON lines) "
                        "as it lands")
    p.add_argument("--resume", action="store_true",
                   help="skip copies the --checkpoint journal already "
                        "shows as verified (crash recovery)")
    p.add_argument("--journal", default=None, metavar="DIR",
                   help="append telemetry events (copy outcomes, retries, "
                        "faults) to DIR/journal.jsonl for 'repro obs'")
    p.set_defaults(fn=cmd_batch_embed)

    p = sub.add_parser(
        "campaign",
        help="sweep generated workloads x attacks x widths and report "
             "per-cell recovery",
    )
    p.add_argument("-o", "--output", required=True,
                   help="output directory for report.json + outcomes.json")
    p.add_argument("--seed", type=int, default=2004,
                   help="campaign seed; every workload, watermark and "
                        "attack stream derives from it (default 2004)")
    p.add_argument("--workloads", type=int, default=3,
                   help="generated programs to sweep (default 3)")
    p.add_argument("--copies", type=int, default=4,
                   help="fingerprinted copies per (workload, bits) "
                        "(default 4)")
    p.add_argument("--bits", type=int, action="append", default=None,
                   help="watermark width; repeat for a multi-width sweep "
                        "(default 16)")
    p.add_argument("--codecs", default=None, metavar="C1,C2,...",
                   help="comma-separated codec specs to sweep "
                        "(default: gcrt)")
    p.add_argument("--attacks", default=None, metavar="A,B,...",
                   help="comma-separated attack names (default: "
                        f"{','.join(DEFAULT_ATTACKS)})")
    p.add_argument("--secret", default="campaign",
                   help="watermark key secret (default 'campaign')")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel embed processes per batch (default 1)")
    p.add_argument("--cell-workers", type=int, default=1,
                   help="campaign cells evaluated concurrently in "
                        "separate processes (default 1)")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="journal batches and finished cells under DIR")
    p.add_argument("--resume", action="store_true",
                   help="replay cells already in the --checkpoint journal")
    p.add_argument("--obs-out", default=None, metavar="FILE",
                   help="write spans + metrics as JSON lines to FILE "
                        "(plus Prometheus text to FILE's .prom sibling)")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("attack", help="apply a distortive transformation")
    p.add_argument("module")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--transform", choices=sorted(ATTACKS), required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser("ncompile", help="compile wee source to an N32 image")
    p.add_argument("source")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_ncompile)

    p = sub.add_parser("nrun", help="execute an N32 image")
    p.add_argument("image")
    p.add_argument("--inputs", default="")
    p.set_defaults(fn=cmd_nrun)

    p = sub.add_parser("nembed",
                       help="embed a branch-function watermark (native)")
    p.add_argument("image")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--watermark", required=True)
    p.add_argument("--bits", type=int, required=True)
    p.add_argument("--inputs", default="",
                   help="secret input sequence (profiling + tracing)")
    p.add_argument("--obfuscate-extra", type=int, default=0)
    p.set_defaults(fn=cmd_nembed)

    p = sub.add_parser("nextract",
                       help="extract a native watermark (auto-framed)")
    p.add_argument("image")
    p.add_argument("--bits", type=int, default=None)
    p.add_argument("--inputs", default="")
    p.add_argument("--tracer", choices=("simple", "smart"), default="smart")
    p.add_argument("--diagnose", action="store_true",
                   help="print branch-function/chain diagnostics to stderr")
    p.set_defaults(fn=cmd_nextract)

    p = sub.add_parser("ndis", help="disassemble an N32 image")
    p.add_argument("image")
    p.add_argument("--max", type=int, default=200)
    p.set_defaults(fn=cmd_ndis)

    p = sub.add_parser("plan", help="plan piece redundancy via Eq. (1)")
    p.add_argument("--bits", type=int, required=True)
    p.add_argument("--codec", default="gcrt", metavar="SPEC",
                   help="codec whose survival model sizes the plan")
    p.add_argument("--loss", type=float, required=True,
                   help="probability an individual piece is destroyed")
    p.add_argument("--target", type=float, default=0.99)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser(
        "serve",
        help="run the fingerprinting HTTP daemon over an artifact store",
    )
    p.add_argument("--store", required=True, metavar="DIR",
                   help="artifact store directory (see 'repro artifact')")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="listening port; 0 picks an ephemeral port")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (default 2)")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="requests queued beyond the pool before "
                        "429 backpressure kicks in (default 8)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request timeout in seconds (default 60)")
    p.add_argument("--executor", choices=("process", "thread"),
                   default="process",
                   help="worker pool flavour (default process)")
    p.add_argument("--no-self-check", action="store_true",
                   help="skip the in-worker recognize pass after embeds")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="graceful-shutdown budget for in-flight jobs "
                        "(default 10; also the Retry-After a draining "
                        "daemon advertises)")
    p.add_argument("--obs-out", default=None, metavar="FILE",
                   help="on shutdown, write spans + metrics as JSON "
                        "lines to FILE (plus FILE's .prom sibling)")
    p.add_argument("--journal", default=None, metavar="DIR",
                   help="append the telemetry journal to DIR/journal.jsonl "
                        "(events, spans; read back with 'repro obs')")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="JSON SLO spec evaluated at /v1/obs/slo and "
                        "/healthz (default: built-in objectives)")
    p.add_argument("--fleet", default=None, metavar="FILE",
                   help="JSON worker-fleet spec; forward embed/recognize "
                        "jobs to those daemons instead of the local pool "
                        "(see docs/scaling.md)")
    p.add_argument("--fleet-max-pending", type=int, default=256,
                   help="queued fleet jobs before load-shed by route "
                        "priority (default 256)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "artifact",
        help="manage the persistent store of prepared programs",
    )
    asub = p.add_subparsers(dest="artifact_command", required=True)

    a = asub.add_parser(
        "prepare",
        help="prepare a release from a batch manifest and store it",
    )
    a.add_argument("manifest", help="JSON batch manifest (copies ignored)")
    a.add_argument("--store", required=True, metavar="DIR")
    a.add_argument("--shards", type=int, default=None, metavar="N",
                   help="when creating --store, lay it out as a sharded "
                        "fabric of N shard stores")
    a.add_argument("--label", default="",
                   help="free-form release label kept in the manifest")
    a.add_argument("--profile", action="store_true",
                   help="count VM dispatches during the prepare trace")
    a.set_defaults(fn=cmd_artifact_prepare)

    a = asub.add_parser("list", help="list stored artifacts")
    a.add_argument("--store", required=True, metavar="DIR")
    a.add_argument("--json", action="store_true",
                   help="emit the records as a JSON array")
    a.set_defaults(fn=cmd_artifact_list)

    a = asub.add_parser("evict", help="remove an artifact from the store")
    a.add_argument("digest", help="artifact digest (unique prefix ok)")
    a.add_argument("--store", required=True, metavar="DIR")
    a.set_defaults(fn=cmd_artifact_evict)

    a = asub.add_parser(
        "verify",
        help="integrity-check every blob against the manifest",
    )
    a.add_argument("--store", required=True, metavar="DIR")
    a.set_defaults(fn=cmd_artifact_verify)

    a = asub.add_parser(
        "quarantine-list",
        help="list blobs moved aside after failing integrity checks",
    )
    a.add_argument("--store", required=True, metavar="DIR")
    a.add_argument("--json", action="store_true",
                   help="emit the records as a JSON array")
    a.set_defaults(fn=cmd_artifact_quarantine_list)

    p = sub.add_parser(
        "obs",
        help="inspect a telemetry journal (events, SLOs, trace trees)",
    )
    osub = p.add_subparsers(dest="obs_command", required=True)

    o = osub.add_parser("tail", help="print the newest journal events")
    o.add_argument("--journal", required=True, metavar="PATH",
                   help="journal file or the directory holding "
                        "journal.jsonl")
    o.add_argument("--limit", type=int, default=20,
                   help="events to print (default 20)")
    o.add_argument("--kind", default=None,
                   help="only this event kind (e.g. http.request, fault)")
    o.add_argument("--name", default=None, metavar="GLOB",
                   help="only events whose name matches this glob")
    o.add_argument("--route", default=None,
                   help="only events for this HTTP route")
    o.set_defaults(fn=cmd_obs_tail)

    o = osub.add_parser("summary",
                        help="count journal records by kind")
    o.add_argument("--journal", required=True, metavar="PATH")
    o.set_defaults(fn=cmd_obs_summary)

    o = osub.add_parser(
        "slo",
        help="judge SLO objectives over the journal (exit 1 on breach)",
    )
    o.add_argument("--journal", required=True, metavar="PATH")
    o.add_argument("--spec", default=None, metavar="FILE",
                   help="JSON SLO spec (default: built-in objectives)")
    o.add_argument("--window", type=float, default=None, metavar="SECONDS",
                   help="override every objective's evaluation window")
    o.set_defaults(fn=cmd_obs_slo)

    o = osub.add_parser("trace",
                        help="render one trace's span tree from the journal")
    o.add_argument("trace_id",
                   help="trace id (a unique prefix is enough)")
    o.add_argument("--journal", required=True, metavar="PATH")
    o.set_defaults(fn=cmd_obs_trace)

    p = sub.add_parser(
        "fleet",
        help="inspect and operate a fleet front-end over HTTP",
    )
    fsub = p.add_subparsers(dest="fleet_command", required=True)

    f = fsub.add_parser(
        "status",
        help="worker health states + dispatcher counters from /healthz "
             "(exit 1 if any worker is ejected, 2 if not a fleet)",
    )
    f.add_argument("--url", required=True, metavar="URL",
                   help="front-end base URL, e.g. http://127.0.0.1:8765")
    f.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS")
    f.add_argument("--json", action="store_true",
                   help="print the raw fleet stats document")
    f.set_defaults(fn=cmd_fleet_status)

    f = fsub.add_parser(
        "rebalance",
        help="add or remove a fabric shard behind a live front-end "
             "(admission pauses for the duration of the move)",
    )
    f.add_argument("action", choices=["add-shard", "remove-shard"])
    f.add_argument("--url", required=True, metavar="URL")
    f.add_argument("--shard", default=None, metavar="NAME",
                   help="shard name (required for remove-shard; "
                        "add-shard auto-names when omitted)")
    f.add_argument("--timeout", type=float, default=60.0, metavar="SECONDS")
    f.add_argument("--json", action="store_true",
                   help="print the full rebalance report document")
    f.set_defaults(fn=cmd_fleet_rebalance)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
