"""Native binary attacks (Section 5.2.2)."""

from .harness import (
    NativeAttackOutcome,
    evaluate_native_attack,
    run_native_attack_suite,
)
from .transforms import (
    bypass_branch_function,
    double_watermark,
    insert_noops,
    invert_branch_senses,
    observe_call_targets,
    reroute_branch_function,
)

__all__ = [
    "NativeAttackOutcome",
    "bypass_branch_function",
    "double_watermark",
    "evaluate_native_attack",
    "insert_noops",
    "invert_branch_senses",
    "observe_call_targets",
    "reroute_branch_function",
    "run_native_attack_suite",
]
