"""The five native-code attacks of Section 5.2.2.

1. **No-op insertion** — distortive: inject code, shifting text
   addresses. The branch function's tables hold stale addresses; the
   program breaks ("Every one of our test programs breaks when even a
   single no-op is added").
2. **Branch sense inversion** — invert conditional jumps and
   rearrange so semantics are preserved *for an unwatermarked
   binary*; the relayout again shifts addresses and breaks the
   watermarked one.
3. **Double watermarking** — run the embedder again over a
   watermarked binary (an additive attack); the relayout breaks the
   first watermark's lock-down.
4. **Branch-function bypass** — overwrite each ``call bf`` with a
   same-size direct ``jmp b_i`` learned from a trace (a subtractive
   attack, no address shifts). The control flow is right, but the
   lockdown cells are never initialized.
5. **Rerouting** — patch each ``call bf`` into ``call Y`` where a
   trampoline ``Y: jmp bf`` is appended at the end of the text (no
   relocation needed). The program *works*; only the simple tracer is
   fooled.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ...native.encoding import encode_instruction
from ...native.image import BinaryImage
from ...native.isa import Imm, JCC_INVERSES, Label, ni
from ...native.machine import Machine, MachineFault
from ...native.rewriter import lift, lower, patch_bytes
from ...native_wm.embedder import embed_native


def insert_noops(
    image: BinaryImage,
    count: int,
    rng: Optional[random.Random] = None,
    at_start: bool = False,
) -> BinaryImage:
    """Insert ``count`` nops at random instruction boundaries.

    ``at_start`` pins the first nop to the top of the text section,
    which shifts *every* downstream address — the paper's "even a
    single no-op" case made deterministic.
    """
    rng = rng or random.Random(0)
    prog = lift(image)
    for n in range(count):
        idx = 0 if (at_start and n == 0) else rng.randrange(len(prog.items) + 1)
        prog.insert(idx, [ni("nop")])
    return lower(prog)


def invert_branch_senses(
    image: BinaryImage,
    probability: float = 1.0,
    rng: Optional[random.Random] = None,
) -> BinaryImage:
    """jcc L; fall  ==>  jcc' F; jmp L; F: fall."""
    rng = rng or random.Random(0)
    prog = lift(image)
    idx = 0
    counter = 0
    while idx < len(prog.items):
        item = prog.items[idx]
        if (
            not isinstance(item, tuple)
            and item.is_conditional
            and isinstance(item.operands[0], Label)
            and rng.random() < probability
        ):
            fall = f"inv_{counter}"
            counter += 1
            replacement = [
                ni(JCC_INVERSES[item.mnemonic], Label(fall)),
                ni("jmp", item.operands[0]),
            ]
            prog.items[idx:idx + 1] = replacement
            prog.items.insert(idx + 2, ("label", fall))
            # Manual index fixups: replaced 1 item with 3.
            for addr, i in prog.index_of_addr.items():
                if i > idx:
                    prog.index_of_addr[addr] = i + 2
            idx += 3
        else:
            idx += 1
    return lower(prog)


def double_watermark(
    image: BinaryImage,
    second_watermark: int,
    width: int,
    inputs: Sequence[int],
    rng_seed: int = 777,
) -> BinaryImage:
    """Embed a second watermark on top of an existing one."""
    return embed_native(
        image, second_watermark, width, inputs, rng_seed=rng_seed
    ).image


def observe_call_targets(
    image: BinaryImage,
    bf_entry: int,
    inputs: Sequence[int],
    max_steps: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Trace once and learn where each ``call bf`` actually goes.

    This is the attacker's reconnaissance for the bypass attack: the
    (call address, realized target) pairs.
    """
    pairs: List[Tuple[int, int]] = []
    machine = Machine(image) if max_steps is None else Machine(image, max_steps)
    state: dict = {}

    def hook(m: Machine, addr: int, instr) -> None:
        if instr.mnemonic == "call" and instr.operands[0].value == bf_entry:
            state.setdefault("stack", []).append((addr, m.regs[4] - 4))
        elif instr.mnemonic == "ret" and state.get("stack"):
            call_addr, esp_after = state["stack"][-1]
            if m.regs[4] == esp_after:
                state["stack"].pop()
                pairs.append((call_addr, m.read32(m.regs[4])))

    try:
        machine.run(inputs, hook)
    except MachineFault:
        pass
    return pairs


def bypass_branch_function(
    image: BinaryImage,
    bf_entry: int,
    inputs: Sequence[int],
) -> BinaryImage:
    """Overwrite every observed ``call bf`` with ``jmp <target>``.

    Both are 5 bytes, so no relayout is needed — "there is no net
    change to any addresses".
    """
    attacked = image
    for call_addr, target in observe_call_targets(image, bf_entry, inputs):
        jmp = ni("jmp", Imm(target))
        attacked = patch_bytes(
            attacked, call_addr, encode_instruction(jmp, call_addr)
        )
    return attacked


def reroute_branch_function(
    image: BinaryImage,
    bf_entry: int,
    inputs: Sequence[int],
) -> BinaryImage:
    """Append ``Y: jmp bf`` after the text and retarget calls to Y.

    Appending past the old text end changes no existing address, and
    the 5-byte calls are patched in place, so the hash inputs (return
    addresses) are untouched and the program keeps working.
    """
    trampoline_addr = image.text_end
    jmp = ni("jmp", Imm(bf_entry))
    new_text = bytes(image.text) + encode_instruction(jmp, trampoline_addr)
    if image.text_base + len(new_text) > image.data_base:
        raise ValueError("no room for the trampoline")
    attacked = BinaryImage(
        new_text,
        bytearray(image.data),
        image.data_base,
        image.entry,
        image.text_base,
        dict(image.symbols),
        image.bss_bytes,
    )
    for call_addr, _target in observe_call_targets(image, bf_entry, inputs):
        call = ni("call", Imm(trampoline_addr))
        attacked = patch_bytes(
            attacked, call_addr, encode_instruction(call, call_addr)
        )
    return attacked
