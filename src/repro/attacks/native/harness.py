"""Evaluation harness for the native attacks (the §5.2.2 table).

For each attack the table reports two outcomes:

* **program_ok** — the attacked binary still produces the original
  output on the key input and probe inputs (no fault, same prints);
* **extracted** — per-tracer: whether the watermark is still
  extractable (meaningful mainly for attack 5, where the program
  keeps working).

The paper's expected row values: attacks 1–4 break the program;
attack 5 preserves it but defeats only the simple tracer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ...native.image import BinaryImage
from ...native.machine import MachineFault, run_image
from ...native_wm.embedder import NativeEmbedding
from ...native_wm.extractor import extract_native
from .transforms import (
    bypass_branch_function,
    double_watermark,
    insert_noops,
    invert_branch_senses,
    reroute_branch_function,
)


@dataclass
class NativeAttackOutcome:
    name: str
    program_ok: bool
    extracted_simple: bool
    extracted_smart: bool

    @property
    def breaks_program(self) -> bool:
        return not self.program_ok


def _program_ok(
    original: BinaryImage,
    attacked: BinaryImage,
    input_sets: Sequence[Sequence[int]],
    max_steps: int,
) -> bool:
    for inputs in input_sets:
        try:
            want = run_image(original, inputs, max_steps).output
            got = run_image(attacked, inputs, max_steps).output
        except MachineFault:
            return False
        if want != got:
            return False
    return True


def _extracts(
    embedding: NativeEmbedding,
    attacked: BinaryImage,
    inputs: Sequence[int],
    tracer: str,
    max_steps: int,
) -> bool:
    try:
        # The recognizer knows its own branch function's address (like
        # begin/end, "supplied manually" in the paper); attacks that
        # relocate it are exactly the ones meant to break extraction.
        result = extract_native(
            attacked, embedding.width, embedding.begin, embedding.end,
            inputs, tracer=tracer, bf_entry=embedding.bf_entry,
            max_steps=max_steps,
        )
    except MachineFault:
        return False
    return result.watermark == embedding.watermark


def evaluate_native_attack(
    name: str,
    embedding: NativeEmbedding,
    attacked: BinaryImage,
    inputs: Sequence[int],
    probe_inputs: Sequence[Sequence[int]] = (),
    max_steps: int = 20_000_000,
) -> NativeAttackOutcome:
    input_sets = [list(inputs)] + [list(p) for p in probe_inputs]
    ok = _program_ok(embedding.image, attacked, input_sets, max_steps)
    return NativeAttackOutcome(
        name=name,
        program_ok=ok,
        extracted_simple=_extracts(embedding, attacked, inputs, "simple",
                                   max_steps),
        extracted_smart=_extracts(embedding, attacked, inputs, "smart",
                                  max_steps),
    )


def run_native_attack_suite(
    embedding: NativeEmbedding,
    inputs: Sequence[int],
    probe_inputs: Sequence[Sequence[int]] = (),
    second_watermark: int = 0x5A5A,
    rng_seed: int = 2004,
    max_steps: int = 20_000_000,
) -> List[NativeAttackOutcome]:
    """The five-attack battery of Section 5.2.2."""
    image = embedding.image
    rng = random.Random(rng_seed)
    attacked: Dict[str, BinaryImage] = {}
    attacked["1-noop-insertion"] = insert_noops(image, 1, rng, at_start=True)
    attacked["2-branch-sense-inversion"] = invert_branch_senses(image, 1.0, rng)
    attacked["3-double-watermarking"] = double_watermark(
        image, second_watermark, 16, inputs
    )
    attacked["4-bypass-branch-function"] = bypass_branch_function(
        image, embedding.bf_entry, inputs
    )
    attacked["5-reroute-branch-function"] = reroute_branch_function(
        image, embedding.bf_entry, inputs
    )
    return [
        evaluate_native_attack(
            name, embedding, img, inputs, probe_inputs, max_steps
        )
        for name, img in sorted(attacked.items())
    ]
