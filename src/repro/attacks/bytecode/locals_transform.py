"""Register-reallocation attacks: local-slot renumbering.

The analog of the register renumbering transformation that defeats
register-interference watermarks (Qu & Potkonjak [17], discussed in
Section 6). Path-based watermarks do not care which slot a value
lives in — condition-codegen predicates move along with the slots
they reference because the attack rewrites operands consistently.

Parameters keep their slots (the calling convention pins slots
``0..params-1``); all other locals are permuted.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ...vm.program import Module


def renumber_locals(
    module: Module, rng: Optional[random.Random] = None
) -> Module:
    """Apply a random permutation to every function's non-param slots."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    for fn in attacked.functions.values():
        movable = list(range(fn.params, fn.locals_count))
        if len(movable) < 2:
            continue
        shuffled = list(movable)
        rng.shuffle(shuffled)
        mapping: Dict[int, int] = {i: i for i in range(fn.params)}
        mapping.update(dict(zip(movable, shuffled)))
        for instr in fn.code:
            if instr.op in ("load", "store", "iinc"):
                instr.arg = mapping[instr.arg]
    return attacked


def pad_locals(
    module: Module, extra: int = 4, rng: Optional[random.Random] = None
) -> Module:
    """Grow every frame with unused slots (layout noise)."""
    attacked = module.copy()
    for fn in attacked.functions.values():
        fn.locals_count += extra
    return attacked
