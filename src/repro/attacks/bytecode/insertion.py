"""Insertion attacks on WVM bytecode (Section 5.1.2).

* :func:`insert_noops` — sprinkles ``nop`` instructions everywhere.
  Non-branch insertion does not change the trace bit-string (Section
  3.1), so the watermark survives any amount of it.
* :func:`insert_branches` — the paper's *branch insertion* attack, the
  one distortive attack that (at scale) defeats the Java watermark:
  "randomly inserts branches into a program. [...] he is likely to
  cause widespread random changes in the decoded bit-string." The
  inserted code is exactly the paper's measured attack payload::

      if (x * (x - 1) % 2 != 0) x++;

  which is semantics-preserving because the predicate is opaquely
  false. Every inserted branch that lands (dynamically) inside one of
  the 64-bit piece windows splits that window and destroys the piece;
  pieces survive only when no inserted branch executes between their
  first and last bit. Figure 8(c) measures survival vs. insertion
  rate; Figure 8(d) measures the attack's own slowdown.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ...vm.instructions import ins
from ...vm.instructions import label as label_ins
from ...vm.program import Function, Module


def _insertion_points(fn: Function) -> List[int]:
    """Indices where straight-line code may be spliced in.

    Anywhere between whole instructions works for stack-neutral
    payloads, except we never split a label from the instruction it
    names (cosmetic) and we keep out of the (nonexistent) window
    between a branch and its label operand — WVM has no delay slots,
    so every boundary is safe.
    """
    return list(range(len(fn.code) + 1))


def insert_noops(
    module: Module, count: int, rng: Optional[random.Random] = None
) -> Module:
    """Insert ``count`` nops at random positions across the module."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    functions = sorted(attacked.functions.values(), key=lambda f: f.name)
    for _ in range(count):
        fn = rng.choice(functions)
        idx = rng.choice(_insertion_points(fn))
        fn.code.insert(idx, ins("nop"))
    return attacked


def _attack_branch_payload(fn: Function, x_slot: int, skip: str) -> list:
    """``if (x * (x - 1) % 2 != 0) x++;`` — the Figure 8(d) payload."""
    return [
        ins("load", x_slot),
        ins("load", x_slot),
        ins("const", 1),
        ins("sub"),
        ins("mul"),
        ins("const", 2),
        ins("mod"),
        ins("ifeq", skip),
        ins("iinc", x_slot, 1),
        label_ins(skip),
    ]


def insert_branches(
    module: Module, count: int, rng: Optional[random.Random] = None
) -> Module:
    """Insert ``count`` opaque conditional branches at random positions.

    Each inserted branch, when executed, contributes a bit to the
    decoded trace string at its dynamic position — corrupting any
    watermark piece window it falls inside.
    """
    rng = rng or random.Random(0)
    attacked = module.copy()
    functions = sorted(attacked.functions.values(), key=lambda f: f.name)
    for n in range(count):
        fn = rng.choice(functions)
        if fn.locals_count == 0:
            fn.locals_count = 1
        x_slot = rng.randrange(fn.locals_count)
        skip = fn.fresh_label(f"atk{n}")
        payload = _attack_branch_payload(fn, x_slot, skip)
        idx = rng.choice(_insertion_points(fn))
        fn.code[idx:idx] = payload
    return attacked


def branch_increase_fraction(original: Module, attacked: Module) -> float:
    """Relative growth in static conditional-branch count (Fig. 8(c) x-axis)."""
    from ...vm.rewriter import count_conditional_branches

    base = count_conditional_branches(original)
    if base == 0:
        return 0.0
    return (count_conditional_branches(attacked) - base) / base
