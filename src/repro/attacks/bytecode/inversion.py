"""Branch sense inversion attack.

Negates the predicate of every (or a random subset of) conditional
branch and rearranges the targets to preserve semantics::

    if_icmplt L        if_icmpge F
    fall: ...     =>   goto L
                       F: fall: ...

This toggles taken/not-taken for every execution of the branch — a
direct attempt at the "flip the tests" attack the paper's Figure 1
discussion raises. The bit-string survives because its definition is
relative to each branch's own first follower: both the first and all
later followers flip together, so equality comparisons are unchanged
(Section 3.1: "The resulting bit-string does not change [...] if
branch senses are inverted").
"""

from __future__ import annotations

import random
from typing import Optional

from ...vm.instructions import INVERSES, ins
from ...vm.instructions import label as label_ins
from ...vm.program import Module


def invert_branch_senses(
    module: Module,
    probability: float = 1.0,
    rng: Optional[random.Random] = None,
) -> Module:
    """Invert each conditional branch with the given probability."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    for fn in attacked.functions.values():
        idx = 0
        counter = 0
        while idx < len(fn.code):
            instr = fn.code[idx]
            if instr.is_conditional and rng.random() < probability:
                fall = fn.fresh_label(f"inv{counter}")
                counter += 1
                replacement = [
                    ins(INVERSES[instr.op], fall),
                    ins("goto", instr.arg),
                    label_ins(fall),
                ]
                fn.code[idx:idx + 1] = replacement
                idx += len(replacement)
            else:
                idx += 1
    return attacked
