"""Distortive attack suite against the bytecode watermark (Section 5.1.2)."""

from .chaining import chain_branches, unfold_constants
from .harness import (
    AttackOutcome,
    evaluate_attack,
    run_attack_suite,
    standard_attacks,
)
from .insertion import branch_increase_fraction, insert_branches, insert_noops
from .inversion import invert_branch_senses
from .locals_transform import pad_locals, renumber_locals
from .method_transforms import inline_call, inline_random_calls, outline_region
from .reordering import copy_blocks, reorder_blocks, split_blocks
from .unrolling import peel_loops
from .sealing import (
    SealedAccessError,
    SealedModule,
    instrument_for_tracing,
    jvm_level_trace,
    seal_module,
)

__all__ = [
    "AttackOutcome",
    "SealedAccessError",
    "SealedModule",
    "branch_increase_fraction",
    "chain_branches",
    "copy_blocks",
    "evaluate_attack",
    "inline_call",
    "inline_random_calls",
    "insert_branches",
    "insert_noops",
    "instrument_for_tracing",
    "invert_branch_senses",
    "jvm_level_trace",
    "outline_region",
    "peel_loops",
    "pad_locals",
    "renumber_locals",
    "reorder_blocks",
    "run_attack_suite",
    "seal_module",
    "split_blocks",
    "standard_attacks",
    "unfold_constants",
]
