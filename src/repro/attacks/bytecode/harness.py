"""Attack evaluation harness for the bytecode watermark (Section 5.1.2).

Runs an attacked module through the two checks the paper's resilience
table needs:

* **program_ok** — the attacked program still behaves like the
  original on the key input and on extra probe inputs (an attack that
  breaks the program is useless to the adversary);
* **watermark_found** — dynamic blind recognition still recovers the
  embedded value.

:func:`run_attack_suite` produces the rows of the Section 5.1.2
resilience table for a standard battery of distortive attacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ...bytecode_wm.embedder import EmbeddingResult
from ...bytecode_wm.keys import WatermarkKey
from ...bytecode_wm.recognizer import recognize
from ...vm.interpreter import VMError, run_module
from ...vm.program import Module
from ...vm.verifier import is_verifiable
from .chaining import chain_branches, unfold_constants
from .insertion import insert_branches, insert_noops
from .inversion import invert_branch_senses
from .locals_transform import pad_locals, renumber_locals
from .method_transforms import inline_random_calls
from .reordering import copy_blocks, reorder_blocks, split_blocks
from .unrolling import peel_loops

Attack = Callable[[Module, random.Random], Module]


@dataclass
class AttackOutcome:
    """One row of the resilience table."""

    name: str
    verifies: bool
    program_ok: bool
    watermark_found: bool
    recovered: Optional[int] = None

    @property
    def attack_succeeded(self) -> bool:
        """The adversary wins iff the program works but the mark is gone."""
        return self.program_ok and not self.watermark_found


def _outputs_match(
    original: Module,
    attacked: Module,
    input_sets: Sequence[Sequence[int]],
) -> bool:
    for inputs in input_sets:
        try:
            want = run_module(original, inputs).output
            got = run_module(attacked, inputs).output
        except VMError:
            return False
        if want != got:
            return False
    return True


def evaluate_attack(
    name: str,
    embedded: EmbeddingResult,
    key: WatermarkKey,
    attacked: Module,
    probe_inputs: Sequence[Sequence[int]] = (),
) -> AttackOutcome:
    """Judge one attacked module."""
    verifies = is_verifiable(attacked)
    input_sets = [list(key.inputs)] + [list(p) for p in probe_inputs]
    program_ok = verifies and _outputs_match(
        embedded.module, attacked, input_sets
    )
    found = False
    recovered = None
    if verifies:
        try:
            result = recognize(
                attacked, key, watermark_bits=embedded.watermark_bits
            )
            recovered = result.value
            found = result.complete and result.value == embedded.watermark
        except VMError:
            found = False
    return AttackOutcome(name, verifies, program_ok, found, recovered)


def standard_attacks(rng_seed: int = 2004) -> Dict[str, Attack]:
    """The distortive battery used for the Section 5.1.2 table."""
    return {
        "noop-insertion-100": lambda m, r: insert_noops(m, 100, r),
        "noop-insertion-1000": lambda m, r: insert_noops(m, 1000, r),
        "branch-sense-inversion": lambda m, r: invert_branch_senses(m, 1.0, r),
        "branch-sense-inversion-half": lambda m, r: invert_branch_senses(
            m, 0.5, r
        ),
        "block-reordering": lambda m, r: reorder_blocks(m, r),
        "block-splitting-50": lambda m, r: split_blocks(m, 50, r),
        "block-copying-20": lambda m, r: copy_blocks(m, 20, r),
        "method-inlining-5": lambda m, r: inline_random_calls(m, 5, r),
        "locals-renumbering": lambda m, r: renumber_locals(m, r),
        "locals-padding": lambda m, r: pad_locals(m, 4, r),
        "combined-layout": lambda m, r: reorder_blocks(
            invert_branch_senses(insert_noops(m, 200, r), 1.0, r), r
        ),
        "branch-insertion-light-10": lambda m, r: insert_branches(m, 10, r),
        "branch-chaining-30": lambda m, r: chain_branches(m, 30, r),
        "constant-unfolding-50": lambda m, r: unfold_constants(m, 50, r),
        "loop-peeling-3": lambda m, r: peel_loops(m, 3, r),
    }


def run_attack_suite(
    embedded: EmbeddingResult,
    key: WatermarkKey,
    probe_inputs: Sequence[Sequence[int]] = (),
    attacks: Optional[Dict[str, Attack]] = None,
    rng_seed: int = 2004,
) -> List[AttackOutcome]:
    """Apply every attack to the watermarked module and judge it."""
    attacks = attacks if attacks is not None else standard_attacks()
    outcomes = []
    for name in sorted(attacks):
        # zlib.crc32 rather than hash(): str hashing is randomized per
        # process and would make the suite nondeterministic.
        import zlib
        rng = random.Random(rng_seed ^ zlib.crc32(name.encode()))
        attacked = attacks[name](embedded.module, rng)
        outcomes.append(
            evaluate_attack(name, embedded, key, attacked, probe_inputs)
        )
    return outcomes
