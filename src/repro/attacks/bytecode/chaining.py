"""Branch chaining and constant unfolding attacks.

Both are named in the paper's Section 1 list of semantics-preserving
transformations a watermark must survive ("basic block reordering,
branch chaining (where the target of a branch instruction is itself a
branch to some other location), loop unrolling, etc.").

* :func:`chain_branches` — reroutes branch targets through fresh
  trampoline blocks (`goto`-to-`goto` chains). Unconditional transfers
  contribute nothing to the trace bit-string, so the watermark is
  untouched by construction.
* :func:`unfold_constants` — rewrites ``const c`` into an equivalent
  two-push-plus-add sequence with randomized addends. Pure non-branch
  code substitution: invisible to the bit-string.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ...vm.instructions import BRANCHING, ins
from ...vm.instructions import label as label_ins
from ...vm.instructions import wrap64
from ...vm.program import Module


def chain_branches(
    module: Module,
    count: int,
    rng: Optional[random.Random] = None,
    max_hops: int = 3,
) -> Module:
    """Reroute up to ``count`` branches through goto-chains.

    Each rerouted branch ``bcc L`` becomes ``bcc C1`` with trampolines
    ``C1: goto C2; ...; Cn: goto L`` appended at the end of the
    function (unreachable by fall-through: they follow the function's
    final transfer).
    """
    rng = rng or random.Random(0)
    attacked = module.copy()
    candidates = [
        (fn, idx)
        for fn in attacked.functions.values()
        for idx, instr in enumerate(fn.code)
        if not instr.is_label and instr.op in BRANCHING
    ]
    rng.shuffle(candidates)
    for n, (fn, idx) in enumerate(candidates[:count]):
        instr = fn.code[idx]
        hops = rng.randint(1, max_hops)
        names = fn.fresh_labels(hops, f"chain{n}")
        original_target = instr.arg
        instr.arg = names[0]
        tail: List = []
        for h, name in enumerate(names):
            nxt = names[h + 1] if h + 1 < len(names) else original_target
            tail.append(label_ins(name))
            tail.append(ins("goto", nxt))
        fn.code.extend(tail)
    return attacked


def unfold_constants(
    module: Module,
    count: int,
    rng: Optional[random.Random] = None,
) -> Module:
    """Rewrite ``const c`` as ``const a; const b; add`` with a+b = c."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    candidates = [
        (fn, idx)
        for fn in attacked.functions.values()
        for idx, instr in enumerate(fn.code)
        if instr.op == "const" and isinstance(instr.arg, int)
        # `add` wraps to 64 bits; only constants already inside the
        # signed-64 range can be rebuilt exactly.
        and -(1 << 63) <= instr.arg < (1 << 63)
    ]
    rng.shuffle(candidates)
    # Indices shift as we splice; rewrite highest index first per fn.
    for fn, idx in sorted(candidates[:count],
                          key=lambda t: (id(t[0]), -t[1])):
        value = fn.code[idx].arg
        a = rng.randint(-(1 << 30), 1 << 30)
        b = wrap64(value - a)
        fn.code[idx:idx + 1] = [ins("const", a), ins("const", b),
                                ins("add")]
    return attacked
