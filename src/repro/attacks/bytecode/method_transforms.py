"""Method-level attacks: inlining (merging) and outlining (splitting).

SandMark's "method and class splitting and merging" attacks reshape
the call graph. Inlining is the aggressive direction: the callee's
branch instructions are *duplicated* into the caller, so the trace
contains fresh static instructions at those positions — yet the
decoded bits are unchanged, because each fresh instruction primes its
own follower exactly the way the original did.

Outlining extracts a straight-line instruction run into a fresh
function; ``call``/``ret`` are not conditional branches, so the trace
bits are again untouched.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ...vm.instructions import Instruction, ins
from ...vm.instructions import label as label_ins
from ...vm.program import Function, Module
from ...vm.verifier import is_verifiable

_INLINE_SIZE_LIMIT = 400


def _returns_at_unit_depth(fn: Function) -> bool:
    """Conservative check that every ``ret`` leaves depth-1 semantics.

    Wee-compiled functions keep the operand stack empty between
    statements, so their ``ret`` always sits at depth 1; for anything
    else we inline speculatively and re-verify.
    """
    return any(i.op == "ret" for i in fn.code)


def inline_call(
    module: Module,
    caller_name: str,
    call_index: int,
) -> bool:
    """Inline the ``call`` at ``caller_name``'s code index ``call_index``.

    Returns True on success; on any verification failure the module is
    left unchanged (the attack harness simply tries another site).
    """
    caller = module.function(caller_name)
    instr = caller.code[call_index]
    if instr.op != "call":
        return False
    callee = module.functions.get(instr.arg)
    if callee is None or callee.name == caller_name:
        return False
    if len(callee.code) > _INLINE_SIZE_LIMIT:
        return False
    if not _returns_at_unit_depth(callee):
        return False

    saved_code = list(caller.code)
    saved_locals = caller.locals_count

    slot_map = {i: caller.alloc_local() for i in range(callee.locals_count)}
    done = caller.fresh_label("inl_done")
    defined = [i.arg for i in callee.code if i.is_label]
    label_map = {}
    for name in defined:
        label_map[name] = caller.fresh_label("inl")

    body: List[Instruction] = []
    # Parameters are on the caller's stack in push order; pop in reverse.
    for p in reversed(range(callee.params)):
        body.append(ins("store", slot_map[p]))
    for instr_c in callee.code:
        copy = instr_c.copy()
        if copy.is_label:
            copy.arg = label_map[copy.arg]
        elif copy.op in ("load", "store"):
            copy.arg = slot_map[copy.arg]
        elif copy.op == "iinc":
            copy.arg = slot_map[copy.arg]
        elif copy.op in ("goto",) or copy.is_conditional:
            copy.arg = label_map[copy.arg]
        elif copy.op == "ret":
            # Leave the return value on the stack, jump to the join.
            copy = ins("goto", done)
        body.append(copy)
    body.append(label_ins(done))

    caller.code[call_index:call_index + 1] = body
    if not is_verifiable(module):
        caller.code = saved_code
        caller.locals_count = saved_locals
        return False
    return True


def inline_random_calls(
    module: Module, count: int, rng: Optional[random.Random] = None
) -> Module:
    """Attack entry point: inline up to ``count`` random call sites."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    for _ in range(count):
        sites = [
            (name, idx)
            for name, fn in sorted(attacked.functions.items())
            for idx, instr in enumerate(fn.code)
            if instr.op == "call"
        ]
        if not sites:
            break
        name, idx = rng.choice(sites)
        inline_call(attacked, name, idx)
    return attacked


def outline_region(
    module: Module,
    fn_name: str,
    rng: Optional[random.Random] = None,
) -> bool:
    """Method splitting: move a straight-line run of stack-neutral,
    local-free instructions into a fresh function.

    Conservative by construction (the region must not touch locals or
    control flow) and verified afterwards; returns success.
    """
    rng = rng or random.Random(0)
    fn = module.function(fn_name)
    runs = []
    start = None
    for idx, instr in enumerate(fn.code):
        movable = instr.op == "nop"
        if movable and start is None:
            start = idx
        elif not movable and start is not None:
            if idx - start >= 2:
                runs.append((start, idx))
            start = None
    if start is not None and len(fn.code) - start >= 2:
        runs.append((start, len(fn.code)))
    if not runs:
        return False
    s, e = rng.choice(runs)
    region = fn.code[s:e]
    helper_name = f"{fn_name}_out{len(module.functions)}"
    helper = Function(helper_name, 0, 0,
                      list(region) + [ins("const", 0), ins("ret")])
    module.add(helper)
    fn.code[s:e] = [ins("call", helper_name), ins("pop")]
    return is_verifiable(module)
