"""Loop peeling (unroll-by-one) attack.

"Loop unrolling" is in the paper's Section 1 list of transformations
an attacker may apply. Peeling one iteration is the distortive core
of unrolling: the first trip through the loop executes *duplicated*
branch instructions (fresh static identities that prime their own
followers), while later trips run the originals — the same local
bit-string perturbation as basic-block copying, applied to whole
natural loops.

Implementation: normalize the function into explicitly-terminated,
label-led blocks (each single-entry: nothing can jump into the middle
of one), build the label-level successor graph, pick a DFS back edge
``latch -> header``, clone every block of the natural loop with fresh
labels, retarget loop-entry edges to the cloned header, and point the
clone's return-to-header edges at the original header so iteration
two onward runs the original body.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ...vm.instructions import BRANCHING, Instruction
from ...vm.program import Function, Module
from ...vm.rewriter import rename_labels
from ...vm.verifier import is_verifiable
from .reordering import _normalized_blocks

_MAX_LOOP_BLOCKS = 12

Block = List[Instruction]


def _label_of(block: Block) -> str:
    assert block and block[0].is_label
    return block[0].arg


def _successors(block: Block) -> List[str]:
    """All branch-target labels of a normalized block.

    Normalized blocks have no fall-through: every exit is an explicit
    label operand (conditional targets, final goto) or a ret/halt.
    """
    return [
        instr.arg for instr in block
        if not instr.is_label and instr.op in BRANCHING
    ]


def _back_edges(blocks: List[Block]) -> List[Tuple[str, str]]:
    """DFS back edges of the label graph, from the first block."""
    graph = {_label_of(b): _successors(b) for b in blocks}
    entry = _label_of(blocks[0])
    color: Dict[str, int] = {entry: 1}
    out: List[Tuple[str, str]] = []
    stack: List[Tuple[str, int]] = [(entry, 0)]
    while stack:
        name, child = stack[-1]
        succs = [s for s in graph.get(name, []) if s in graph]
        if child < len(succs):
            stack[-1] = (name, child + 1)
            succ = succs[child]
            c = color.get(succ, 0)
            if c == 1:
                out.append((name, succ))
            elif c == 0:
                color[succ] = 1
                stack.append((succ, 0))
        else:
            color[name] = 2
            stack.pop()
    return out


def peel_one_loop(module: Module, fn: Function,
                  rng: random.Random) -> bool:
    """Peel one natural loop of ``fn``; returns success.

    The module is modified only on success (verified); failures leave
    it untouched.
    """
    saved_code = list(fn.code)
    try:
        normalized = _normalized_blocks(fn)
    except ValueError:
        return False
    if not normalized:
        return False
    # Work on copies: retargeting entry edges must not leak into the
    # original instructions if verification later rejects the peel.
    blocks = [[instr.copy() for instr in b] for b in normalized]
    edges = _back_edges(blocks)
    if not edges:
        return False
    latch, header = rng.choice(sorted(edges))

    # Natural loop body: header + nodes reaching latch avoiding header.
    preds: Dict[str, List[str]] = {}
    for b in blocks:
        for s in _successors(b):
            preds.setdefault(s, []).append(_label_of(b))
    body: Set[str] = {header, latch}
    work = [latch]
    while work:
        node = work.pop()
        if node == header:
            continue
        for p in preds.get(node, []):
            if p not in body:
                body.add(p)
                work.append(p)
    if len(body) > _MAX_LOOP_BLOCKS:
        return False

    by_label = {_label_of(b): b for b in blocks}
    if any(name not in by_label for name in body):
        return False

    mapping = {
        name: fn.fresh_label(f"peel_{name}") for name in sorted(body)
    }
    clones: List[Block] = [
        rename_labels(by_label[name], mapping) for name in sorted(body)
    ]
    # Clone branches that re-enter the loop head continue in the
    # ORIGINAL loop: iteration one runs the clone, the rest run the
    # original body.
    for clone in clones:
        for instr in clone:
            if not instr.is_label and instr.op in BRANCHING \
                    and instr.arg == mapping[header]:
                instr.arg = header
    # Loop-entry edges (from outside the body) go to the clone first.
    for b in blocks:
        if _label_of(b) in body:
            continue
        for instr in b:
            if not instr.is_label and instr.op in BRANCHING \
                    and instr.arg == header:
                instr.arg = mapping[header]

    flat: List[Instruction] = []
    for b in blocks:
        flat.extend(b)
    for clone in clones:
        flat.extend(clone)
    fn.code = flat
    if not is_verifiable(module):
        fn.code = saved_code
        return False
    return True


def peel_loops(
    module: Module, count: int, rng: Optional[random.Random] = None
) -> Module:
    """Attack entry point: peel up to ``count`` random loops."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    functions = sorted(attacked.functions.values(), key=lambda f: f.name)
    peeled = 0
    attempts = 0
    while peeled < count and attempts < count * 8:
        attempts += 1
        fn = rng.choice(functions)
        if peel_one_loop(attacked, fn, rng):
            peeled += 1
    return attacked
