"""Code-layout attacks: block reordering, splitting, copying.

These are the classic semantics-preserving layout transformations a
binary obfuscator applies (SandMark ships all three). The trace
bit-string is *defined* to be invariant under them (Section 3.1):
branch identity is the instruction itself, not its position, and
followers are dynamic. Block copying is the interesting one — it
duplicates branch instructions, so executions split between the copies
and each copy primes its own follower; this perturbs the bit-string
only locally and the redundant pieces absorb it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ...vm.cfg import build_cfg
from ...vm.instructions import (
    CONDITIONAL_BRANCHES,
    UNCONDITIONAL_TRANSFERS,
    Instruction,
    ins,
)
from ...vm.instructions import label as label_ins
from ...vm.program import Function, Module
from ...vm.rewriter import rename_labels


def _normalized_blocks(fn: Function) -> List[List[Instruction]]:
    """Split code into blocks, each starting with a label and ending in
    an explicit transfer (goto/cond+goto/ret/halt).

    After normalization the block list may be permuted arbitrarily
    (except the entry stub, which stays first).
    """
    cfg = build_cfg(fn)
    label_of: Dict[str, str] = {}
    counter = 0
    new_code: List[List[Instruction]] = []
    # First pass: give every block a leading label.
    block_labels: Dict[str, str] = {}
    for name in cfg.order:
        if name.startswith("@"):
            while True:
                candidate = f"blk_{counter}"
                counter += 1
                if candidate not in fn.labels():
                    break
            block_labels[name] = candidate
        else:
            block_labels[name] = name

    blocks: List[List[Instruction]] = []
    for pos, name in enumerate(cfg.order):
        block = cfg.blocks[name]
        body = list(fn.code[block.start:block.end])
        # Ensure the leading label.
        if not (body and body[0].is_label):
            body.insert(0, label_ins(block_labels[name]))
        term = None
        for instr in reversed(body):
            if not instr.is_label:
                term = instr
                break
        next_name = cfg.order[pos + 1] if pos + 1 < len(cfg.order) else None
        falls_through = (
            term is None
            or (term.op not in UNCONDITIONAL_TRANSFERS
                and term.op not in CONDITIONAL_BRANCHES)
            or term.op in CONDITIONAL_BRANCHES
        )
        if falls_through:
            if next_name is None:
                # Only unreachable trailing code can fall off the end of
                # a verified function (e.g. a nop inserted after the
                # final ret by another attack); pin it with a halt.
                body.append(ins("halt"))
            else:
                body.append(ins("goto", block_labels[next_name]))
        blocks.append(body)
    return blocks


def reorder_blocks(
    module: Module, rng: Optional[random.Random] = None
) -> Module:
    """Shuffle every function's basic blocks (entry stub pinned first)."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    for fn in attacked.functions.values():
        blocks = _normalized_blocks(fn)
        if len(blocks) <= 2:
            continue
        head, rest = blocks[0], blocks[1:]
        rng.shuffle(rest)
        fn.code = [i for block in [head] + rest for i in block]
    return attacked


def split_blocks(
    module: Module, count: int, rng: Optional[random.Random] = None
) -> Module:
    """Split straight-line runs with explicit goto-to-next bridges."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    functions = sorted(attacked.functions.values(), key=lambda f: f.name)
    for n in range(count):
        fn = rng.choice(functions)
        spots = [
            idx for idx, instr in enumerate(fn.code)
            if not instr.is_label
            and instr.op not in UNCONDITIONAL_TRANSFERS
            and instr.op not in CONDITIONAL_BRANCHES
        ]
        if not spots:
            continue
        idx = rng.choice(spots) + 1
        bridge = fn.fresh_label(f"split{n}")
        fn.code[idx:idx] = [ins("goto", bridge), label_ins(bridge)]
    return attacked


def copy_blocks(
    module: Module, count: int, rng: Optional[random.Random] = None
) -> Module:
    """Basic block copying: clone labelled goto-terminated blocks and
    retarget one incoming branch to the clone."""
    rng = rng or random.Random(0)
    attacked = module.copy()
    functions = sorted(attacked.functions.values(), key=lambda f: f.name)
    for n in range(count):
        fn = rng.choice(functions)
        clone_spot = _cloneable_block(fn, rng)
        if clone_spot is None:
            continue
        start, end, old_label = clone_spot
        fresh = fn.fresh_label(f"copy{n}")
        # Clone with all *defined* labels renamed.
        body = fn.code[start:end]
        defined = [i.arg for i in body if i.is_label]
        mapping = {name: f"{fresh}_{k}" for k, name in enumerate(defined)}
        mapping[old_label] = fresh
        clone = rename_labels(body, mapping)
        fn.code.extend(clone)
        # Retarget one random incoming branch to the clone.
        incoming = [
            i for i in fn.code[:start] + fn.code[end:-len(clone) or None]
            if not i.is_label
            and i.op in CONDITIONAL_BRANCHES | {"goto"}
            and i.arg == old_label
            and i not in clone
        ]
        if incoming:
            rng.choice(incoming).arg = fresh
    return attacked


def _cloneable_block(
    fn: Function, rng: random.Random
) -> Optional[Tuple[int, int, str]]:
    """A (start, end, label) region: label..goto, safe to duplicate."""
    candidates = []
    labels = fn.labels()
    for name, idx in labels.items():
        end = idx + 1
        ok = False
        while end < len(fn.code):
            instr = fn.code[end]
            if instr.is_label:
                break
            end += 1
            if instr.op == "goto":
                ok = True
                break
            if instr.op in UNCONDITIONAL_TRANSFERS or instr.is_conditional:
                break
        if ok and end - idx <= 24:
            candidates.append((idx, end, name))
    if not candidates:
        return None
    return rng.choice(sorted(candidates))
