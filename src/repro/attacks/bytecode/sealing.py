"""Class-encryption attack (Section 5.1.2) and its countermeasure.

    "In the class encryption attack, every class file in an
    application is replaced with an encrypted version of itself. The
    startup code ... decodes and runs the encrypted classes. While
    this attack has no effect on the branch sequence taken by the
    program, it does prevent instrumentation by denying the
    instrumenter access to the bytecode."

We model the whole story:

* :func:`seal_module` produces a :class:`SealedModule` whose code is
  present only as an encrypted payload plus a loader stub.
* A *static instrumenter* (:func:`instrument_for_tracing`) needs the
  plaintext bytecode and therefore fails on a sealed module — the
  paper's observed "attack succeeds" outcome.
* A *JVM-level tracer* (:func:`jvm_level_trace`) models the paper's
  countermeasure: "the JVM necessarily has access to the unencoded
  form of the bytecode"; the loader stub decrypts at class-load time
  and the interpreter's built-in tracing sees everything. Recognition
  through this path survives sealing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...core.cipher import cipher_for_secret
from ...vm.assembler import assemble
from ...vm.disassembler import disassemble
from ...vm.interpreter import run_module
from ...vm.program import Module
from ...vm.tracing import RunResult


class SealedAccessError(Exception):
    """A static tool tried to read sealed (encrypted) bytecode."""


def _keystream_xor(data: bytes, secret: bytes) -> bytes:
    cipher = cipher_for_secret(secret)
    out = bytearray()
    counter = 0
    block = b""
    for i, byte in enumerate(data):
        if i % 8 == 0:
            block = cipher.encrypt_block(counter).to_bytes(8, "big")
            counter += 1
        out.append(byte ^ block[i % 8])
    return bytes(out)


@dataclass
class SealedModule:
    """An 'encrypted jar': loader stub + ciphertext payload.

    The loader (modelled by :meth:`load`) is what the JVM executes; it
    decrypts the payload in memory. Static tools only see ``payload``.
    """

    payload: bytes
    loader_secret: bytes

    def load(self) -> Module:
        """What the runtime does at class-load time."""
        text = _keystream_xor(self.payload, self.loader_secret).decode()
        return assemble(text)

    def static_bytes(self) -> bytes:
        """What a static instrumenter can read: ciphertext only."""
        return self.payload


def seal_module(module: Module, loader_secret: bytes = b"sealer") -> SealedModule:
    """Encrypt a module the way the class-encryption attack does."""
    text = disassemble(module)
    return SealedModule(
        _keystream_xor(text.encode(), loader_secret), loader_secret
    )


def instrument_for_tracing(sealed: SealedModule) -> Module:
    """A bytecode instrumenter: needs plaintext, so it must fail.

    Raises :class:`SealedAccessError` — this is the failure mode the
    paper reports for its instrumentation-based tracer.
    """
    data = sealed.static_bytes()
    try:
        text = data.decode()
        return assemble(text)
    except Exception as exc:
        raise SealedAccessError(
            "cannot instrument sealed bytecode: payload is encrypted"
        ) from exc


def jvm_level_trace(
    sealed: SealedModule, inputs: Sequence[int], trace_mode: str = "branch"
) -> RunResult:
    """The countermeasure: trace via the runtime, not via rewriting."""
    module = sealed.load()
    return run_module(module, inputs, trace_mode=trace_mode)
