"""Attack suites from the paper's Section 5 evaluation.

``repro.attacks.bytecode`` — SandMark-style distortive attacks on WVM
modules (Section 5.1.2). ``repro.attacks.native`` — the five binary
attacks on branch-function watermarks (Section 5.2.2).
"""
