"""Watermark-recovery success probability (paper Eq. (1) and Fig. 5).

Model: the r moduli are the nodes of the complete graph ``K_n``; each
statement ``W = x mod p_i p_j`` is the edge ``{p_i, p_j}``. Attacks
delete edges; recovery succeeds iff no node is isolated (the GCRT needs
``W mod p_i`` for every i).

Two parametrizations are provided:

* :func:`success_probability_deletion` — the paper's Eq. (1): every
  edge of ``K_n`` is deleted independently with probability ``q``.
* :func:`success_probability_k_intact` — the Fig. 5 x-axis: exactly
  ``k`` uniformly random edges survive.

Both are exact inclusion-exclusion over sets of isolated nodes: the
number of edges incident to a fixed set of ``j`` nodes in ``K_n`` is
``j(n-j) + j(j-1)/2``, so

    P_deletion(n, q) = sum_{j=0}^{n} (-1)^j C(n,j) q^{j(n-j) + C(j,2)}

and, with ``E = C(n,2)`` and ``inc(j) = j(n-j) + C(j,2)``,

    P_intact(n, k) = sum_j (-1)^j C(n,j) C(E - inc(j), k) / C(E, k).

Monte Carlo estimators are included for the "empirical" series of
Fig. 5.
"""

from __future__ import annotations

import random
from math import comb
from typing import Optional


def incident_edges(n: int, j: int) -> int:
    """Edges of ``K_n`` incident to a fixed set of ``j`` nodes."""
    return j * (n - j) + j * (j - 1) // 2


def success_probability_deletion(n: int, q: float) -> float:
    """Eq. (1): P(no isolated node) under iid edge deletion prob ``q``."""
    if n < 1:
        raise ValueError("need at least one node")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be a probability")
    total = 0.0
    for j in range(n + 1):
        total += (-1) ** j * comb(n, j) * q ** incident_edges(n, j)
    return max(0.0, min(1.0, total))


def success_probability_k_intact(n: int, k: int) -> float:
    """P(coverage) when exactly ``k`` uniform random edges survive."""
    if n < 1:
        raise ValueError("need at least one node")
    edges = comb(n, 2)
    if k < 0 or k > edges:
        raise ValueError(f"k must be in [0, {edges}]")
    if k == 0:
        return 1.0 if n == 1 else 0.0
    denom = comb(edges, k)
    total = 0.0
    for j in range(n + 1):
        remaining = edges - incident_edges(n, j)
        if remaining < k:
            # C(remaining, k) = 0: cannot place k edges avoiding the set.
            continue
        total += (-1) ** j * comb(n, j) * comb(remaining, k) / denom
    return max(0.0, min(1.0, total))


def simulate_deletion(
    n: int, q: float, trials: int, rng: Optional[random.Random] = None
) -> float:
    """Monte Carlo estimate matching :func:`success_probability_deletion`."""
    rng = rng or random.Random(0)
    successes = 0
    for _ in range(trials):
        degree = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() >= q:
                    degree[i] += 1
                    degree[j] += 1
        if all(d > 0 for d in degree):
            successes += 1
    return successes / trials


def simulate_k_intact(
    n: int, k: int, trials: int, rng: Optional[random.Random] = None
) -> float:
    """Monte Carlo estimate matching :func:`success_probability_k_intact`."""
    rng = rng or random.Random(0)
    all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if k > len(all_edges):
        raise ValueError("k exceeds the number of edges")
    successes = 0
    for _ in range(trials):
        covered = set()
        for i, j in rng.sample(all_edges, k):
            covered.add(i)
            covered.add(j)
        if len(covered) == n:
            successes += 1
    return successes / trials
