"""Chinese Remainder Theorem machinery (paper Section 3.2, step A).

The embedding scheme splits a watermark integer ``W`` into statements
of the form ``W = x mod (p_i * p_j)`` over pairwise relatively prime
moduli ``p_1 .. p_r``. The *Generalized* Chinese Remainder Theorem
(Knuth, Seminumerical Algorithms, referenced as [14] in the paper)
reconstructs ``W`` from any set of such congruences whose moduli need
not be coprime, provided the congruences are mutually consistent.

This module provides:

* :func:`egcd` / :func:`modinv` — extended Euclid and modular inverse.
* :func:`crt_pair` — combine two congruences with possibly non-coprime
  moduli (the building block of the generalized CRT).
* :func:`generalized_crt` — fold a list of congruences into one.
* :class:`Congruence` — a single ``W = value (mod modulus)`` statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterable, Optional, Sequence, Tuple


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.

    Iterative to avoid recursion limits on pathological inputs.

    >>> egcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` when ``gcd(a, m) != 1``.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


@dataclass(frozen=True)
class Congruence:
    """A statement ``W = value (mod modulus)`` about the watermark.

    ``value`` is always normalized into ``[0, modulus)``.
    """

    value: int
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus <= 0:
            raise ValueError(f"modulus must be positive, got {self.modulus}")
        object.__setattr__(self, "value", self.value % self.modulus)

    def reduce(self, m: int) -> "Congruence":
        """Project this congruence onto a divisor ``m`` of its modulus."""
        if self.modulus % m != 0:
            raise ValueError(f"{m} does not divide {self.modulus}")
        return Congruence(self.value % m, m)

    def consistent_with(self, other: "Congruence") -> bool:
        """Whether some integer satisfies both congruences.

        By CRT this holds iff the values agree modulo
        ``gcd(self.modulus, other.modulus)``.
        """
        g = gcd(self.modulus, other.modulus)
        return (self.value - other.value) % g == 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"W = {self.value} (mod {self.modulus})"


def crt_pair(c1: Congruence, c2: Congruence) -> Optional[Congruence]:
    """Combine two congruences into one modulo ``lcm(m1, m2)``.

    Returns ``None`` when the congruences are inconsistent. Moduli need
    not be coprime (this is what makes the CRT "generalized").

    >>> crt_pair(Congruence(5, 6), Congruence(7, 15))
    Congruence(value=17, modulus=30)
    """
    a1, m1 = c1.value, c1.modulus
    a2, m2 = c2.value, c2.modulus
    g, s, _ = egcd(m1, m2)
    if (a2 - a1) % g != 0:
        return None
    lcm = m1 // g * m2
    # x = a1 + m1 * t where t = (a2 - a1)/g * s mod (m2/g)
    t = ((a2 - a1) // g * s) % (m2 // g)
    return Congruence((a1 + m1 * t) % lcm, lcm)


def generalized_crt(congruences: Iterable[Congruence]) -> Congruence:
    """Fold congruences into a single one via the generalized CRT.

    Raises :class:`ValueError` if the system is inconsistent or empty.
    """
    acc: Optional[Congruence] = None
    for c in congruences:
        if acc is None:
            acc = c
            continue
        combined = crt_pair(acc, c)
        if combined is None:
            raise ValueError(f"inconsistent congruences: {acc} vs {c}")
        acc = combined
    if acc is None:
        raise ValueError("cannot combine an empty set of congruences")
    return acc


def pairwise_coprime(moduli: Sequence[int]) -> bool:
    """Check that every pair of moduli is relatively prime."""
    for i, a in enumerate(moduli):
        for b in moduli[i + 1:]:
            if gcd(a, b) != 1:
                return False
    return True
