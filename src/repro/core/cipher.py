"""A 64-bit block cipher for watermark pieces (paper Section 3.2, step B).

    "each piece w_k is put through a block cipher. This step enables us
    to make randomness assumptions about any corrupted data when
    decoding."

The paper does not name its cipher; we implement **XTEA** (Needham &
Wheeler, 1997) from its public specification: a 64-round Feistel-style
cipher with a 128-bit key and 64-bit blocks. XTEA is small enough to
re-implement faithfully and strong enough for the purpose here — making
non-watermark 64-bit windows of the trace bit-string decrypt to values
indistinguishable from uniform, so that the enumeration-range check in
:mod:`repro.core.enumeration` rejects them with high probability.

Keys are derived from the user-facing secret (an arbitrary byte string
or the watermark key object) with :func:`derive_key`, a small
sponge-style KDF built on the cipher itself (Davies-Meyer chaining), so
the library has no external crypto dependencies.
"""

from __future__ import annotations

from typing import Sequence, Tuple

_MASK32 = 0xFFFFFFFF
_DELTA = 0x9E3779B9
_ROUNDS = 64  # 32 cycles = 64 Feistel rounds, the standard XTEA count.


class BlockCipher:
    """XTEA with a fixed 128-bit key, operating on 64-bit blocks.

    The public interface is integer-based because watermark pieces are
    integers: :meth:`encrypt_block` / :meth:`decrypt_block` map
    ``[0, 2**64)`` bijectively onto itself.
    """

    def __init__(self, key: Sequence[int]):
        key = tuple(int(k) & _MASK32 for k in key)
        if len(key) != 4:
            raise ValueError("XTEA key must be four 32-bit words")
        self._key: Tuple[int, int, int, int] = key  # type: ignore[assignment]
        # Precompute the round-key schedule: the (sum + key-word) values
        # depend only on the key, and recognition decrypts every 64-bit
        # window of a potentially very long trace, so this pays off.
        self._schedule = []
        s = 0
        for _ in range(_ROUNDS // 2):
            first = (s + key[s & 3]) & _MASK32
            s = (s + _DELTA) & _MASK32
            second = (s + key[(s >> 11) & 3]) & _MASK32
            self._schedule.append((first, second))

    @property
    def key_words(self) -> Tuple[int, int, int, int]:
        return self._key  # type: ignore[return-value]

    def encrypt_block(self, block: int) -> int:
        """Encrypt a 64-bit integer block."""
        if not 0 <= block < (1 << 64):
            raise ValueError("block must be a 64-bit unsigned integer")
        v0 = (block >> 32) & _MASK32
        v1 = block & _MASK32
        for first, second in self._schedule:
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ first)) & _MASK32
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ second)) & _MASK32
        return (v0 << 32) | v1

    def decrypt_block(self, block: int) -> int:
        """Decrypt a 64-bit integer block."""
        if not 0 <= block < (1 << 64):
            raise ValueError("block must be a 64-bit unsigned integer")
        v0 = (block >> 32) & _MASK32
        v1 = block & _MASK32
        for first, second in reversed(self._schedule):
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ second)) & _MASK32
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ first)) & _MASK32
        return (v0 << 32) | v1


def derive_key(secret: bytes) -> Tuple[int, int, int, int]:
    """Derive a 128-bit XTEA key from an arbitrary byte string.

    Davies-Meyer construction over XTEA: absorb the secret in 8-byte
    blocks through two independently-seeded chains, then finalize. Not
    a general-purpose hash — merely a deterministic, well-mixed mapping
    from user secrets to cipher keys with no external dependencies.
    """
    if not isinstance(secret, (bytes, bytearray)):
        raise TypeError("secret must be bytes")
    padded = bytes(secret) + b"\x80"
    while len(padded) % 8 != 0:
        padded += b"\x00"
    # Length-extension guard: append the original length as a block.
    padded += len(secret).to_bytes(8, "big")

    chains = [0x0123456789ABCDEF, 0xFEDCBA9876543210,
              0xA5A5A5A55A5A5A5A, 0x3C3C3C3CC3C3C3C3]
    for i in range(0, len(padded), 8):
        m = int.from_bytes(padded[i:i + 8], "big")
        for c in range(4):
            key_words = (
                (chains[c] >> 32) & _MASK32,
                chains[c] & _MASK32,
                (chains[(c + 1) % 4] >> 32) & _MASK32,
                (c * 0x9E3779B9) & _MASK32,
            )
            enc = BlockCipher(key_words).encrypt_block(m)
            chains[c] ^= enc
    return (
        (chains[0] ^ chains[2]) & _MASK32,
        ((chains[0] ^ chains[2]) >> 32) & _MASK32,
        (chains[1] ^ chains[3]) & _MASK32,
        ((chains[1] ^ chains[3]) >> 32) & _MASK32,
    )


def cipher_for_secret(secret: bytes) -> BlockCipher:
    """Convenience: build the block cipher used for a given secret key."""
    return BlockCipher(derive_key(secret))
