"""Watermark recombination from a trace bit-string (paper Section 3.3).

The recognizer's decoding algorithm, exactly as described:

1. **Windowing / decryption.** The trace bit-string ``b_0 b_1 ... b_n``
   is split into every 64-bit window ``B_t = b_t .. b_{t+63}``; each is
   decrypted with the embedding cipher and passed through the inverse
   enumeration. Windows decoding outside the statement space are junk
   and are dropped (the cipher makes attacked/unrelated windows look
   uniform, so the out-of-range check rejects almost all of them).

2. **Voting.** For each modulus ``p_i`` a vote is held on the value of
   ``W mod p_i``. If there is a *clear winner* — "the first-place
   vote-getter being strictly greater than twice second-place" — all
   statements contradicting the winner are removed. This prefilter
   "greatly improves the average-case running time [...] while having
   a negligible effect on the probability of success" (we ablate it in
   ``benchmarks/test_ablation_voting.py``).

3. **Consistency graphs.** Over the surviving statements, graph ``G``
   joins *inconsistent* pairs; graph ``H`` joins pairs consistent
   *because their residues agree mod some shared* ``p_i`` (pairs with
   no shared modulus are consistent merely by CRT and appear in
   neither graph). Repeatedly: take the vertex of maximum ``H``-degree
   (presumed true), delete its ``G``-neighbours, until ``G`` is
   edge-free. The survivors are mutually consistent and are combined
   by the Generalized CRT.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .bitstring import sliding_windows
from .cipher import BlockCipher
from .crt import Congruence, generalized_crt
from .enumeration import Statement, StatementEnumeration

BLOCK_BITS = 64


@dataclass
class RecoveryResult:
    """Outcome of a recognition attempt.

    ``value`` is the recovered watermark when ``complete`` is true;
    otherwise ``congruence`` (if any) carries the partial information
    recovered. Diagnostic counters describe how much work was done and
    how the candidate set was whittled down.

    ``confidence`` grades a recovery in ``[0, 1]``: how much of the
    redundancy agreed with the reported value (codec-specific — for
    GCRT it is the covered-moduli fraction, for RS the fraction of
    codeword symbols recovered clean). ``codec`` names the decoding
    scheme that produced the result; both default to the pre-codec
    behaviour so pickled results and positional constructors keep
    working.
    """

    complete: bool
    value: Optional[int]
    congruence: Optional[Congruence]
    accepted: List[Statement] = field(default_factory=list)
    windows_inspected: int = 0
    candidates_found: int = 0
    candidates_after_voting: int = 0
    votes: Dict[int, Counter] = field(default_factory=dict)
    clear_winners: Dict[int, int] = field(default_factory=dict)
    confidence: float = 0.0
    codec: str = "gcrt"

    def __bool__(self) -> bool:
        return self.complete


def extract_candidates(
    bits: Sequence[int],
    cipher: BlockCipher,
    enumeration: StatementEnumeration,
) -> Tuple[Counter, int]:
    """Decrypt every 64-bit window and keep in-range statements.

    Returns a multiset of statements (duplicates feed the vote) and the
    number of windows inspected.
    """
    candidates: Counter = Counter()
    inspected = 0
    for _, packed in sliding_windows(list(bits), BLOCK_BITS):
        inspected += 1
        stmt = enumeration.decode(cipher.decrypt_block(packed))
        if stmt is not None:
            candidates[stmt] += 1
    return candidates, inspected


def hold_votes(
    candidates: Counter,
    moduli: Sequence[int],
    max_value: Optional[int] = None,
) -> Tuple[Dict[int, Counter], Dict[int, int]]:
    """Per-modulus vote on ``W mod p_i``; returns (tallies, clear winners).

    A winner is *clear* when its vote count strictly exceeds twice the
    runner-up's count (a lone candidate wins against a runner-up of 0).

    ``max_value`` disenfranchises statements whose ``x`` cannot come
    from a genuine mark (``x = W mod p_i*p_j <= W < 2^bits``, so any
    larger ``x`` is a junk decode). They stay in the candidate pool —
    partial/diagnostic recoveries still see them — but they cannot
    seat a winner. Without this, a junk window repeated by a hot loop
    (identical trace bits every iteration decrypt to the same junk
    statement) outvotes the genuine pieces and the vote filter then
    deletes the real mark.
    """
    votes: Dict[int, Counter] = {i: Counter() for i in range(len(moduli))}
    for stmt, count in candidates.items():
        if max_value is not None and stmt.x >= max_value:
            continue
        votes[stmt.i][stmt.x % moduli[stmt.i]] += count
        votes[stmt.j][stmt.x % moduli[stmt.j]] += count
    winners: Dict[int, int] = {}
    for i, tally in votes.items():
        ranked = tally.most_common(2)
        if not ranked:
            continue
        first_count = ranked[0][1]
        second_count = ranked[1][1] if len(ranked) > 1 else 0
        if first_count > 2 * second_count:
            winners[i] = ranked[0][0]
    return votes, winners


def apply_vote_filter(
    candidates: Counter, winners: Dict[int, int], moduli: Sequence[int]
) -> Counter:
    """Drop statements contradicting any clear vote winner."""
    filtered: Counter = Counter()
    for stmt, count in candidates.items():
        ok = True
        for idx in (stmt.i, stmt.j):
            if idx in winners and stmt.x % moduli[idx] != winners[idx]:
                ok = False
                break
        if ok:
            filtered[stmt] = count
    return filtered


def _shared_agreement(a: Statement, b: Statement, moduli: Sequence[int]) -> Optional[bool]:
    """Classify a statement pair.

    Returns ``None`` when the pair shares no modulus (consistent by the
    CRT alone — in neither graph); ``True`` when they agree modulo every
    shared modulus (an ``H`` edge); ``False`` otherwise (a ``G`` edge).
    """
    shared = {a.i, a.j} & {b.i, b.j}
    if not shared:
        return None
    for idx in shared:
        if (a.x - b.x) % moduli[idx] != 0:
            return False
    return True


def _resolve_conflicts(
    statements: List[Statement],
    counts: Counter,
    moduli: Sequence[int],
) -> List[Statement]:
    """The greedy G/H elimination loop of Section 3.3, step C.

    Vertices are unique statements. While ``G`` has edges, presume true
    the vertex of maximum ``H``-degree (ties broken by vote weight, then
    deterministically by statement identity) and delete its
    ``G``-neighbours. If every vertex has already been presumed true but
    conflicts remain (possible only under heavy forgery), drop the
    weaker endpoint of a remaining conflict and continue.
    """
    alive: Set[Statement] = set(statements)
    g_adj: Dict[Statement, Set[Statement]] = {s: set() for s in statements}
    h_adj: Dict[Statement, Set[Statement]] = {s: set() for s in statements}
    ordered = sorted(alive, key=lambda s: (s.i, s.j, s.x))
    for idx_a, a in enumerate(ordered):
        for b in ordered[idx_a + 1:]:
            verdict = _shared_agreement(a, b, moduli)
            if verdict is None:
                continue
            if verdict:
                h_adj[a].add(b)
                h_adj[b].add(a)
            else:
                g_adj[a].add(b)
                g_adj[b].add(a)

    def g_has_edges() -> bool:
        return any(g_adj[s] & alive for s in alive)

    def sort_key(s: Statement):
        h_degree = len(h_adj[s] & alive)
        return (-h_degree, -counts[s], s.i, s.j, s.x)

    presumed: Set[Statement] = set()
    while g_has_edges():
        pool = [s for s in alive if s not in presumed]
        if pool:
            v = min(pool, key=sort_key)
            victims = g_adj[v] & alive
            alive -= victims
            presumed.add(v)
        else:
            # All survivors presumed true yet still conflicting: drop the
            # endpoint with smaller support from some remaining conflict.
            u = next(s for s in alive if g_adj[s] & alive)
            w = next(iter(g_adj[u] & alive))
            loser = max((u, w), key=sort_key)
            alive.discard(loser)
            presumed.discard(loser)
    return sorted(alive, key=lambda s: (s.i, s.j, s.x))


def recover(
    bits: Sequence[int],
    cipher: BlockCipher,
    enumeration: StatementEnumeration,
    use_voting: bool = True,
    max_value: Optional[int] = None,
) -> RecoveryResult:
    """Full recognition pipeline: bits -> candidate statements -> W.

    ``use_voting`` toggles the per-modulus vote prefilter (step 2) for
    the ablation study; the graph elimination always runs. ``max_value``
    (``2^watermark_bits`` when the caller knows the mark width) bars
    provably-junk statements from the vote — see :func:`hold_votes`.
    """
    moduli = enumeration.moduli
    candidates, inspected = extract_candidates(bits, cipher, enumeration)
    found = sum(candidates.values())
    votes: Dict[int, Counter] = {}
    winners: Dict[int, int] = {}
    if use_voting and candidates:
        votes, winners = hold_votes(candidates, moduli, max_value)
        candidates = apply_vote_filter(candidates, winners, moduli)
    after_voting = sum(candidates.values())

    result = RecoveryResult(
        complete=False,
        value=None,
        congruence=None,
        windows_inspected=inspected,
        candidates_found=found,
        candidates_after_voting=after_voting,
        votes=votes,
        clear_winners=winners,
    )
    if not candidates:
        return result

    accepted = _resolve_conflicts(list(candidates.keys()), candidates, moduli)
    result.accepted = accepted
    if not accepted:
        return result
    congruence = generalized_crt(s.congruence(moduli) for s in accepted)
    result.congruence = congruence
    covered = set()
    for s in accepted:
        covered.add(s.i)
        covered.add(s.j)
    covered_fraction = len(covered) / len(moduli)
    if covered == set(range(len(moduli))):
        result.complete = True
        result.value = congruence.value
        result.confidence = 1.0
    else:
        result.confidence = covered_fraction
    return result


def expected_modulus(moduli: Sequence[int]) -> int:
    """Product of all moduli: the modulus of a complete recovery."""
    acc = 1
    for m in moduli:
        acc *= m
    return acc


def gcd_consistency_check(statements: Sequence[Statement], moduli: Sequence[int]) -> bool:
    """Pairwise consistency of a statement set (used by tests)."""
    for idx, a in enumerate(statements):
        for b in statements[idx + 1:]:
            ca, cb = a.congruence(moduli), b.congruence(moduli)
            g = gcd(ca.modulus, cb.modulus)
            if (ca.value - cb.value) % g != 0:
                return False
    return True
