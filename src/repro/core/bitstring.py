"""Trace-to-bit-string decoding (paper Section 3.1).

The bit-string corresponding to a trace is defined dynamically, so it
survives static transformations:

    "For each conditional branch instruction i that occurs in the
    trace, we find its first occurrence, and find the block j that
    immediately follows that occurrence in the trace. Then we decode
    the trace into a string of bits by scanning the trace from
    beginning to end and writing down a 0 whenever a conditional branch
    is immediately followed by the same instruction by which it was
    first followed, and a 1 otherwise."

Consequences (all covered by unit/property tests):

* reordering code does not change the string (identity of a branch is
  the branch itself, not its address);
* inverting a branch's sense does not change the string (both the
  first follower and later followers flip together);
* inserting or deleting *non-branch* instructions does not change the
  string;
* adding or removing branches has only *local* effect.

The decoder is substrate-agnostic: it consumes ``(branch, follower)``
pairs, where ``branch`` is any hashable identity of the *static*
conditional branch instruction and ``follower`` any hashable identity
of the trace entry immediately following that execution of the branch.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

Bit = int
BranchEvent = Tuple[Hashable, Hashable]


def decode_bits(events: Iterable[BranchEvent]) -> List[Bit]:
    """Decode a sequence of branch events into the trace bit-string.

    The first occurrence of each branch defines its 0-follower and thus
    itself emits a 0; every later occurrence emits 0 if it goes the same
    way and 1 otherwise.
    """
    first_follower: Dict[Hashable, Hashable] = {}
    bits: List[Bit] = []
    for branch, follower in events:
        seen = first_follower.get(branch, _UNSEEN)
        if seen is _UNSEEN:
            first_follower[branch] = follower
            bits.append(0)
        else:
            bits.append(0 if follower == seen else 1)
    return bits


class _Unseen:
    """Sentinel distinct from any follower value (including None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unseen>"


_UNSEEN = _Unseen()


def bits_to_int_lsb_first(bits: List[Bit]) -> int:
    """Pack bits into an integer, index 0 becoming the least significant.

    This is the convention of the paper's loop generator (Section
    3.2.1), which shifts the piece constant right each iteration and so
    emits the least significant bit first.
    """
    value = 0
    for k, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit at index {k} is {b!r}, not 0/1")
        value |= b << k
    return value


def int_to_bits_lsb_first(value: int, width: int) -> List[Bit]:
    """Unpack an integer into ``width`` bits, least significant first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> k) & 1 for k in range(width)]


def sliding_windows(bits: List[Bit], width: int = 64) -> Iterable[Tuple[int, int]]:
    """Yield ``(offset, packed_window)`` for every width-bit window.

    Used by the recognizer: the embedded pieces may start at any bit
    offset in the trace string, so every alignment is tried. Packing is
    incremental (O(1) per window) so very long traces stay cheap.
    """
    n = len(bits)
    if n < width:
        return
    window = bits_to_int_lsb_first(bits[:width])
    yield 0, window
    top = width - 1
    for t in range(1, n - width + 1):
        window >>= 1
        window |= bits[t + top] << top
        yield t, window
