"""Core path-based watermarking algorithms (substrate-independent).

This package contains everything from Sections 2-3 of the paper that
does not touch a particular code substrate: the trace bit-string
decoder, the CRT splitting/recombination machinery, the statement
enumeration, the block cipher, the recognition algorithm, and the
closed-form success-probability model (Eq. 1).
"""

from .bitstring import (
    bits_to_int_lsb_first,
    decode_bits,
    int_to_bits_lsb_first,
    sliding_windows,
)
from .cipher import BlockCipher, cipher_for_secret, derive_key
from .crt import Congruence, crt_pair, egcd, generalized_crt, modinv, pairwise_coprime
from .enumeration import Statement, StatementEnumeration
from .errors import (
    CodegenError,
    EmbeddingError,
    RecognitionError,
    TamperProofError,
    WatermarkError,
)
from .planner import (
    RedundancyPlan,
    plan_redundancy,
    plan_table,
    success_probability_for_pieces,
)
from .primes import choose_moduli, is_prime, next_prime, statement_space_size
from .probability import (
    success_probability_deletion,
    success_probability_k_intact,
    simulate_deletion,
    simulate_k_intact,
)
from .recovery import RecoveryResult, recover
from .splitting import is_full_coverage, reconstruct, split

__all__ = [
    "BlockCipher",
    "CodegenError",
    "Congruence",
    "EmbeddingError",
    "RecognitionError",
    "RecoveryResult",
    "RedundancyPlan",
    "Statement",
    "StatementEnumeration",
    "TamperProofError",
    "WatermarkError",
    "bits_to_int_lsb_first",
    "choose_moduli",
    "cipher_for_secret",
    "crt_pair",
    "decode_bits",
    "derive_key",
    "egcd",
    "generalized_crt",
    "int_to_bits_lsb_first",
    "is_full_coverage",
    "is_prime",
    "modinv",
    "next_prime",
    "pairwise_coprime",
    "plan_redundancy",
    "plan_table",
    "reconstruct",
    "recover",
    "simulate_deletion",
    "simulate_k_intact",
    "sliding_windows",
    "split",
    "statement_space_size",
    "success_probability_for_pieces",
    "success_probability_deletion",
    "success_probability_k_intact",
]
