"""Bijective enumeration of residue statements (paper Section 3.2, step B).

Each statement ``W = x (mod p_i * p_j)`` with ``i < j`` and
``0 <= x < p_i * p_j`` is turned into a single integer by an
enumeration scheme, then block-encrypted and embedded. The scheme is a
prefix-sum layout of the statement space: pairs ``(i, j)`` are ordered
lexicographically and each pair owns a contiguous interval of
``p_i * p_j`` integers:

    code(i, j, x) = sum of p_a * p_b over all pairs (a, b) < (i, j)  +  x

This is a bijection between statements and ``[0, N)`` where
``N = sum_{i<j} p_i p_j``. Its crucial decoding property: a uniformly
random 64-bit block falls inside ``[0, N)`` — and therefore decodes to
a (bogus) statement at all — with probability only ``N / 2**64``, which
the moduli chooser keeps below 1/256. This is how the recognizer
discards the overwhelming majority of junk windows.

(The formula printed in the paper's available text is OCR-garbled; this
is the standard enumeration it describes: an invertible numbering of
(pair, residue) statements by prefix sums of pair products.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .crt import Congruence


@dataclass(frozen=True)
class Statement:
    """A residue statement about the watermark: ``W = x (mod p_i*p_j)``.

    ``i`` and ``j`` are indices into the modulus list, with ``i < j``.
    """

    i: int
    j: int
    x: int

    def modulus(self, moduli: Sequence[int]) -> int:
        return moduli[self.i] * moduli[self.j]

    def congruence(self, moduli: Sequence[int]) -> Congruence:
        return Congruence(self.x, self.modulus(moduli))

    def primes(self, moduli: Sequence[int]) -> Tuple[int, int]:
        return moduli[self.i], moduli[self.j]


class StatementEnumeration:
    """Invertible map between :class:`Statement` objects and integers."""

    def __init__(self, moduli: Sequence[int]):
        if len(moduli) < 2:
            raise ValueError("need at least two moduli")
        if any(m <= 1 for m in moduli):
            raise ValueError("moduli must all exceed 1")
        self._moduli = list(moduli)
        # Prefix offsets per lexicographically ordered pair (i, j).
        self._pairs: List[Tuple[int, int]] = []
        self._offsets: List[int] = []
        total = 0
        r = len(moduli)
        for i in range(r):
            for j in range(i + 1, r):
                self._pairs.append((i, j))
                self._offsets.append(total)
                total += moduli[i] * moduli[j]
        self._total = total

    @property
    def moduli(self) -> List[int]:
        return list(self._moduli)

    @property
    def space_size(self) -> int:
        """``N = sum_{i<j} p_i p_j``: number of valid statement codes."""
        return self._total

    @property
    def pair_count(self) -> int:
        return len(self._pairs)

    def pair_index(self, i: int, j: int) -> int:
        """Position of pair ``(i, j)`` in lexicographic pair order."""
        r = len(self._moduli)
        if not 0 <= i < j < r:
            raise ValueError(f"bad pair ({i}, {j}) for r={r}")
        # Pairs before row i: (r-1) + (r-2) + ... + (r-i)
        before_rows = i * (2 * r - i - 1) // 2
        return before_rows + (j - i - 1)

    def encode(self, stmt: Statement) -> int:
        """Map a statement to its integer code."""
        m = stmt.modulus(self._moduli)
        if not 0 <= stmt.x < m:
            raise ValueError(f"residue {stmt.x} out of range for modulus {m}")
        return self._offsets[self.pair_index(stmt.i, stmt.j)] + stmt.x

    def decode(self, code: int) -> Optional[Statement]:
        """Map an integer back to a statement.

        Returns ``None`` for codes outside ``[0, N)`` — the signal that
        a decrypted trace window is junk rather than a watermark piece.
        """
        if not 0 <= code < self._total:
            return None
        # Binary search over pair offsets.
        lo, hi = 0, len(self._offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._offsets[mid] <= code:
                lo = mid
            else:
                hi = mid - 1
        i, j = self._pairs[lo]
        return Statement(i, j, code - self._offsets[lo])
