"""Redundancy planning: how many pieces does a deployment need?

The paper leaves the piece count as a knob ("To increase robustness we
make the pieces redundant") and quantifies its effect empirically in
Figures 5 and 8(c). This module closes the loop: given the watermark
width and a threat model — the probability ``q`` that any individual
embedded piece is destroyed — it uses the Eq. (1) machinery to choose
a piece count meeting a target recovery probability.

Model: ``k`` pieces are embedded by cycling through the distinct pair
statements (the splitter's behaviour); a piece survives independently
with probability ``1 - q``; a *statement* (edge of K_n) survives if
any of its copies does; recovery succeeds iff the surviving edges
cover all n moduli. With ``c = k / pairs`` copies per statement the
per-edge deletion probability is ``q**c``, so Eq. (1) applies with
``q_edge = q**copies``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import comb
from typing import List

from .primes import choose_moduli
from .probability import success_probability_deletion


@dataclass(frozen=True)
class RedundancyPlan:
    """The planner's answer.

    ``codec`` names the redundancy scheme the plan was sized for; the
    moduli/pair fields describe the GCRT channel and are kept for all
    codecs (they still parameterize the hybrid's GCRT share, and are
    informational for pure RS).
    """

    watermark_bits: int
    moduli_count: int
    pair_count: int
    pieces: int
    piece_loss_probability: float
    expected_success: float
    codec: str = "gcrt"

    @property
    def copies_per_statement(self) -> float:
        return self.pieces / self.pair_count


def success_probability_for_pieces(
    n: int, pieces: int, piece_loss: float
) -> float:
    """P(recovery) for ``pieces`` embedded pieces cycled over K_n edges.

    The splitter assigns pieces round-robin over the ``C(n,2)`` edges,
    so each edge gets ``floor`` or ``ceil`` copies; we account for the
    mixture exactly by treating the two edge classes with their own
    survival probabilities and taking the weighted Eq. (1) value at
    the blended edge-deletion rate (the rates differ by one factor of
    ``piece_loss``, so the blend is tight for realistic parameters).
    """
    edges = comb(n, 2)
    if pieces <= 0:
        return 0.0
    base, extra = divmod(pieces, edges)
    # Edge deletion probabilities for the two classes.
    q_low = piece_loss ** (base + 1) if base or extra else 1.0
    q_hi = piece_loss ** base if base else 1.0
    blended = (extra * q_low + (edges - extra) * q_hi) / edges
    return success_probability_deletion(n, blended)


@lru_cache(maxsize=256)
def plan_redundancy(
    watermark_bits: int,
    piece_loss_probability: float,
    target_success: float = 0.99,
    max_pieces: int = 4096,
    codec: str = "gcrt",
) -> RedundancyPlan:
    """Smallest piece count meeting ``target_success`` under the model.

    Raises :class:`ValueError` when the target is unreachable within
    ``max_pieces`` (e.g. piece loss of 1.0).

    ``codec`` selects whose survival model sizes the plan — each codec
    provides a ``success_probability`` monotone in the piece count (the
    hybrid's is a conservative bound, see its docstring), and the
    search also respects the codec's ``min_piece_count``.

    Memoized: the plan is a pure function of its arguments and the
    batch pipeline resolves it once per (width, threat model, codec) no
    matter how many copies are minted; the returned plan is frozen, so
    sharing the instance is safe. ``codec`` must be a spec *string* so
    the cache key stays hashable.
    """
    # Late import: repro.codec depends on core modules; the planner is
    # the one core module that consults codecs, so it binds lazily.
    from ..codec import resolve_codec

    if not 0.0 <= piece_loss_probability < 1.0:
        raise ValueError("piece loss probability must be in [0, 1)")
    if not 0.0 < target_success < 1.0:
        raise ValueError("target success must be in (0, 1)")
    codec_impl = resolve_codec(codec)
    moduli = choose_moduli(watermark_bits)
    n = len(moduli)
    pairs = comb(n, 2)

    def success(pieces: int) -> float:
        return codec_impl.success_probability(
            watermark_bits, pieces, piece_loss_probability
        )

    lo = max(1, codec_impl.min_piece_count(watermark_bits))
    hi = max_pieces
    if success(hi) < target_success:
        raise ValueError(
            f"target {target_success} unreachable with {max_pieces} pieces "
            f"at piece loss {piece_loss_probability}"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if success(mid) >= target_success:
            hi = mid
        else:
            lo = mid + 1
    return RedundancyPlan(
        watermark_bits=watermark_bits,
        moduli_count=n,
        pair_count=pairs,
        pieces=lo,
        piece_loss_probability=piece_loss_probability,
        expected_success=success(lo),
        codec=codec_impl.spec,
    )


def plan_table(
    watermark_bits: int,
    losses: List[float],
    target: float = 0.99,
    codec: str = "gcrt",
) -> List[RedundancyPlan]:
    """Plans across a sweep of threat levels (for reports/tools)."""
    return [
        plan_redundancy(watermark_bits, q, target, codec=codec)
        for q in losses
    ]
