"""Selection of pairwise relatively prime moduli for watermark splitting.

Section 3.2 of the paper requires ``p_1 .. p_r`` pairwise relatively
prime with ``W < prod(p_k)``, and the recovery argument (Section 3.3)
notes that "if the p's are large, it is unlikely for statements about W
to agree mod p_i at random". We therefore pick *primes* (the strongest
form of pairwise coprimality) of a controllable bit width.

The other constraint is imposed by the 64-bit block cipher: every
encoded statement integer must fit in a 64-bit block, i.e.
``sum_{i<j} p_i * p_j <= 2**64`` (see :mod:`repro.core.enumeration`).
:func:`choose_moduli` balances the two constraints: enough primes, and
large enough primes, to cover a requested watermark bit width while
keeping every enumerated statement inside one cipher block.
"""

from __future__ import annotations

from functools import lru_cache
from math import log2
from typing import List


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers.

    Uses the standard deterministic witness set valid for n < 3.3e24.
    """
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def primes_from(start: int, count: int) -> List[int]:
    """``count`` consecutive primes, the first being >= ``start``."""
    out: List[int] = []
    p = start - 1
    while len(out) < count:
        p = next_prime(p)
        out.append(p)
    return out


def product(xs) -> int:
    acc = 1
    for x in xs:
        acc *= x
    return acc


def statement_space_size(moduli: List[int]) -> int:
    """Total number of enumerable statements, ``sum_{i<j} p_i * p_j``.

    This is the size of the integer range the enumeration scheme maps
    statements into; it must fit in one 64-bit cipher block.
    """
    total = 0
    for i in range(len(moduli)):
        for j in range(i + 1, len(moduli)):
            total += moduli[i] * moduli[j]
    return total


def _capacity_limit(block_bits: int, max_r: int = 4096) -> float:
    """Analytic upper bound on coverable watermark bits.

    With r primes of at most b bits each under the statement-space
    budget, capacity is r*b where b <= log2(budget / C(r,2)) / 2;
    maximize over r without touching any primality test.
    """
    from math import log2

    budget = float(1 << (block_bits - 8))
    best = 0.0
    for r in range(2, max_r):
        pair_count = r * (r - 1) / 2
        max_p_sq = budget / pair_count
        if max_p_sq < 9:
            break
        best = max(best, r * log2(max_p_sq) / 2)
    return best


@lru_cache(maxsize=64)
def _choose_moduli_cached(watermark_bits: int, block_bits: int) -> tuple:
    return tuple(_choose_moduli_impl(watermark_bits, block_bits))


def choose_moduli(watermark_bits: int, block_bits: int = 64) -> List[int]:
    """Cached front-end: see :func:`_choose_moduli_impl` for the search."""
    return list(_choose_moduli_cached(watermark_bits, block_bits))


def _choose_moduli_impl(watermark_bits: int, block_bits: int = 64) -> List[int]:
    """Choose primes ``p_1 < ... < p_r`` for a ``watermark_bits``-bit W.

    Constraints implemented exactly as the paper requires:

    * capacity: ``prod(p_k) > 2**watermark_bits`` so every
      ``watermark_bits``-bit W is representable;
    * block fit: ``sum_{i<j} p_i p_j < 2**block_bits`` so every
      enumerated statement fits in a cipher block;
    * sparsity: the statement space should occupy only a small fraction
      of the block space, so random (attacked/junk) blocks rarely decode
      to a valid statement. We aim for at most ``2**(block_bits - 8)``,
      giving a <1/256 false-accept rate per inspected window.

    Raises :class:`ValueError` when no prime set satisfies both (a W too
    wide for the block size; e.g. >~ 3000 bits at 64-bit blocks).
    """
    if watermark_bits <= 0:
        raise ValueError("watermark_bits must be positive")
    if watermark_bits > _capacity_limit(block_bits):
        raise ValueError(
            f"cannot cover a {watermark_bits}-bit watermark with "
            f"{block_bits}-bit cipher blocks"
        )
    budget = 1 << (block_bits - 8)
    target = 1 << watermark_bits
    # Grow the prime count until the capacity constraint is met, picking
    # each candidate set as consecutive primes near the geometric sweet
    # spot: with r primes near size p, capacity ~ p**r while the
    # statement space ~ r**2 p**2 / 2 must stay under budget.
    for r in range(2, 4096):
        # Largest usable prime size for this r given the block budget.
        pair_count = r * (r - 1) // 2
        max_p_sq = budget // max(pair_count, 1)
        if max_p_sq < 9:
            break
        max_p = int(max_p_sq ** 0.5)
        if max_p < 3:
            break
        # Take r consecutive primes ending near max_p.
        start = max(2, max_p - 64 * (r + 16))
        candidates = primes_from(start, r + 64)
        usable = [p for p in candidates if p <= max_p]
        if len(usable) < r:
            continue
        moduli = usable[-r:]
        if product(moduli) > target and statement_space_size(moduli) <= budget:
            return moduli
    raise ValueError(
        f"cannot cover a {watermark_bits}-bit watermark with "
        f"{block_bits}-bit cipher blocks"
    )
