"""Watermark splitting into redundant residue statements (Section 3.2).

    "W is split into up to r(r-1)/2 pieces, each piece being of the
    form W = x_k mod p_ik p_jk. [...] To increase robustness we make
    the pieces redundant so that finding a subset of them will be
    enough to extract the watermark."

A watermark ``W`` over moduli ``p_1 .. p_r`` yields one potential
statement per unordered pair of moduli. Recovery needs, for every
``p_i``, at least one surviving statement whose pair includes ``p_i``
(think of statements as edges of the complete graph ``K_r`` on the
moduli: success requires no isolated vertex — this is exactly the
model behind the paper's Eq. (1) and our Fig. 5 reproduction).

:func:`split` chooses which pairs to emit. For ``piece_count`` up to
``r(r-1)/2`` it picks distinct pairs in an order that covers every
modulus as early as possible (a Hamiltonian-path-first ordering), so
even tiny piece counts give full coverage. Beyond the pair count it
cycles, duplicating statements for extra redundancy — this matches the
paper's evaluation, which inserts up to 500 pieces for watermarks
whose pair spaces are smaller than that.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .crt import Congruence, generalized_crt
from .enumeration import Statement
from .errors import EmbeddingError


def product(xs: Sequence[int]) -> int:
    acc = 1
    for x in xs:
        acc *= x
    return acc


def coverage_first_pair_order(r: int, rng: Optional[random.Random] = None) -> List[tuple]:
    """All pairs ``(i, j)``, ``i < j``, ordered so early pairs cover all nodes.

    The first ``ceil(r/2)`` pairs form a perfect (or near-perfect)
    matching plus a linking pair, guaranteeing every index appears
    within the first ``r - 1`` pairs; remaining pairs follow in a
    shuffled order (shuffle only when ``rng`` is supplied, keeping the
    default deterministic for reproducibility).
    """
    indices = list(range(r))
    if rng is not None:
        rng.shuffle(indices)
    # A Hamiltonian path covers every node with r-1 edges.
    path = [(min(indices[k], indices[k + 1]), max(indices[k], indices[k + 1]))
            for k in range(r - 1)]
    path_set = set(path)
    rest = [(i, j) for i in range(r) for j in range(i + 1, r)
            if (i, j) not in path_set]
    if rng is not None:
        rng.shuffle(rest)
    return path + rest


def split(
    watermark: int,
    moduli: Sequence[int],
    piece_count: int,
    rng: Optional[random.Random] = None,
) -> List[Statement]:
    """Split ``watermark`` into ``piece_count`` residue statements.

    Raises :class:`EmbeddingError` when the watermark does not fit the
    moduli (``W >= prod(p_k)``) or when ``piece_count`` cannot cover all
    moduli (fewer than ``r - 1`` pieces can never achieve coverage).
    """
    r = len(moduli)
    if r < 2:
        raise EmbeddingError("need at least two moduli to split a watermark")
    if watermark < 0:
        raise EmbeddingError("watermark must be non-negative")
    if watermark >= product(moduli):
        raise EmbeddingError(
            f"watermark {watermark} exceeds the capacity {product(moduli)} "
            f"of the chosen moduli"
        )
    if piece_count < r - 1:
        raise EmbeddingError(
            f"{piece_count} pieces cannot cover {r} moduli; "
            f"need at least {r - 1}"
        )
    order = coverage_first_pair_order(r, rng)
    out: List[Statement] = []
    k = 0
    while len(out) < piece_count:
        i, j = order[k % len(order)]
        out.append(Statement(i, j, watermark % (moduli[i] * moduli[j])))
        k += 1
    return out


def reconstruct(statements: Sequence[Statement], moduli: Sequence[int]) -> Congruence:
    """Recombine consistent statements via the Generalized CRT.

    Returns the combined congruence ``W = v (mod lcm of pair moduli)``.
    The caller decides whether the modulus is large enough to pin down
    the watermark (it is iff every modulus index is covered).
    """
    return generalized_crt(s.congruence(moduli) for s in statements)


def covered_indices(statements: Sequence[Statement]) -> set:
    """Set of modulus indices touched by at least one statement."""
    out: set = set()
    for s in statements:
        out.add(s.i)
        out.add(s.j)
    return out


def is_full_coverage(statements: Sequence[Statement], r: int) -> bool:
    """Whether the statements determine W mod every ``p_i``."""
    return covered_indices(statements) == set(range(r))
