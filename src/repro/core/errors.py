"""Exception hierarchy for the path-based watermarking library.

All library-specific failures derive from :class:`WatermarkError` so
callers can catch one type at an API boundary. Substrate failures (VM
traps, native machine faults) have their own hierarchies in
``repro.vm`` and ``repro.native`` because they model *program* failure,
not *library* failure; the attack-evaluation harness deliberately
distinguishes the two.
"""

from __future__ import annotations


class WatermarkError(Exception):
    """Base class for all watermarking-related errors."""


class EmbeddingError(WatermarkError):
    """The embedder could not insert the watermark.

    Raised, for example, when a watermark value is too large for the
    chosen moduli, when the trace contains no usable insertion points,
    or when a requested piece count exceeds what the splitting scheme
    can produce.
    """


class RecognitionError(WatermarkError):
    """The recognizer failed to recover a watermark from a trace."""


class KeyError_(WatermarkError):
    """A watermark key (secret input sequence) is malformed or unusable."""


class CodegenError(WatermarkError):
    """Watermark code generation failed (no satisfiable predicates,

    no suitable loop site, etc.).
    """


class TamperProofError(WatermarkError):
    """Tamper-proofing could not find or transform candidate branches."""
