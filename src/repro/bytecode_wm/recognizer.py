"""The bytecode watermark recognizer (paper Section 3.3).

Recognition is *dynamic and blind*: it needs only the (possibly
attacked) program and the key. The program is re-executed on the
secret input with branch tracing, the trace is decoded to the bit-
string of Section 3.1, and the recombination algorithm of
``repro.core.recovery`` (window decryption, voting, G/H consistency
graphs, Generalized CRT) extracts the watermark.

The recognizer must know the fingerprint width (a protocol parameter
shared by embedder and recognizer — it determines the moduli); it
does not need the unwatermarked program or the watermark value.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .. import obs
from ..codec import WatermarkCodec, resolve_codec
from ..core.bitstring import decode_bits
from ..core.primes import choose_moduli
from ..core.recovery import RecoveryResult
from ..obs.recognition import RecognitionReport
from ..vm.interpreter import run_module
from ..vm.program import Module
from .keys import WatermarkKey

DEFAULT_WATERMARK_BITS = 64


def trace_bitstring(module: Module, key: WatermarkKey,
                    max_steps: Optional[int] = None) -> List[int]:
    """Run the program on the key input and decode the trace bits."""
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    with obs.span("recognize.trace") as sp:
        result = run_module(module, key.inputs, trace_mode="branch", **kwargs)
        assert result.trace is not None
        sp.set(steps=result.steps, branches=len(result.trace.branches))
    return decode_bits(result.trace.branch_pairs())


def recognize_bits(
    bits: Sequence[int],
    key: WatermarkKey,
    watermark_bits: int = DEFAULT_WATERMARK_BITS,
    use_voting: bool = True,
    codec: Union[str, WatermarkCodec, None] = None,
) -> RecoveryResult:
    """Recover a watermark from an already-decoded bit-string.

    ``codec`` must match the embedding codec (``None`` = GCRT). The
    phantom-mark guard — demoting a "complete" recovery whose value
    does not fit in ``watermark_bits``, since junk windows decrypted
    under a wrong key occasionally form a consistent-looking recovery
    in a much larger value space — lives in the codec protocol
    (:func:`repro.codec.validate_recovery`), so every codec's decode
    passes through it; partial diagnostics are kept either way.
    """
    return resolve_codec(codec).decode(
        bits, watermark_bits, key.cipher(), use_voting
    )


def recognize(
    module: Module,
    key: WatermarkKey,
    watermark_bits: int = DEFAULT_WATERMARK_BITS,
    use_voting: bool = True,
    max_steps: Optional[int] = None,
    trace=None,
    codec: Union[str, WatermarkCodec, None] = None,
) -> RecoveryResult:
    """End-to-end recognition: trace, decode, recombine.

    Propagates :class:`repro.vm.VMError` if the program is broken (the
    attack harness distinguishes "program broken" from "watermark
    gone").

    Callers that already executed ``module`` on the key input (the
    batch pipeline's in-worker self-check runs every emitted copy
    anyway) pass that run's ``trace`` to skip the re-execution; it
    must be a branch or full trace of this very module on these very
    inputs.
    """
    if trace is not None:
        bits = decode_bits(trace.branch_pairs())
    else:
        bits = trace_bitstring(module, key, max_steps)
    with obs.span("recognize.recover", bits=len(bits)):
        return recognize_bits(bits, key, watermark_bits, use_voting, codec)


def recognition_report(
    result: RecoveryResult,
    watermark_bits: int = DEFAULT_WATERMARK_BITS,
) -> RecognitionReport:
    """Build the diagnostic funnel report from a recovery outcome.

    ``moduli_covered``/``moduli_missing`` hold *indices* into the
    moduli list (matching the ``p_i`` naming of the paper), so a
    missing entry names both the index and, via ``moduli``, the prime.
    For non-GCRT codecs the moduli funnel reflects only the GCRT
    channel (empty for pure RS); ``scheme`` carries the codec spec.
    """
    moduli = choose_moduli(watermark_bits)
    covered = sorted({idx for s in result.accepted for idx in (s.i, s.j)})
    covered_set = set(covered)
    report = RecognitionReport(
        scheme=(
            "bytecode" if result.codec == "gcrt"
            else f"bytecode/{result.codec}"
        ),
        complete=result.complete,
        value=result.value,
        windows_inspected=result.windows_inspected,
        window_hits=result.candidates_found,
        candidates_after_voting=result.candidates_after_voting,
        statements_accepted=len(result.accepted),
        voting={
            i: dict(tally) for i, tally in result.votes.items() if tally
        },
        clear_winners=dict(result.clear_winners),
        moduli=list(moduli),
        moduli_covered=covered,
        moduli_missing=[
            i for i in range(len(moduli)) if i not in covered_set
        ],
        recovered_modulus=(
            result.congruence.modulus if result.congruence else None
        ),
    )
    if result.windows_inspected and not result.candidates_found:
        report.notes.append(
            "no window decrypted into the statement space - wrong key, "
            "wrong input, or the watermark is gone"
        )
    if (
        not result.complete
        and result.congruence is not None
        and not report.moduli_missing
        and result.congruence.value >= (1 << watermark_bits)
    ):
        report.notes.append(
            f"CRT value {result.congruence.value:#x} exceeds the "
            f"{watermark_bits}-bit watermark space - rejected as a "
            "junk-window false positive"
        )
    return report


def recognize_with_report(
    module: Module,
    key: WatermarkKey,
    watermark_bits: int = DEFAULT_WATERMARK_BITS,
    use_voting: bool = True,
    max_steps: Optional[int] = None,
    trace=None,
    codec: Union[str, WatermarkCodec, None] = None,
) -> Tuple[RecoveryResult, RecognitionReport]:
    """:func:`recognize`, plus the diagnostic funnel for the attempt."""
    result = recognize(
        module, key, watermark_bits, use_voting, max_steps, trace, codec
    )
    return result, recognition_report(result, watermark_bits)
