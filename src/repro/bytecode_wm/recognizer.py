"""The bytecode watermark recognizer (paper Section 3.3).

Recognition is *dynamic and blind*: it needs only the (possibly
attacked) program and the key. The program is re-executed on the
secret input with branch tracing, the trace is decoded to the bit-
string of Section 3.1, and the recombination algorithm of
``repro.core.recovery`` (window decryption, voting, G/H consistency
graphs, Generalized CRT) extracts the watermark.

The recognizer must know the fingerprint width (a protocol parameter
shared by embedder and recognizer — it determines the moduli); it
does not need the unwatermarked program or the watermark value.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.bitstring import decode_bits
from ..core.enumeration import StatementEnumeration
from ..core.primes import choose_moduli
from ..core.recovery import RecoveryResult, recover
from ..vm.interpreter import run_module
from ..vm.program import Module
from .keys import WatermarkKey

DEFAULT_WATERMARK_BITS = 64


def trace_bitstring(module: Module, key: WatermarkKey,
                    max_steps: Optional[int] = None) -> List[int]:
    """Run the program on the key input and decode the trace bits."""
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    result = run_module(module, key.inputs, trace_mode="branch", **kwargs)
    assert result.trace is not None
    return decode_bits(result.trace.branch_pairs())


def recognize_bits(
    bits: Sequence[int],
    key: WatermarkKey,
    watermark_bits: int = DEFAULT_WATERMARK_BITS,
    use_voting: bool = True,
) -> RecoveryResult:
    """Recover a watermark from an already-decoded bit-string."""
    moduli = choose_moduli(watermark_bits)
    return recover(
        bits, key.cipher(), StatementEnumeration(moduli), use_voting
    )


def recognize(
    module: Module,
    key: WatermarkKey,
    watermark_bits: int = DEFAULT_WATERMARK_BITS,
    use_voting: bool = True,
    max_steps: Optional[int] = None,
    trace=None,
) -> RecoveryResult:
    """End-to-end recognition: trace, decode, recombine.

    Propagates :class:`repro.vm.VMError` if the program is broken (the
    attack harness distinguishes "program broken" from "watermark
    gone").

    Callers that already executed ``module`` on the key input (the
    batch pipeline's in-worker self-check runs every emitted copy
    anyway) pass that run's ``trace`` to skip the re-execution; it
    must be a branch or full trace of this very module on these very
    inputs.
    """
    if trace is not None:
        bits = decode_bits(trace.branch_pairs())
    else:
        bits = trace_bitstring(module, key, max_steps)
    return recognize_bits(bits, key, watermark_bits, use_voting)
