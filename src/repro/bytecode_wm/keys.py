"""Watermark keys for the dynamic (path-based) watermarker.

A key bundles the two secrets of Section 3:

* the **secret input sequence** ``inputs`` the program is executed
  with during tracing and recognition ("file IO, user interaction
  ..., packets sent or received over a network, etc. The only
  restriction is that the trace be reproducible during recognition").
  In WVM, programs consume it through ``input`` instructions.
* the **cipher secret** from which the 64-bit block cipher key is
  derived (step B of embedding). The paper folds this into "the
  watermark key"; we keep both under one object.

The key also seeds the embedder's private RNG so that embedding is
deterministic given (module, watermark, key) — required for tests and
for reproducible fingerprinting of distributed copies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.cipher import BlockCipher, cipher_for_secret
from ..core.errors import KeyError_


@dataclass(frozen=True)
class WatermarkKey:
    """The recognizer's secret: input sequence plus cipher secret."""

    secret: bytes
    inputs: tuple

    def __init__(self, secret: bytes, inputs: Sequence[int]):
        if not isinstance(secret, (bytes, bytearray)):
            raise KeyError_("secret must be bytes")
        if not all(isinstance(v, int) for v in inputs):
            raise KeyError_("inputs must be integers")
        object.__setattr__(self, "secret", bytes(secret))
        object.__setattr__(self, "inputs", tuple(inputs))

    def cipher(self) -> BlockCipher:
        """The 64-bit block cipher derived from the secret."""
        return cipher_for_secret(self.secret)

    def rng(self, purpose: str = "embed") -> random.Random:
        """A deterministic RNG stream scoped to ``purpose``."""
        seed = int.from_bytes(self.secret + purpose.encode(), "big")
        return random.Random(seed)
