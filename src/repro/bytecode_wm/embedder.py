"""The bytecode watermark embedder (paper Section 3.2, end to end).

Pipeline (Figure 2):

1. **Trace** the program on the secret input (step B of the figure).
2. **Split** the watermark into redundant residue statements via the
   Generalized CRT (step A), enumerate each statement into a 64-bit
   integer and **encrypt** it with the key-derived block cipher.
3. For each encrypted piece, pick an insertion site (frequency-
   weighted random) and **generate code** — condition-based when the
   site executes at least twice and has usable variables, loop-based
   otherwise — that writes the 64 ciphertext bits contiguously into
   the trace bit-string (step C).
4. Re-verify the module.

Embedding is deterministic given (module, watermark, key): all
randomness comes from the key's RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..codec import WatermarkCodec, resolve_codec
from ..core.bitstring import int_to_bits_lsb_first
from ..core.enumeration import Statement
from ..core.errors import CodegenError, EmbeddingError
from ..core.primes import choose_moduli
from ..vm.interpreter import run_module
from ..vm.program import Module
from ..vm.rewriter import insert_at_site
from ..vm.tracing import SiteKey
from ..vm.verifier import verify_module
from .condition_codegen import generate_condition_piece
from .keys import WatermarkKey
from .loop_codegen import generate_loop_piece
from .placement import SitePicker, eligible_sites

PIECE_BITS = 64


@dataclass
class Placement:
    """Where one piece landed and how it was generated.

    ``statement`` is the residue statement for GCRT-channel pieces and
    ``None`` for position-addressed symbol pieces (RS/hybrid parity);
    ``label`` names the piece either way.
    """

    statement: Optional[Statement]
    site: SiteKey
    generator: str  # "loop" or "condition"
    site_frequency: int
    label: str = ""


@dataclass
class EmbeddingResult:
    """A watermarked module plus everything the evaluation measures."""

    module: Module
    watermark: int
    watermark_bits: int
    moduli: List[int]
    placements: List[Placement] = field(default_factory=list)
    original_byte_size: int = 0
    codec: str = "gcrt"

    @property
    def piece_count(self) -> int:
        return len(self.placements)

    @property
    def byte_size_increase(self) -> int:
        return self.module.byte_size() - self.original_byte_size


def default_piece_count(moduli: List[int]) -> int:
    """Twice the modulus count: full coverage with headroom (GCRT)."""
    return 2 * len(moduli)


def embed(
    module: Module,
    watermark: int,
    key: WatermarkKey,
    pieces: Optional[int] = None,
    watermark_bits: Optional[int] = None,
    placement_policy: str = "inverse",
    prefer_condition: bool = True,
    trace=None,
    sites=None,
    rng_salt: str = "",
    codec: Union[str, WatermarkCodec, None] = None,
) -> EmbeddingResult:
    """Embed ``watermark`` into a copy of ``module``.

    ``watermark_bits`` fixes the fingerprint width (and therefore the
    moduli); it defaults to the watermark's own bit length, but
    distributors embedding different marks into copies of one program
    should pass an explicit common width. ``placement_policy`` and
    ``prefer_condition`` exist for the ablation benches.

    Batch embedding (``repro.pipeline``) passes a precomputed ``trace``
    (and optionally its ``sites`` table) to skip Phase 1 — tracing is
    watermark-independent, so N copies need only one trace. It also
    passes a per-copy ``rng_salt`` scoping the key's RNG streams, so
    distinct copies diversify their placements while staying
    deterministic in (module, watermark, key, salt). Recognition never
    uses these streams, so salting cannot affect recoverability.

    ``codec`` selects the redundancy scheme (a spec string like
    ``"rs-8"``, a :class:`~repro.codec.WatermarkCodec` instance, or
    ``None`` for the default GCRT scheme — byte-for-byte identical to
    pre-codec embeds). Recognition must use the same codec.
    """
    if watermark < 0:
        raise EmbeddingError("watermark must be non-negative")
    bits_width = watermark_bits or max(watermark.bit_length(), 8)
    if watermark >= (1 << bits_width):
        raise EmbeddingError(
            f"watermark needs more than watermark_bits={bits_width} bits"
        )
    codec_impl = resolve_codec(codec)
    moduli = choose_moduli(bits_width)
    piece_count = (
        pieces if pieces is not None
        else codec_impl.default_piece_count(bits_width)
    )

    marked = module.copy()
    original_size = marked.byte_size()

    def stream(purpose: str):
        return key.rng(f"{purpose}/{rng_salt}" if rng_salt else purpose)

    # Phase 1: tracing (full mode: block sequence + variable values),
    # unless the caller supplied a cached trace of this module.
    if trace is None:
        trace = run_module(marked, key.inputs, trace_mode="full").trace
        assert trace is not None
    if sites is None:
        sites = eligible_sites(trace, marked)
    picker = SitePicker(sites, stream("placement"), placement_policy)

    # Phase 2: codec-encode the mark into encrypted pieces. The GCRT
    # codec consumes the "split" RNG stream exactly as the historical
    # inline splitter did, keeping default embeds byte-identical.
    split_rng = stream("split")
    encoded = codec_impl.encode(
        watermark, bits_width, piece_count, key.cipher(), split_rng
    )

    # Phase 3: generate and insert code for each piece.
    codegen_rng = stream("codegen")
    result = EmbeddingResult(
        module=marked,
        watermark=watermark,
        watermark_bits=bits_width,
        moduli=moduli,
        original_byte_size=original_size,
        codec=codec_impl.spec,
    )
    for piece in encoded:
        piece_bits = int_to_bits_lsb_first(piece.block, PIECE_BITS)
        site = picker.pick()
        fn = marked.function(site.function)
        live_slot = (
            codegen_rng.randrange(fn.params) if fn.params > 0 else
            (codegen_rng.randrange(fn.locals_count) if fn.locals_count else None)
        )
        snapshots = trace.site_snapshots(site)
        generator = "loop"
        code = None
        if prefer_condition and len(snapshots) >= 2:
            try:
                code = generate_condition_piece(
                    fn, piece_bits, snapshots, live_slot, codegen_rng
                )
                generator = "condition"
            except CodegenError:
                code = None
        if code is None:
            code = generate_loop_piece(fn, piece_bits, live_slot, codegen_rng)
        insert_at_site(marked, site, code)
        result.placements.append(
            Placement(
                piece.statement, site, generator, sites[site], piece.label
            )
        )

    verify_module(marked)
    return result
