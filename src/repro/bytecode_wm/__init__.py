"""Path-based watermarking for WVM bytecode (paper Section 3).

The dynamic blind fingerprinting pipeline::

    from repro.bytecode_wm import WatermarkKey, embed, recognize

    key = WatermarkKey(secret=b"...", inputs=[...])
    result = embed(module, watermark=W, key=key, pieces=24)
    found = recognize(result.module, key, watermark_bits=result.watermark_bits)
    assert found.value == W
"""

from .diversify import diversify, instruction_diff_fraction
from .condition_codegen import (
    condition_piece_byte_size,
    find_predicate_variables,
    generate_condition_piece,
)
from .embedder import (
    PIECE_BITS,
    EmbeddingResult,
    Placement,
    default_piece_count,
    embed,
)
from .keys import WatermarkKey
from .loop_codegen import generate_loop_piece, loop_piece_byte_size
from .opaque import opaquely_false_guard, opaquely_false_value
from .placement import SitePicker, eligible_sites
from .recognizer import (
    recognition_report,
    recognize,
    recognize_bits,
    recognize_with_report,
    trace_bitstring,
)

__all__ = [
    "EmbeddingResult",
    "PIECE_BITS",
    "Placement",
    "SitePicker",
    "WatermarkKey",
    "condition_piece_byte_size",
    "default_piece_count",
    "diversify",
    "instruction_diff_fraction",
    "eligible_sites",
    "embed",
    "find_predicate_variables",
    "generate_condition_piece",
    "generate_loop_piece",
    "loop_piece_byte_size",
    "opaquely_false_guard",
    "opaquely_false_value",
    "recognition_report",
    "recognize",
    "recognize_bits",
    "recognize_with_report",
    "trace_bitstring",
]
