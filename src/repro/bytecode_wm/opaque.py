"""Opaque Predicate Library (the paper's SandMark "OPL").

An opaque predicate [Collberg, Thomborson & Low, POPL'98] is a
boolean-valued expression whose value (always-true / always-false) is
difficult for an adversary to determine statically. The embedder uses
*opaquely false* predicates to guard never-executed updates of live
variables — this is what stops an optimizer from deleting the
watermark code as dead ("To prevent an optimizer from removing the
inserted code, we add a never executed assignment to a variable that
is live at the point of insertion", Section 3.2.2).

Every template receives a local slot holding an arbitrary integer
``x`` and emits WVM code that pushes the predicate's value (0/1).
All templates here are *false* for every 64-bit x; each cites its
little number-theoretic fact. The paper's own example — x(x-1) = 0
(mod 2), i.e. the negation x(x-1) % 2 != 0 is always false — is
template 0.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..vm.instructions import Instruction, ins


def _template_product_parity(x_slot: int) -> List[Instruction]:
    """``x * (x - 1) % 2 != 0`` — consecutive integers, one is even."""
    return [
        ins("load", x_slot),
        ins("load", x_slot),
        ins("const", 1),
        ins("sub"),
        ins("mul"),
        ins("const", 2),
        ins("mod"),
        # mod result in {-1, 0, 1}; != 0 would be wrong as plain truth,
        # so compare |x*(x-1) % 2| with 1 via squaring: square is 0 or 1,
        # and it is 0 exactly when the product is even — always.
        ins("dup"),
        ins("mul"),
    ]


def _template_square_mod4(x_slot: int) -> List[Instruction]:
    """``x*x % 4 == 2`` — squares are 0 or 1 mod 4, never 2."""
    return [
        ins("load", x_slot),
        ins("load", x_slot),
        ins("mul"),
        ins("const", 3),
        ins("band"),          # x*x & 3 in {0, 1}
        ins("const", 2),
        ins("bxor"),          # in {2, 3}, never 0
        ins("const", 0),
        # equality materialization without a branch: (v == 0) via
        # 1 - min(1, v & 3)... keep it simple and branchless:
        ins("bxor"),          # still {2, 3}
        ins("const", 2),
        ins("band"),          # bit 1 set -> nonzero; we need FALSE=0
        ins("const", 2),
        ins("bxor"),          # {0, 1}: 0 when bit set (always) -> 0
    ]


def _template_seven_square(x_slot: int) -> List[Instruction]:
    """``(7*x*x - 1) % 8 == 0`` is false: 7x² mod 8 ∈ {0,4,7}, minus 1
    is never ≡ 0 (mod 8) ... realized branchlessly as a 0/1 value."""
    return [
        ins("load", x_slot),
        ins("load", x_slot),
        ins("mul"),
        ins("const", 7),
        ins("mul"),
        ins("const", 1),
        ins("sub"),
        ins("const", 7),
        ins("band"),          # (7x² - 1) mod 8, in {3, 6, 7}
        ins("const", 8),
        ins("add"),           # {11, 14, 15}
        ins("const", 8),
        ins("div"),           # always 1
        ins("const", 1),
        ins("bxor"),          # always 0
    ]


_FALSE_TEMPLATES = [
    _template_product_parity,
    _template_square_mod4,
    _template_seven_square,
]


def opaquely_false_value(
    x_slot: int, rng: Optional[random.Random] = None
) -> List[Instruction]:
    """Code pushing an always-zero value that looks data-dependent."""
    rng = rng or random.Random(0)
    template = rng.choice(_FALSE_TEMPLATES)
    return template(x_slot)


def opaquely_false_guard(
    x_slot: int,
    body: List[Instruction],
    skip_label: str,
    rng: Optional[random.Random] = None,
) -> List[Instruction]:
    """``if (PF) { body }`` — the body never executes.

    The caller supplies a fresh ``skip_label`` and is responsible for
    the body being stack-neutral; the guard leaves the stack unchanged
    on the (always-taken) skip path.
    """
    code = opaquely_false_value(x_slot, rng)
    code.append(ins("ifeq", skip_label))
    code.extend(body)
    code.append(Instruction("label", skip_label))
    return code
