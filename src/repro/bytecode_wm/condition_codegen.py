"""Condition-based watermark code generation (paper Section 3.2.2).

This generator "inserts sequences of predicates and branches at
locations that are executed multiple times on the secret input
sequence. The first execution of the inserted code on the input
sequence identifies which branch direction should generate which bit,
and the remaining executions generate sequences of bits."

Predicates are built from *existing program variables*, using the
variable values saved during tracing — that is the whole point of
snapshotting at trace time: the inserted conditions look like real
program logic ("making it difficult for an attacker to know that
these statements are safe to remove").

For a site whose first two executions have local snapshots ``v1`` and
``v2``:

* a bit of 1 needs a predicate whose truth differs between the two
  executions — any variable with ``v1[x] != v2[x]`` compared for
  equality against its first value;
* a bit of 0 needs a predicate with equal truth — any variable
  compared against its first value when it is *stable* across both
  executions.

The taken arm of each predicate increments a scratch ``tmp`` local,
and the block ends with the paper's literal ``if (PF) live += tmp``
opaquely-false-guarded live update.

If the site lacks a changing or a stable variable the generator
raises :class:`CodegenError` and the embedder falls back to the loop
generator.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.errors import CodegenError
from ..vm.instructions import Instruction, ins
from ..vm.instructions import label as label_ins
from ..vm.program import Function
from ..vm.tracing import TracePoint
from .opaque import opaquely_false_guard

#: (opcode, truth at first execution) choices for a CHANGING variable x
#: with first value c: predicates over (x, c) whose truth flips between
#: executions whenever the value changes.
_EQ_STYLE = ("if_icmpeq", "if_icmpne")


def find_predicate_variables(
    snapshots: Sequence[TracePoint],
) -> Tuple[List[int], List[int]]:
    """Classify local slots at a multiply-executed site.

    Returns ``(changing, stable)``: slots whose values differ/agree
    between the first two executions. Only the first two snapshots
    matter — they are the priming and the generating execution.
    """
    if len(snapshots) < 2:
        raise CodegenError("site executes fewer than twice")
    first, second = snapshots[0].locals_snapshot, snapshots[1].locals_snapshot
    width = min(len(first), len(second))
    changing = [i for i in range(width) if first[i] != second[i]]
    stable = [i for i in range(width) if first[i] == second[i]]
    return changing, stable


def generate_condition_piece(
    fn: Function,
    bits: Sequence[int],
    snapshots: Sequence[TracePoint],
    live_slot: Optional[int],
    rng: random.Random,
) -> List[Instruction]:
    """Code emitting ``bits`` on the second execution of the site.

    The first execution primes every branch (contributing one 0 per
    bit, like any first occurrence); the second execution walks the
    same chain and its follower choices spell the ciphertext
    contiguously.
    """
    if not all(b in (0, 1) for b in bits):
        raise CodegenError("piece bits must be 0/1")
    changing, stable = find_predicate_variables(snapshots)
    if any(bits) and not changing:
        raise CodegenError("no variable changes between executions")
    if not all(bits) and not stable:
        raise CodegenError("no variable is stable across executions")

    first = snapshots[0].locals_snapshot
    tmp = fn.alloc_local()
    labels = fn.fresh_labels(2 * len(bits) + 1, "wmcond")
    guard_skip = labels[0]
    bit_labels = labels[1:]

    code: List[Instruction] = [ins("const", 0), ins("store", tmp)]
    for k, bit in enumerate(bits):
        taken_label = bit_labels[2 * k]
        join_label = bit_labels[2 * k + 1]
        if bit:
            slot = rng.choice(changing)
        else:
            slot = rng.choice(stable)
        opcode = rng.choice(_EQ_STYLE)
        # `x == first(x)` is true on execution 1; for a changing slot it
        # is false on execution 2 (bit 1); for a stable slot it stays
        # true (bit 0). `!=` flips the direction but not the bit.
        code.extend([
            ins("load", slot),
            ins("const", first[slot]),
            ins(opcode, taken_label),
            ins("goto", join_label),
            label_ins(taken_label),
            ins("iinc", tmp, 1),
            label_ins(join_label),
        ])
    if live_slot is not None:
        code.extend(
            opaquely_false_guard(
                tmp,
                [ins("load", tmp), ins("load", live_slot), ins("add"),
                 ins("store", live_slot)],
                guard_skip,
                rng,
            )
        )
    return code


def condition_piece_byte_size(bit_count: int = 64) -> int:
    """Static byte cost of one condition-generated piece."""
    per_bit = 2 + 5 + 3 + 3 + 3  # load, const, branch, goto, iinc
    return 5 + 2 + per_bit * bit_count + 40
