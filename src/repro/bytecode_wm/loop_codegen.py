"""Loop-based watermark code generation (paper Section 3.2.1).

The paper's loop generator builds "a loop with a body that contains a
conditional branch. The code generator generates a prologue to the
loop and loop body code that causes the inner branch to succeed and
fail in the order of the bits of w_k", with the first iteration
*priming* the branch (defining its 0-follower).

**Reproduction note (documented in DESIGN.md §6).** With the paper's
single inner branch, every loop iteration also executes the loop's
*control* branch, so control bits would interleave with data bits and
the 64-bit ciphertext could never appear contiguously — yet the
recognizer of Section 3.3 slides contiguous 64-bit windows. We
preserve the architecture (a priming loop whose second pass emits the
piece) but give the loop a *chain* of per-bit branches: iteration one
primes all 64 followers at once, iteration two walks the same chain
emitting the 64 ciphertext bits back-to-back. The loop-control branch
contributes one bit before and one after the window, which is junk
the recognizer already tolerates.

Each per-bit branch direction is keyed on the loop counter through a
small random mask, and the taken arms increment a scratch local that
is finally folded into a live variable under an opaquely false guard,
exactly as in the paper ("if (PF) live_var += j").
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.errors import CodegenError
from ..vm.instructions import Instruction, ins
from ..vm.instructions import label as label_ins
from ..vm.program import Function
from .opaque import opaquely_false_guard

#: Conditional opcodes usable as "taken iff operand is 1" / "never
#: taken" tests on a loop counter in {0, 1}. Each entry maps
#: (direction at s=0, direction at s=1) -> opcode on `load s`.
_DIRECTION_OPCODES = {
    (True, False): "ifeq",   # taken when s == 0
    (False, True): "ifgt",   # taken when s == 1
    (True, True): "ifge",    # always taken (s >= 0)
    (False, False): "iflt",  # never taken (s < 0 impossible)
}


def generate_loop_piece(
    fn: Function,
    bits: Sequence[int],
    live_slot: Optional[int],
    rng: random.Random,
) -> List[Instruction]:
    """Code emitting ``bits`` contiguously into the trace bit-string.

    ``fn`` supplies fresh labels/locals; ``live_slot`` is a local that
    is live at the insertion point (used for the opaquely guarded
    update; pass ``None`` to skip the guard, e.g. in unit tests).
    The returned code is stack-neutral and idempotent across repeated
    executions of the insertion site.
    """
    if not all(b in (0, 1) for b in bits):
        raise CodegenError("piece bits must be 0/1")
    counter = fn.alloc_local()
    scratch = fn.alloc_local()
    n_labels = 2 * len(bits) + 3
    labels = fn.fresh_labels(n_labels, "wmloop")
    top, done = labels[0], labels[1]
    guard_skip = labels[2]
    bit_labels = labels[3:]

    code: List[Instruction] = [
        ins("const", 0),
        ins("store", counter),
        ins("const", 0),
        ins("store", scratch),
        label_ins(top),
    ]
    for k, bit in enumerate(bits):
        taken_label = bit_labels[2 * k]
        join_label = bit_labels[2 * k + 1]
        d0 = bool(rng.getrandbits(1))   # direction on the priming pass
        d1 = d0 ^ bool(bit)             # second pass differs iff bit=1
        opcode = _DIRECTION_OPCODES[(d0, d1)]
        # load s; if<cond> taken; goto join; taken: iinc scratch; join:
        code.extend([
            ins("load", counter),
            ins(opcode, taken_label),
            ins("goto", join_label),
            label_ins(taken_label),
            ins("iinc", scratch, 1),
            label_ins(join_label),
        ])
    code.extend([
        ins("iinc", counter, 1),
        ins("load", counter),
        ins("const", 2),
        ins("if_icmplt", top),
    ])
    if live_slot is not None:
        code.extend(
            opaquely_false_guard(
                scratch,
                [ins("load", scratch), ins("load", live_slot), ins("add"),
                 ins("store", live_slot)],
                guard_skip,
                rng,
            )
        )
    return code


def loop_piece_byte_size(bit_count: int = 64) -> int:
    """Static byte cost of one loop-generated piece (for size models)."""
    per_bit = 2 + 3 + 3 + 3  # load, branch, goto, iinc
    overhead = 5 + 2 + 5 + 2 + 3 + 2 + 5 + 3  # prologue + loop control
    guard = 40  # opaque guard, approximate
    return overhead + per_bit * bit_count + guard
