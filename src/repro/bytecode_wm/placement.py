"""Frequency-weighted placement of watermark pieces (Section 3.2).

    "We insert code for each piece in a random location weighted
    inversely with respect to its frequency in the trace. Thus, code
    is less likely to be inserted in program hotspots than in
    infrequently executed code."

A *site* is a traced basic-block boundary (function entry or label)
that executed at least once on the secret input — executing at all is
a hard requirement, otherwise the piece would never reach the trace.
Sites are weighted 1/frequency. The ablation bench
(``benchmarks/test_ablation_placement.py``) swaps in uniform
placement to show why Figure 8(a)'s CaffeineMark curve bends.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core.errors import EmbeddingError
from ..vm.program import Module
from ..vm.tracing import SiteKey, Trace


def eligible_sites(trace: Trace, module: Module) -> Dict[SiteKey, int]:
    """Trace sites usable for insertion, with their frequencies.

    Sites must belong to a function that still exists in the module
    (defensive for attacked modules) and have executed at least once.
    """
    counts = trace.site_counts()
    return {
        key: count
        for key, count in counts.items()
        if count > 0 and key.function in module.functions
    }


class SitePicker:
    """Random site selection under a pluggable weighting policy."""

    def __init__(
        self,
        sites: Dict[SiteKey, int],
        rng: random.Random,
        policy: str = "inverse",
    ):
        if not sites:
            raise EmbeddingError("trace contains no usable insertion sites")
        if policy not in ("inverse", "uniform"):
            raise ValueError(f"unknown placement policy {policy!r}")
        self._rng = rng
        self._keys: List[SiteKey] = sorted(
            sites, key=lambda k: (k.function, k.site)
        )
        if policy == "inverse":
            self._weights = [1.0 / sites[k] for k in self._keys]
        else:
            self._weights = [1.0] * len(self._keys)
        self._total = sum(self._weights)

    def pick(self) -> SiteKey:
        """Draw one site (with replacement) under the policy."""
        x = self._rng.random() * self._total
        acc = 0.0
        for key, w in zip(self._keys, self._weights):
            acc += w
            if x < acc:
                return key
        return self._keys[-1]

    def pick_many(self, n: int) -> List[SiteKey]:
        return [self.pick() for _ in range(n)]
