"""Pre-watermark diversification against collusive attacks.

Section 5.1.2: "collusive attacks can be prevented by obfuscating the
program before it is watermarked, and thus producing a highly diverse
program population. Any attempt to find the watermark code through
comparison of multiple watermarked copies of the program will be
thwarted by this defense because the differences between any two
copies of the program will contain much more than just the watermark
code."

:func:`diversify` applies a seeded pipeline of semantics-preserving
layout transformations (the same family the attack suite uses —
they're obfuscations when the defender runs them): no-op padding,
branch sense inversion, basic-block splitting and reordering, and
local-slot renumbering. Two copies diversified with different seeds
differ almost everywhere, so diffing them reveals nothing about which
differences are watermark pieces.

:func:`instruction_diff_fraction` is the attacker's measuring stick:
the fraction of instruction positions at which two modules disagree.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from ..attacks.bytecode.insertion import insert_noops
from ..attacks.bytecode.inversion import invert_branch_senses
from ..attacks.bytecode.locals_transform import renumber_locals
from ..attacks.bytecode.reordering import reorder_blocks, split_blocks
from ..vm.program import Module
from ..vm.verifier import verify_module


def diversify(module: Module, seed: int, intensity: float = 1.0) -> Module:
    """A semantics-preserving, seed-dependent re-spin of the module.

    ``intensity`` scales how much churn is applied (1.0 = the default
    pipeline). The result is re-verified before being returned.
    """
    rng = random.Random(seed)
    size = max(module.instruction_count(), 1)
    out = insert_noops(module, int(size * 0.05 * intensity) + 1, rng)
    out = invert_branch_senses(out, min(1.0, 0.5 * intensity), rng)
    out = split_blocks(out, int(size * 0.02 * intensity) + 1, rng)
    out = reorder_blocks(out, rng)
    out = renumber_locals(out, rng)
    verify_module(out)
    return out


def _aligned_instruction_stream(module: Module) -> Iterator[Tuple]:
    for name in sorted(module.functions):
        for instr in module.functions[name].real_instructions():
            yield (name, instr.op, instr.arg, instr.arg2)


def instruction_diff_fraction(a: Module, b: Module) -> float:
    """Fraction of positions at which two modules' code disagrees.

    A crude collusive attacker's view: align the instruction streams
    function by function and count mismatches (padding the shorter
    stream as all-mismatch). 0.0 = identical code; values near 1.0
    mean diffing is uninformative.
    """
    stream_a = list(_aligned_instruction_stream(a))
    stream_b = list(_aligned_instruction_stream(b))
    longest = max(len(stream_a), len(stream_b))
    if longest == 0:
        return 0.0
    matches = sum(
        1 for x, y in zip(stream_a, stream_b) if x == y
    )
    return 1.0 - matches / longest
