"""The asynchronous serving daemon: embed/recognize over HTTP.

A long-lived, zero-dependency fingerprinting service on top of the
persistent artifact store. The network face is a minimal HTTP/1.1
server written directly against ``asyncio.start_server`` (no
``http.server``, no third-party framework): one coroutine per
connection, request line + headers + ``Content-Length`` body, one
response, close. That is the entire protocol surface a fingerprinting
API needs, and it keeps the daemon importable anywhere the library is.

Requests never execute on the event loop. Embed and recognize jobs —
pure CPU, seconds each — dispatch to a pool of workers (the same
worker functions the batch pipeline uses, see
:func:`repro.pipeline.batch.service_embed_copy`) via
``loop.run_in_executor``. The loop itself only parses, validates,
admits, and serializes, so health and metrics stay responsive while
every worker is busy.

Operational behavior, in the order a request meets it:

* **admission** — at most ``workers + queue_depth`` requests may be
  in flight; the next one is refused immediately with ``429`` and a
  ``Retry-After`` hint (bounded queue, shed-at-the-door backpressure);
* **dispatch** — the job runs on a process pool by default (true
  parallelism, crash isolation) or a thread pool
  (``executor="thread"``: cheaper startup, in-process);
* **timeout** — each job gets ``request_timeout`` seconds, then the
  client sees ``504`` (a process-pool worker may still finish the
  orphaned job; its slot frees when it does);
* **worker death** — a job that dies with its worker (``BrokenProcess
  Pool``) gets the pool rebuilt and exactly one retry, then ``503``;
* **circuit breaking** — each worker-pool route carries a
  :class:`~repro.serve.circuit.CircuitBreaker`: after
  ``circuit_threshold`` consecutive job failures the route fails fast
  with ``503`` + ``Retry-After`` without touching the pool, probes
  half-open after ``circuit_reset`` seconds, and closes again on the
  first success;
* **graceful drain** — ``SIGTERM`` (or :meth:`WatermarkService.
  shutdown`) stops admitting work (new jobs see ``503`` +
  ``Retry-After``, ``/healthz`` reports ``"draining"``) while
  in-flight jobs get up to ``drain_timeout`` seconds to finish; only
  then is the pool torn down (stragglers see ``503``);
* **observability** — every request opens an ``http.request`` span
  (worker-side spans are grafted under it, exactly like batch runs),
  increments ``repro_http_requests_total{route,method,status}`` and
  observes ``repro_http_request_seconds{route}``, all visible at
  ``GET /metrics``.

Jobs also declare a :mod:`repro.faults` site (``daemon.job``) just
inside the worker, so tests can pin a worker with an injected delay
(driving real 429/504 responses) or kill it (driving the rebuild and
circuit paths) deterministically.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import signal
import sys
import threading
import time
import urllib.parse
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import faults, obs
from ..codec import CodecError, resolve_codec
from ..faults.injector import FaultPlan
from ..obs.journal import HubConfig, TelemetryHub
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram
from ..obs.slo import SLOEngine, load_objectives
from ..obs.spans import render_span_tree
from ..pipeline.batch import CopySpec, service_embed_copy, service_recognize
from .circuit import CircuitBreaker
from .client import ServiceError
from .dispatch import DispatchOverload, FleetDispatcher, Job, load_workers
from .fabric import ShardedArtifactStore, open_store
from .store import StoreError

#: The service surface: ``(method, path) -> description``. The docs
#: snippet checker validates walkthrough ``curl`` commands against
#: this table, so docs and daemon cannot drift apart silently.
ROUTES: Dict[Tuple[str, str], str] = {
    ("GET", "/healthz"): "liveness, store size, queue occupancy, SLO verdict",
    ("GET", "/metrics"): "Prometheus text exposition of the registry",
    ("GET", "/v1/artifacts"): "list stored prepared-program artifacts",
    ("GET", "/v1/obs/events"): "telemetry ring tail (kind/route filters)",
    ("GET", "/v1/obs/slo"): "current service-level objective status",
    ("GET", "/v1/obs/spans"): "recent trace trees from the span ring",
    ("POST", "/v1/embed"): "mint one fingerprinted copy from an artifact",
    ("POST", "/v1/recognize"): "recover a mark against an artifact's key",
    ("POST", "/v1/store/rebalance"):
        "add/remove a fabric shard online (admission pauses briefly)",
}

_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_BODY_BYTES = 16 * 1024 * 1024
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class BadRequest(Exception):
    """A malformed or oversized HTTP request; carries the status code.

    ``retry_after`` (seconds) becomes a ``Retry-After`` header on the
    response — backpressure (429), drain and open-circuit (503)
    rejections all tell the client when trying again is worthwhile.
    """

    def __init__(
        self, status: int, message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class Request:
    """One parsed HTTP request.

    ``query`` holds the decoded query string (first value per key) —
    the ``/v1/obs/*`` routes take their filters there.
    """

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    query: Dict[str, str] = field(default_factory=dict)

    def int_param(self, name: str, default: int) -> int:
        value = self.query.get(name)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            raise BadRequest(
                400, f"query parameter {name!r} must be an integer"
            ) from None

    def json(self) -> Dict[str, Any]:
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise BadRequest(400, "request body must be a JSON object")
        return doc


@dataclass
class Response:
    """One HTTP response, ready to serialize."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body


def json_response(
    status: int,
    doc: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode()
    return Response(status, body, headers=dict(headers or {}))


def error_response(
    status: int, message: str, headers: Optional[Dict[str, str]] = None
) -> Response:
    return json_response(status, {"error": message}, headers)


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`BadRequest` for protocol violations (which the
    connection handler turns into 4xx responses).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending a request
        raise BadRequest(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest(431, "request head too large") from exc

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    path, _, query_text = target.partition("?")
    path = path or "/"
    query = {
        key: values[0]
        for key, values in urllib.parse.parse_qs(query_text).items()
    }

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise BadRequest(400, f"malformed header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise BadRequest(400, "bad Content-Length") from exc
        if length < 0:
            raise BadRequest(400, "bad Content-Length")
        if length > _MAX_BODY_BYTES:
            raise BadRequest(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise BadRequest(400, "truncated request body") from exc
    return Request(method=method, path=path, headers=headers, body=body,
                   query=query)


def _parse_watermark_field(value: Any) -> int:
    """Accept the manifest's watermark shapes: int or '0x..' string."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise BadRequest(400, "watermark must be an integer or 0x string")
    if isinstance(value, str):
        try:
            value = int(value, 0)
        except ValueError:
            raise BadRequest(
                400, f"cannot parse watermark {value!r}"
            ) from None
    return value


def _parse_codec_field(doc: Dict[str, Any]) -> Optional[str]:
    """Validate an optional per-request ``codec`` override.

    Returns the normalized spec string, or ``None`` when the request
    leaves the choice to the artifact.
    """
    value = doc.get("codec")
    if value is None:
        return None
    if not isinstance(value, str):
        raise BadRequest(400, "'codec' must be a string")
    try:
        return resolve_codec(value).spec
    except CodecError as exc:
        raise BadRequest(400, str(exc)) from None


@dataclass
class ServerConfig:
    """Everything one serving daemon needs to know."""

    store_root: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port off the service
    workers: int = 2
    queue_depth: int = 8
    request_timeout: float = 60.0
    executor: str = "process"  # or "thread"
    self_check: bool = True
    #: Consecutive worker-job failures before a route's circuit opens.
    circuit_threshold: int = 5
    #: Seconds an open circuit waits before its half-open probe.
    circuit_reset: float = 30.0
    #: Seconds a graceful shutdown waits for in-flight jobs.
    drain_timeout: float = 10.0
    #: Directory for the telemetry journal (``journal.jsonl`` plus
    #: rotated segments). ``None`` keeps telemetry in-memory only.
    journal_dir: Optional[str] = None
    #: Path to a declarative SLO spec (JSON); ``None`` uses the
    #: default objective set.
    slo_spec: Optional[str] = None
    #: Path to a ``workers.json`` fleet file. When set, this daemon is
    #: a front-end router: validated embed/recognize requests forward
    #: to the listed worker daemons through a
    #: :class:`~repro.serve.dispatch.FleetDispatcher` instead of the
    #: local pool. ``None`` keeps the pre-fleet local execution.
    fleet: Optional[str] = None
    #: Fleet front-end backlog bound: pending jobs beyond this are
    #: load-shed by route priority (503 + Retry-After).
    fleet_max_pending: int = 256
    #: Self-healing: probe workers, eject the unhealthy, readmit the
    #: recovered. Off restores blind routing (every job burns its
    #: retry budget against a dead worker) — mostly for the chaos
    #: soak's control arm.
    fleet_eject: bool = True
    #: Seconds between health-probe sweeps (seeded jitter on top).
    fleet_probe_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.executor not in ("process", "thread"):
            raise ValueError("executor must be 'process' or 'thread'")
        if self.circuit_threshold < 1:
            raise ValueError("circuit_threshold must be positive")
        if self.circuit_reset <= 0:
            raise ValueError("circuit_reset must be positive")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be non-negative")
        if self.fleet_max_pending < 1:
            raise ValueError("fleet_max_pending must be positive")
        if self.fleet_probe_interval <= 0:
            raise ValueError("fleet_probe_interval must be positive")


class WatermarkService:
    """The daemon: an artifact store behind an asyncio HTTP front."""

    def __init__(self, config: ServerConfig):
        self.config = config
        # A plain store or a sharded fabric — the factory routes either
        # way, and both expose the record/resolve/records surface the
        # handlers use.
        self.store = open_store(config.store_root)
        self.port = config.port
        self._fleet: Optional[FleetDispatcher] = None
        self._fleet_specs = (
            load_workers(config.fleet) if config.fleet else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[Executor] = None
        self._inflight = 0
        self._max_inflight = config.workers + config.queue_depth
        self._draining = False
        self._rebalancing = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._breakers: Dict[str, CircuitBreaker] = {
            route: CircuitBreaker(
                threshold=config.circuit_threshold,
                reset_after=config.circuit_reset,
                name=route,
            )
            for route in ("/v1/embed", "/v1/recognize")
        }
        registry = obs.get_registry()
        self._requests: Counter = registry.counter(
            "repro_http_requests_total", "HTTP requests served"
        )
        self._latency: Histogram = registry.histogram(
            "repro_http_request_seconds",
            "HTTP request wall time",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._retries: Counter = registry.counter(
            "repro_http_worker_retries_total",
            "Jobs retried after a worker death",
        )
        self._inflight_gauge: Gauge = registry.gauge(
            "repro_http_inflight",
            "Requests currently admitted (sampled at scrape time)",
        )
        self._capacity_gauge: Gauge = registry.gauge(
            "repro_http_inflight_capacity",
            "Admission ceiling: workers + queue depth",
        )
        self._queue_gauge: Gauge = registry.gauge(
            "repro_http_queue_depth",
            "Admitted requests waiting beyond the worker pool",
        )
        self._journal_gauge: Gauge = registry.gauge(
            "repro_obs_journal_bytes",
            "Active telemetry journal segment size",
        )
        # The telemetry hub: reuse an ambient one (a test or an
        # embedding app may have installed its own journal), else
        # install one — journal-backed when the config names a
        # directory, ring-only otherwise — so the /v1/obs/* routes
        # always have something to serve.
        hub = obs.get_hub()
        if hub is None:
            journal_path = (
                os.path.join(config.journal_dir, "journal.jsonl")
                if config.journal_dir else None
            )
            hub = TelemetryHub(HubConfig(journal_path=journal_path))
            obs.set_hub(hub)
        self.hub: TelemetryHub = hub
        self.slo = SLOEngine(
            load_objectives(config.slo_spec)
            if config.slo_spec else None
        )

    # -- lifecycle ---------------------------------------------------------

    def _make_executor(self) -> Executor:
        if self.config.executor == "thread":
            return ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serve",
            )
        # An armed fault plan in the daemon process rides into pool
        # workers, same as the batch pipeline's initializer does —
        # and so does the telemetry hub's config, so worker-side
        # events (fault firings, store quarantines) land in the same
        # journal as the daemon's own.
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_service_worker,
            initargs=(faults.get_plan(), self.hub.worker_config()),
        )

    async def start(self) -> None:
        """Bind the listening socket and spin up the worker pool.

        In fleet mode the local pool still exists (cheap when idle —
        obs routes and health probes never touch it) but embeds and
        recognitions forward to the fleet dispatcher instead.
        """
        if self._fleet_specs is not None:
            self._fleet = FleetDispatcher(
                self._fleet_specs,
                request_timeout=self.config.request_timeout,
                max_pending=self.config.fleet_max_pending,
                eject=self.config.fleet_eject,
                probe_interval=self.config.fleet_probe_interval,
            )
        self._executor = self._make_executor()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() was not awaited"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None

    async def shutdown(self) -> None:
        """Graceful drain, then stop.

        New worker jobs are refused with ``503`` + ``Retry-After`` the
        moment this is called (``/healthz`` flips to ``"draining"``);
        jobs already in flight get up to ``drain_timeout`` seconds to
        finish before the pool is torn down — a straggler cancelled at
        the deadline reports ``503`` rather than vanishing.
        """
        self._draining = True
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout
            )
        except asyncio.TimeoutError:
            pass  # deadline: stop() cancels whatever is still running
        await self.stop()

    async def run(self) -> None:
        """start + serve until cancelled, then tear down."""
        await self.start()
        try:
            await self.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route = "unmatched"
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                response = error_response(exc.status, exc.message)
            else:
                if request is None:
                    return
                known = {path for _, path in ROUTES}
                route = request.path if request.path in known else "unmatched"
                start = time.perf_counter()
                response = await self._dispatch(request)
                elapsed = time.perf_counter() - start
                self._latency.observe(elapsed, route=route)
                self._requests.inc(
                    route=route,
                    method=request.method,
                    status=str(response.status),
                )
                self.hub.emit(
                    "http.request",
                    route,
                    route=route,
                    method=request.method,
                    status=response.status,
                    seconds=elapsed,
                )
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        known_paths = {path for _, path in ROUTES}
        if request.path not in known_paths:
            return error_response(404, f"no route {request.path!r}")
        if (request.method, request.path) not in ROUTES:
            return error_response(
                405, f"{request.method} not supported on {request.path}"
            )
        with obs.span(
            "http.request", method=request.method, path=request.path
        ) as sp:
            try:
                if request.path == "/healthz":
                    response = self._handle_healthz()
                elif request.path == "/metrics":
                    response = self._handle_metrics()
                elif request.path == "/v1/artifacts":
                    response = self._handle_artifacts()
                elif request.path == "/v1/obs/events":
                    response = self._handle_obs_events(request)
                elif request.path == "/v1/obs/spans":
                    response = self._handle_obs_spans(request)
                elif request.path == "/v1/obs/slo":
                    response = self._handle_obs_slo()
                elif request.path == "/v1/embed":
                    response = await self._handle_embed(request)
                elif request.path == "/v1/store/rebalance":
                    response = await self._handle_rebalance(request)
                else:
                    response = await self._handle_recognize(request)
            except BadRequest as exc:
                headers = None
                if exc.retry_after is not None:
                    headers = {
                        "Retry-After": f"{max(1, round(exc.retry_after))}"
                    }
                response = error_response(exc.status, exc.message, headers)
            except StoreError as exc:
                response = error_response(404, str(exc))
            except Exception as exc:  # the daemon must outlive any request
                response = error_response(
                    500, f"{type(exc).__name__}: {exc}"
                )
            sp.set(status=response.status)
        return response

    # -- cheap, loop-local endpoints ---------------------------------------

    def _handle_healthz(self) -> Response:
        slo = self.slo.report(self.hub.tail(limit=self.hub.config.ring_events))
        body: Dict[str, Any] = {
            "status": "draining" if self._draining else "ok",
            "rebalancing": self._rebalancing,
            "artifacts": len(self.store),
            "inflight": self._inflight,
            "capacity": self._max_inflight,
            "workers": self.config.workers,
            "executor": self.config.executor,
            "circuits": {
                route: breaker.state
                for route, breaker in self._breakers.items()
            },
            "slo": {
                "met": slo["met"],
                "breached": slo["breached"],
                "max_burn_rate": slo["max_burn_rate"],
            },
        }
        if self._fleet is not None:
            body["fleet"] = self._fleet.stats()
        return json_response(200, body)

    def _sample_gauges(self) -> None:
        """Refresh live-state gauges so a scrape sees *now*, not the
        last time a request happened to update them."""
        self._inflight_gauge.set(self._inflight)
        self._capacity_gauge.set(self._max_inflight)
        self._queue_gauge.set(
            max(0, self._inflight - self.config.workers)
        )
        self._journal_gauge.set(self.hub.journal_bytes())

    def _handle_metrics(self) -> Response:
        self._sample_gauges()
        text = obs.get_registry().to_prometheus()
        return Response(
            200, text.encode(), content_type=_PROMETHEUS_CONTENT_TYPE
        )

    def _handle_obs_events(self, request: Request) -> Response:
        limit = request.int_param("limit", 100)
        events = self.hub.tail(
            limit=limit,
            kind=request.query.get("kind"),
            name=request.query.get("name"),
            route=request.query.get("route"),
        )
        return json_response(
            200,
            {
                "count": len(events),
                "emitted_total": self.hub.emitted,
                "events": [e.to_dict() for e in events],
            },
        )

    def _handle_obs_spans(self, request: Request) -> Response:
        limit = request.int_param("limit", 10)
        traces = []
        for trace_id, spans in self.hub.recent_traces(limit=limit):
            traces.append({
                "trace_id": trace_id,
                "spans": [sp.to_dict() for sp in spans],
                "tree": render_span_tree(spans),
            })
        return json_response(200, {"traces": traces})

    def _handle_obs_slo(self) -> Response:
        report = self.slo.report(
            self.hub.tail(limit=self.hub.config.ring_events)
        )
        return json_response(200, report)

    def _handle_artifacts(self) -> Response:
        self.store.refresh()
        return json_response(
            200,
            {"artifacts": [r.to_dict() for r in self.store.records()]},
        )

    # -- online store rebalancing ------------------------------------------

    def _admission_gate(self) -> None:
        """Pause embed/recognize admission while a shard moves.

        The fabric's adopt-then-evict moves are crash-safe, but a
        request resolving a digest mid-move could see the ring in
        transition; a brief 503 + Retry-After is cheaper than a
        spurious 404.
        """
        if self._rebalancing:
            raise BadRequest(
                503, "store rebalance in progress; admission paused",
                retry_after=2.0,
            )

    async def _handle_rebalance(self, request: Request) -> Response:
        """Online ``add_shard``/``remove_shard`` behind the daemon.

        Admission pauses for the duration (the fabric's adopt-then-
        evict already makes the move itself crash-safe); obs routes
        and ``/healthz`` stay live so the move is observable.
        """
        doc = request.json()
        action = doc.get("action")
        if action not in ("add-shard", "remove-shard"):
            raise BadRequest(
                400, "'action' must be 'add-shard' or 'remove-shard'"
            )
        shard = doc.get("shard")
        if shard is not None and not isinstance(shard, str):
            raise BadRequest(400, "'shard' must be a string when given")
        if action == "remove-shard" and not shard:
            raise BadRequest(400, "remove-shard requires 'shard'")
        if not isinstance(self.store, ShardedArtifactStore):
            raise BadRequest(
                400, "store is a plain directory, not a sharded fabric"
            )
        if self._rebalancing:
            raise BadRequest(
                409, "a rebalance is already in progress", retry_after=2.0,
            )
        fabric = self.store
        if action == "add-shard":
            work = functools.partial(fabric.add_shard, shard)
        else:
            work = functools.partial(fabric.remove_shard, str(shard))
        self._rebalancing = True
        try:
            report = await asyncio.get_running_loop().run_in_executor(
                None, work
            )
        except (StoreError, ValueError) as exc:
            # A bad membership change (duplicate shard, last shard) is
            # the caller's error, not a missing resource: 400, not the
            # generic StoreError->404 mapping upstream.
            raise BadRequest(400, str(exc)) from None
        finally:
            self._rebalancing = False
        self.hub.emit(
            "store.rebalance",
            shard or "auto",
            action=action,
            moved=len(report.moved),
            kept=report.kept,
            shards=len(fabric.shard_names),
        )
        return json_response(200, {
            "action": action,
            "report": report.to_dict(),
            "shards": fabric.shard_names,
        })

    # -- worker-pool endpoints ---------------------------------------------

    def _resolve_artifact(self, doc: Dict[str, Any]) -> str:
        ref = doc.get("artifact")
        if not isinstance(ref, str) or not ref:
            raise BadRequest(400, "'artifact' (digest string) is required")
        self.store.refresh()
        return self.store.resolve(ref)  # StoreError -> 404 upstream

    async def _forward_to_fleet(
        self, route: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Proxy one *validated* request through the fleet dispatcher.

        The front-end keeps request validation (bad input never costs
        a fleet round-trip) and the drain gate; everything else —
        worker choice, bounded in-flight, requeue on loss, priority
        shed — is the dispatcher's. Raises :class:`BadRequest` for
        conditions the front-end owns (draining, saturation, a fleet
        that lost every worker); a worker's own error status
        propagates as :class:`ServiceError` for the caller to mirror.
        """
        assert self._fleet is not None
        if self._draining:
            raise BadRequest(
                503, "server is draining",
                retry_after=self.config.drain_timeout,
            )
        job = Job(route=route, payload=payload)
        try:
            return await asyncio.wrap_future(self._fleet.submit(job))
        except DispatchOverload as exc:
            # The dispatcher's own words: a priority shed and a fleet
            # brownout are different situations for the client.
            raise BadRequest(
                503, str(exc), retry_after=exc.retry_after,
            ) from None
        except (OSError, faults.FaultError) as exc:
            raise BadRequest(
                502, f"fleet worker unreachable: {exc}"
            ) from None

    async def _handle_embed(self, request: Request) -> Response:
        self._admission_gate()
        doc = request.json()
        digest = self._resolve_artifact(doc)
        record = self.store.record(digest)
        copy_id = doc.get("copy_id")
        if not isinstance(copy_id, str):
            raise BadRequest(400, "'copy_id' (string) is required")
        if "watermark" not in doc:
            raise BadRequest(400, "'watermark' is required")
        watermark = _parse_watermark_field(doc["watermark"])
        seed = doc.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise BadRequest(400, "'seed' must be an integer")
        self_check = doc.get("self_check", self.config.self_check)
        if not isinstance(self_check, bool):
            raise BadRequest(400, "'self_check' must be a boolean")
        try:
            spec = CopySpec(copy_id=copy_id, watermark=watermark, seed=seed)
        except ValueError as exc:
            raise BadRequest(400, str(exc)) from None
        if watermark >= (1 << record.watermark_bits):
            raise BadRequest(
                400,
                f"watermark {watermark:#x} does not fit the artifact's "
                f"{record.watermark_bits}-bit fingerprint width",
            )
        codec = _parse_codec_field(doc)

        if self._fleet is not None:
            payload: Dict[str, Any] = {
                "artifact": digest,
                "copy_id": copy_id,
                "watermark": watermark,
                "seed": seed,
                "self_check": self_check,
            }
            if codec is not None:
                payload["codec"] = codec
            try:
                body = await self._forward_to_fleet("/v1/embed", payload)
            except ServiceError as exc:
                return json_response(
                    exc.status, exc.doc or {"error": exc.message}
                )
            self.hub.emit(
                "embed",
                copy_id,
                artifact=digest,
                ok=bool(body.get("ok", True)),
                verified=bool(body.get("verified", True)),
                wall_seconds=body.get("wall_seconds"),
            )
            return json_response(200, body)

        job = functools.partial(
            service_embed_copy,
            self.config.store_root,
            digest,
            spec,
            self_check,
            self._parent_context(),
            self._drain_spans(),
            codec,
        )
        result = await self._run_job("/v1/embed", job)
        tracer = obs.get_tracer()
        if tracer.enabled and result.spans:
            tracer.adopt(result.spans)
            result.spans = []
        body = {
            "copy_id": result.copy_id,
            "watermark": result.watermark,
            "seed": result.seed,
            "artifact": digest,
            "codec": codec or record.codec,
            "ok": result.ok,
            "checked": result.checked,
            "verified": result.verified,
            "self_check": result.self_check,
            "output_ok": result.output_ok,
            "recognized": result.recognized,
            "piece_count": result.piece_count,
            "byte_size_increase": result.byte_size_increase,
            "wall_seconds": result.wall_seconds,
            "module": result.text,
        }
        self.hub.emit(
            "embed",
            result.copy_id,
            artifact=digest,
            ok=result.ok,
            verified=result.verified,
            wall_seconds=result.wall_seconds,
        )
        if not result.ok:
            body["error"] = result.error
            return json_response(500, body)
        if not result.verified:
            body["error"] = "copy failed its self-check"
            return json_response(500, body)
        return json_response(200, body)

    async def _handle_recognize(self, request: Request) -> Response:
        self._admission_gate()
        doc = request.json()
        digest = self._resolve_artifact(doc)
        module_text = doc.get("module")
        if not isinstance(module_text, str) or not module_text.strip():
            raise BadRequest(
                400, "'module' (WVM assembly text) is required"
            )
        codec = _parse_codec_field(doc)

        if self._fleet is not None:
            payload: Dict[str, Any] = {
                "artifact": digest,
                "module": module_text,
            }
            if codec is not None:
                payload["codec"] = codec
            try:
                body = await self._forward_to_fleet(
                    "/v1/recognize", payload
                )
            except ServiceError as exc:
                return json_response(
                    exc.status, exc.doc or {"error": exc.message}
                )
            body["artifact"] = digest
            self.hub.emit(
                "recognize",
                digest,
                artifact=digest,
                complete=bool(body.get("complete")),
                watermark=body.get("watermark"),
            )
            return json_response(
                200 if body.get("complete") else 422, body
            )

        job = functools.partial(
            service_recognize,
            self.config.store_root,
            digest,
            module_text,
            self._parent_context(),
            self._drain_spans(),
            codec,
        )
        outcome = await self._run_job("/v1/recognize", job)
        tracer = obs.get_tracer()
        spans = outcome.pop("spans", [])
        if tracer.enabled and spans:
            tracer.adopt(spans)
        status = 200 if outcome.get("complete") else 422
        outcome["artifact"] = digest
        self.hub.emit(
            "recognize",
            digest,
            artifact=digest,
            complete=bool(outcome.get("complete")),
            watermark=outcome.get("watermark"),
        )
        return json_response(status, outcome)

    # -- dispatch plumbing -------------------------------------------------

    def _parent_context(self) -> Optional[obs.SpanContext]:
        return obs.current_context() if obs.get_tracer().enabled else None

    def _drain_spans(self) -> bool:
        """Process workers hand spans back; threads record in place."""
        return self.config.executor == "process"

    async def _run_job(self, route: str, job: Callable[[], Any]) -> Any:
        """Admission, circuit, timeout, and one retry on worker death.

        Gate order is cheapest-first: drain check, circuit check,
        queue-bound check — only then does the job touch the pool.
        Job outcomes feed the route's breaker: worker-infrastructure
        failures (pool died twice, timeout, cancelled at drain) count
        against it, anything the worker actually computed resets it.
        """
        if self._draining:
            raise BadRequest(
                503, "server is draining", retry_after=self.config.drain_timeout
            )
        breaker = self._breakers[route]
        if not breaker.allow():
            self._requests.inc(route=route, method="-", status="503")
            raise BadRequest(
                503,
                f"circuit open for {route} after repeated worker failures",
                retry_after=breaker.retry_after(),
            )
        if self._inflight >= self._max_inflight:
            self._requests.inc(route="rejected", method="-", status="429")
            raise BadRequest429()
        self._inflight += 1
        self._idle.clear()
        try:
            result = await asyncio.wait_for(
                self._submit(job), timeout=self.config.request_timeout
            )
        except asyncio.TimeoutError:
            breaker.record_failure()
            raise BadRequest(
                504,
                f"request exceeded {self.config.request_timeout:g}s budget",
            ) from None
        except asyncio.CancelledError:
            if self._draining:
                # The drain deadline cancelled this straggler.
                raise BadRequest(
                    503, "job cancelled by server shutdown"
                ) from None
            raise
        except BadRequest as exc:
            if exc.status == 503:
                breaker.record_failure()
            raise
        else:
            breaker.record_success()
            return result
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _submit(self, job: Callable[[], Any]) -> Any:
        loop = asyncio.get_running_loop()
        assert self._executor is not None, "service not started"
        job = functools.partial(_faultable_job, job)
        try:
            return await loop.run_in_executor(self._executor, job)
        except BrokenExecutor:
            # The worker died under the job (OOM-kill, segfault in an
            # extension, operator signal). The pool is unusable now:
            # rebuild it and give the job exactly one more chance.
            self._retries.inc()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._make_executor()
            try:
                return await loop.run_in_executor(self._executor, job)
            except BrokenExecutor as exc:
                raise BadRequest(
                    503, "worker pool died twice running this request"
                ) from exc


def _init_service_worker(
    fault_plan: Optional[FaultPlan],
    hub_config: Optional[HubConfig] = None,
) -> None:
    """Process-pool initializer: arm the parent's fault plan and point
    the worker's telemetry hub at the parent's journal."""
    if fault_plan is not None:
        faults.install(fault_plan)
    if hub_config is not None:
        obs.set_hub(TelemetryHub(hub_config))


def _faultable_job(job: Callable[[], Any]) -> Any:
    """Run one dispatched job behind the ``daemon.job`` fault site.

    The hook runs *inside the worker* (thread or process), so an
    injected delay genuinely occupies a pool slot — that is what lets
    tests drive real 429 backpressure and 504 timeouts — and an
    injected kill takes the worker process down for real.
    """
    faults.check("daemon.job")
    return job()


class BadRequest429(BadRequest):
    """Queue full; carries the Retry-After hint."""

    def __init__(self) -> None:
        super().__init__(429, "queue full, retry shortly", retry_after=1.0)


class ServerThread:
    """Run a :class:`WatermarkService` on a background thread.

    The bridge between the daemon's asyncio world and synchronous
    callers (tests, notebooks, embedding the service inside another
    app). ``start()`` returns once the socket is bound — the bound
    port is ``service.port`` — and ``stop()`` tears the loop down.
    Usable as a context manager.
    """

    def __init__(self, config: ServerConfig):
        self.service = WatermarkService(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.service.config.host}:{self.service.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"daemon failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop = None
            self._thread = None

    def shutdown(self) -> None:
        """Gracefully drain in-flight jobs, then stop the loop.

        The synchronous face of :meth:`WatermarkService.shutdown`:
        returns once the drain completed (or its deadline passed) and
        the background loop has exited.
        """
        if self._loop is not None and self._thread is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self._loop
            )
            future.result(
                timeout=self.service.config.drain_timeout + 30
            )
        self.stop()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(config: ServerConfig, announce: bool = True) -> None:
    """Blocking entry point for the CLI: run until interrupted.

    ``SIGTERM`` (the fleet manager's stop signal) triggers a graceful
    drain — in-flight jobs get ``drain_timeout`` seconds to finish
    while new work is refused — where Ctrl-C still tears down
    immediately.
    """
    service = WatermarkService(config)

    async def main() -> None:
        await service.start()
        if announce:
            print(
                f"serving {len(service.store)} artifact(s) on "
                f"http://{config.host}:{service.port} "
                f"({config.workers} {config.executor} worker(s), "
                f"queue depth {config.queue_depth})",
                file=sys.stderr,
            )
        loop = asyncio.get_running_loop()
        terminated = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, terminated.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal handlers: hard stop only
        serve_task = asyncio.create_task(service.serve_forever())
        stop_task = asyncio.create_task(terminated.wait())
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if terminated.is_set():
            if announce:
                print("SIGTERM: draining in-flight jobs", file=sys.stderr)
            serve_task.cancel()
            await service.shutdown()
        for task in (serve_task, stop_task):
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
