"""The persistent artifact store: pay preparation once per release.

A fingerprinting service amortizes the heavy, watermark-independent
preparation work (key-input tracing, CFGs, site mining, planning) over
every copy it mints. The in-memory :class:`~repro.pipeline.prepare.
PrepareCache` already does that within one process; this module makes
the artifact durable, so the cost is paid once per *(program, key)
release* across process restarts, CLI invocations, and every worker of
the serving daemon.

The store is **content-addressed**: an artifact's name is the
:func:`~repro.pipeline.prepare.prepare_fingerprint` digest of
everything preparation depends on (module text, key secret, key
inputs, fingerprint width, piece count). Identical inputs always map
to the same address; a changed release maps elsewhere, so stale
artifacts can never be served for new inputs.

On-disk layout::

    <root>/
      store.json              # integrity manifest (version + records)
      store.lock              # advisory lock serializing manifest writers
      blobs/<digest>.pickle   # one PreparedProgram pickle per artifact
      quarantine/             # blobs that failed their integrity checks
        <digest>.pickle       #   the evidence, moved out of blobs/
        <digest>.json         #   why and when it was quarantined

Each manifest record carries the SHA-256 of its blob; :meth:`
ArtifactStore.load` re-hashes the blob before unpickling and refuses
corrupted or substituted files. The blob itself is the
:class:`~repro.pipeline.prepare.PreparedProgram` pickle, whose trace
travels as the compact binary format of :mod:`repro.vm.trace_io` —
artifacts are megabytes, not tens of megabytes. Manifest writes are
atomic (write-new + rename), so a crashed writer leaves the previous
manifest intact; blob writes likewise.

Hardening (the failure modes this module absorbs rather than
propagates):

* **concurrent writers** — every manifest rewrite holds an ``fcntl``
  advisory lock on ``store.lock``, so two processes ``put``-ing into
  the same store serialize instead of interleaving rename races;
* **failed blobs quarantine** — a blob that fails :meth:`load`'s
  integrity funnel is *moved* to ``quarantine/`` (with a JSON sidecar
  recording the reason) instead of deleted: the record leaves the
  manifest so the store heals, while the evidence survives for
  forensics (``repro artifact quarantine-list``);
* **torn manifests rebuild** — a ``store.json`` cut off mid-write by
  a crashed machine (atomic rename makes this rare, not impossible)
  is preserved as ``store.json.corrupt`` and the manifest is rebuilt
  by scanning ``blobs/``; only blobs that decode and self-verify
  re-enter it;
* **fault injection** — the write and load paths declare
  :mod:`repro.faults` sites (``store.write.manifest``,
  ``store.write.blob``, ``store.load``) so tests can inject
  ``ENOSPC``, torn bytes, or corruption deterministically.
"""

from __future__ import annotations

import fcntl
import hashlib
import io
import json
import os
import pickle
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import faults
from ..bytecode_wm.keys import WatermarkKey
from ..codec import resolve_codec
from ..obs.journal import emit as emit_event
from ..obs.metrics import get_registry
from ..pipeline.prepare import (
    PrepareError,
    PreparedProgram,
    prepare,
    prepare_fingerprint,
    resolve_piece_count,
)
from ..vm.interpreter import DEFAULT_MAX_STEPS
from ..vm.program import Module

#: Bumped whenever the directory layout or manifest schema changes;
#: opening a store written by a different version is an error, not a
#: silent misread.
STORE_VERSION = 1

MANIFEST_NAME = "store.json"
LOCK_NAME = "store.lock"
BLOB_DIR = "blobs"
QUARANTINE_DIR = "quarantine"

_DIGEST_LEN = 64  # hex sha256


class StoreError(Exception):
    """The store is unusable, an artifact is missing, or it is corrupt."""


@dataclass(frozen=True)
class ArtifactRecord:
    """Manifest entry for one stored artifact (metadata, not the blob)."""

    digest: str
    sha256: str
    size_bytes: int
    created_unix: float
    watermark_bits: int
    pieces: int
    label: str = ""
    codec: str = "gcrt"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "created_unix": self.created_unix,
            "watermark_bits": self.watermark_bits,
            "pieces": self.pieces,
            "label": self.label,
            "codec": self.codec,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "ArtifactRecord":
        try:
            return ArtifactRecord(
                digest=str(doc["digest"]),
                sha256=str(doc["sha256"]),
                size_bytes=int(doc["size_bytes"]),
                created_unix=float(doc["created_unix"]),
                watermark_bits=int(doc["watermark_bits"]),
                pieces=int(doc["pieces"]),
                label=str(doc.get("label", "")),
                # Manifests written before the codec layer carry no
                # codec field; those artifacts are GCRT by definition.
                codec=str(doc.get("codec", "gcrt")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed manifest record: {exc}") from exc


@dataclass(frozen=True)
class QuarantineRecord:
    """Sidecar metadata for one quarantined blob."""

    digest: str
    reason: str
    quarantined_at: str  # ISO-ish UTC timestamp for the CLI listing
    sha256_observed: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "reason": self.reason,
            "quarantined_at": self.quarantined_at,
            "sha256_observed": self.sha256_observed,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "QuarantineRecord":
        return QuarantineRecord(
            digest=str(doc.get("digest", "")),
            reason=str(doc.get("reason", "")),
            quarantined_at=str(doc.get("quarantined_at", "")),
            sha256_observed=str(doc.get("sha256_observed", "")),
        )


def _valid_digest(digest: str) -> bool:
    return (
        len(digest) == _DIGEST_LEN
        and all(c in "0123456789abcdef" for c in digest)
    )


def _atomic_write(path: str, data: bytes, site: str = "store.write") -> None:
    """Write-new + rename, declared as a fault-injection site.

    ``site`` names the hook (``store.write.manifest`` /
    ``store.write.blob``): control rules there raise ``ENOSPC``/``EIO``
    before any bytes land; byte rules corrupt or truncate the payload
    on its way to disk — a torn write with the rename still completing.
    """
    faults.check(site, path=path)
    data = faults.filter_bytes(site, data)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fp:
        fp.write(data)
    os.replace(tmp, path)


class ArtifactStore:
    """A directory of integrity-checked :class:`PreparedProgram` pickles.

    One store per deployment; the address of an artifact is its
    preparation fingerprint, so ``put`` is idempotent and ``load`` can
    verify that the blob it decoded really is the artifact it asked
    for. All mutating operations rewrite the manifest atomically.
    """

    def __init__(self, root: str, create: bool = True):
        self.root = root
        self._blob_dir = os.path.join(root, BLOB_DIR)
        self._records: Dict[str, ArtifactRecord] = {}
        manifest = os.path.join(root, MANIFEST_NAME)
        if os.path.exists(manifest):
            self._read_manifest(manifest)
        elif create:
            os.makedirs(self._blob_dir, exist_ok=True)
            self._write_manifest()
        else:
            raise StoreError(f"no artifact store at {root!r}")

    # -- manifest ----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _blob_path(self, digest: str) -> str:
        return os.path.join(self._blob_dir, f"{digest}.pickle")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    @contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Hold the store's advisory write lock (``store.lock``).

        Serializes concurrent manifest writers across processes; the
        lock file itself carries no data and is never removed.
        """
        fd = os.open(
            os.path.join(self.root, LOCK_NAME), os.O_CREAT | os.O_WRONLY,
            0o644,
        )
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _read_manifest(self, path: str) -> None:
        try:
            with open(path) as fp:
                doc = json.load(fp)
        except json.JSONDecodeError:
            # A torn/truncated manifest (crash mid-write on a machine
            # whose rename was not atomic after all). Keep the evidence
            # and rebuild from the blobs themselves.
            self._rebuild_manifest(path)
            return
        except OSError as exc:
            raise StoreError(f"unreadable store manifest: {exc}") from exc
        if not isinstance(doc, dict) or "version" not in doc:
            raise StoreError("store manifest has no version field")
        if doc["version"] != STORE_VERSION:
            raise StoreError(
                f"store version {doc['version']} unsupported "
                f"(expected {STORE_VERSION})"
            )
        records = doc.get("artifacts", [])
        if not isinstance(records, list):
            raise StoreError("store manifest 'artifacts' must be a list")
        for entry in records:
            record = ArtifactRecord.from_dict(entry)
            if not _valid_digest(record.digest):
                raise StoreError(f"bad artifact digest {record.digest!r}")
            self._records[record.digest] = record

    def _rebuild_manifest(self, path: str) -> None:
        """Recover from a torn ``store.json`` by scanning ``blobs/``.

        The unparseable manifest is preserved as ``store.json.corrupt``
        for forensics. Only blobs that unpickle to a
        :class:`PreparedProgram` whose own fingerprint matches their
        file name re-enter the rebuilt manifest — anything else is
        left on disk for ``verify()`` to report as an orphan.
        """
        warnings.warn(
            f"store manifest {path!r} is torn/unparseable; rebuilding "
            f"from blob scan (original kept as {MANIFEST_NAME}.corrupt)",
            RuntimeWarning,
            stacklevel=4,
        )
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass
        self._records = {}
        if os.path.isdir(self._blob_dir):
            for name in sorted(os.listdir(self._blob_dir)):
                if not name.endswith(".pickle"):
                    continue
                digest = name.rsplit(".pickle", 1)[0]
                if not _valid_digest(digest):
                    continue
                blob = os.path.join(self._blob_dir, name)
                try:
                    with open(blob, "rb") as fp:
                        data = fp.read()
                    obj = pickle.loads(data)
                except Exception:
                    continue  # verify() will flag it as an orphan
                if not isinstance(obj, PreparedProgram):
                    continue
                if obj.fingerprint() != digest:
                    continue
                self._records[digest] = ArtifactRecord(
                    digest=digest,
                    sha256=hashlib.sha256(data).hexdigest(),
                    size_bytes=len(data),
                    created_unix=os.path.getmtime(blob),
                    watermark_bits=obj.watermark_bits,
                    pieces=obj.pieces,
                    codec=obj.codec,
                )
        get_registry().counter(
            "repro_store_manifest_rebuilds_total",
            "Torn store manifests rebuilt from blob scans",
        ).inc()
        self._write_manifest()

    def refresh(self) -> None:
        """Re-read the manifest: see artifacts other processes added.

        The daemon holds a store open for days while `repro artifact
        prepare` runs land new releases next to it; a refresh per
        store-touching request keeps the view current at the cost of
        one small JSON read.
        """
        manifest = self._manifest_path()
        if os.path.exists(manifest):
            self._records = {}
            self._read_manifest(manifest)

    def _write_manifest(self) -> None:
        doc = {
            "version": STORE_VERSION,
            "artifacts": [
                self._records[d].to_dict() for d in sorted(self._records)
            ],
        }
        os.makedirs(self._blob_dir, exist_ok=True)
        payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        with self._manifest_lock():
            _atomic_write(
                self._manifest_path(), payload.encode(),
                site="store.write.manifest",
            )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._records

    def contains(self, digest: str) -> bool:
        return digest in self._records

    def record(self, digest: str) -> ArtifactRecord:
        try:
            return self._records[digest]
        except KeyError:
            raise StoreError(f"no artifact {digest!r} in store") from None

    def records(self) -> List[ArtifactRecord]:
        """All records, oldest first (stable for CLI listings)."""
        return sorted(
            self._records.values(), key=lambda r: (r.created_unix, r.digest)
        )

    def resolve(self, prefix: str) -> str:
        """Expand a unique digest prefix (CLI convenience) to the digest."""
        if prefix in self._records:
            return prefix
        matches = [d for d in self._records if d.startswith(prefix)]
        if not matches:
            raise StoreError(f"no artifact matches {prefix!r}")
        if len(matches) > 1:
            raise StoreError(f"ambiguous artifact prefix {prefix!r}")
        return matches[0]

    # -- persistence -------------------------------------------------------

    def put(self, prepared: PreparedProgram, label: str = "") -> ArtifactRecord:
        """Persist an artifact under its content address (idempotent)."""
        digest = prepared.fingerprint()
        buf = io.BytesIO()
        pickle.dump(prepared, buf, protocol=pickle.HIGHEST_PROTOCOL)
        data = buf.getvalue()
        record = ArtifactRecord(
            digest=digest,
            sha256=hashlib.sha256(data).hexdigest(),
            size_bytes=len(data),
            created_unix=time.time(),
            watermark_bits=prepared.watermark_bits,
            pieces=prepared.pieces,
            label=label,
            codec=prepared.codec,
        )
        _atomic_write(self._blob_path(digest), data, site="store.write.blob")
        self._records[digest] = record
        self._write_manifest()
        return record

    def export_blob(self, digest: str) -> Tuple[ArtifactRecord, bytes]:
        """The record plus its verified raw blob bytes.

        The fabric's rebalancer moves artifacts between shards with
        this + :meth:`adopt`: bytes-verbatim, never re-pickled, so a
        move cannot change an artifact's identity. The blob is hashed
        before export — a corrupt blob is quarantined here rather than
        smuggled onto another shard.
        """
        record = self.record(digest)
        try:
            with open(self._blob_path(digest), "rb") as fp:
                data = fp.read()
        except OSError as exc:
            raise StoreError(
                f"artifact {digest[:12]} blob missing: {exc}"
            ) from exc
        actual = hashlib.sha256(data).hexdigest()
        if actual != record.sha256:
            self.quarantine(digest, "sha256 mismatch", sha256_observed=actual)
            raise StoreError(
                f"artifact {digest[:12]} failed its integrity check on "
                f"export (sha256 {actual[:12]}.. != manifest "
                f"{record.sha256[:12]}..)"
            )
        return record, data

    def adopt(self, record: ArtifactRecord, data: bytes) -> ArtifactRecord:
        """Accept an artifact moved verbatim from another store.

        The receiving side of a fabric rebalance: the bytes are
        re-hashed against the travelling record before anything lands,
        so a move torn in transit is rejected here, while the source
        still holds the original (moves evict only after adoption).
        """
        if not _valid_digest(record.digest):
            raise StoreError(f"bad artifact digest {record.digest!r}")
        actual = hashlib.sha256(data).hexdigest()
        if actual != record.sha256:
            raise StoreError(
                f"artifact {record.digest[:12]} arrived corrupt "
                f"(sha256 {actual[:12]}.. != record {record.sha256[:12]}..)"
            )
        _atomic_write(
            self._blob_path(record.digest), data, site="store.write.blob"
        )
        self._records[record.digest] = record
        self._write_manifest()
        return record

    def load(self, digest: str) -> PreparedProgram:
        """Read, integrity-check and unpickle one artifact.

        Three defenses, in order: the blob's SHA-256 must match the
        manifest (bit rot, truncation, substitution); the pickle must
        decode to a supported :class:`PreparedProgram` (stale format);
        the decoded artifact's own fingerprint must equal the address
        it was stored under (a mislabelled or hand-moved blob). A blob
        failing any of the three is **quarantined** — moved to
        ``quarantine/`` with a reason sidecar and dropped from the
        manifest — before the :class:`StoreError` propagates, so the
        next ``get_or_prepare`` heals the store instead of tripping
        over the same bad bytes.
        """
        record = self.record(digest)
        path = self._blob_path(digest)
        faults.check("store.load", digest=digest)
        try:
            with open(path, "rb") as fp:
                data = fp.read()
        except OSError as exc:
            raise StoreError(
                f"artifact {digest[:12]} blob missing: {exc}"
            ) from exc
        data = faults.filter_bytes("store.load", data)
        actual = hashlib.sha256(data).hexdigest()
        if actual != record.sha256:
            self.quarantine(digest, "sha256 mismatch", sha256_observed=actual)
            raise StoreError(
                f"artifact {digest[:12]} failed its integrity check "
                f"(sha256 {actual[:12]}.. != manifest {record.sha256[:12]}..)"
            )
        try:
            obj = pickle.loads(data)
        except Exception as exc:
            self.quarantine(
                digest, f"does not unpickle: {type(exc).__name__}",
                sha256_observed=actual,
            )
            raise StoreError(
                f"artifact {digest[:12]} does not unpickle: {exc}"
            ) from exc
        if not isinstance(obj, PreparedProgram):
            self.quarantine(
                digest, "not a PreparedProgram", sha256_observed=actual
            )
            raise StoreError(
                f"artifact {digest[:12]} is not a PreparedProgram"
            )
        if obj.fingerprint() != digest:
            self.quarantine(
                digest, "fingerprint does not match address",
                sha256_observed=actual,
            )
            raise StoreError(
                f"artifact {digest[:12]} decoded to a different "
                f"preparation fingerprint - store is inconsistent"
            )
        return obj

    # -- quarantine --------------------------------------------------------

    def quarantine(
        self, digest: str, reason: str, sha256_observed: str = ""
    ) -> bool:
        """Move a failed blob aside and drop its manifest record.

        Unlike :meth:`evict`, the bytes survive (``quarantine/``) for
        forensics, next to a JSON sidecar saying why. Idempotent and
        safe for a blob that has already vanished; returns True when a
        blob was actually moved.
        """
        src = self._blob_path(digest)
        qdir = self._quarantine_dir()
        os.makedirs(qdir, exist_ok=True)
        moved = False
        try:
            os.replace(src, os.path.join(qdir, f"{digest}.pickle"))
            moved = True
        except OSError:
            pass  # already moved or never landed; the sidecar still tells why
        record = QuarantineRecord(
            digest=digest,
            reason=reason,
            quarantined_at=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            sha256_observed=sha256_observed,
        )
        sidecar = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        with open(os.path.join(qdir, f"{digest}.json"), "w") as fp:
            fp.write(sidecar + "\n")
        if digest in self._records:
            del self._records[digest]
            self._write_manifest()
        get_registry().counter(
            "repro_store_quarantined_total",
            "Blobs quarantined after failing integrity checks",
        ).inc(reason=reason.split(":")[0])
        emit_event("store.quarantine", digest, digest=digest,
                   reason=reason, moved=moved)
        return moved

    def quarantined(self) -> List[QuarantineRecord]:
        """All quarantine sidecars, oldest first (CLI listing order)."""
        qdir = self._quarantine_dir()
        records: List[QuarantineRecord] = []
        if not os.path.isdir(qdir):
            return records
        for name in sorted(os.listdir(qdir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(qdir, name)) as fp:
                    records.append(QuarantineRecord.from_dict(json.load(fp)))
            except (OSError, ValueError):
                continue  # a torn sidecar should not break the listing
        records.sort(key=lambda r: (r.quarantined_at, r.digest))
        return records

    def evict(self, digest: str) -> bool:
        """Drop an artifact (blob + record). Returns False if absent."""
        if digest not in self._records:
            return False
        del self._records[digest]
        try:
            os.remove(self._blob_path(digest))
        except OSError:
            pass  # record removal is what matters; verify() finds orphans
        self._write_manifest()
        return True

    def verify(self) -> List[str]:
        """Integrity-sweep the whole store; returns the problems found."""
        problems: List[str] = []
        for digest in sorted(self._records):
            record = self._records[digest]
            path = self._blob_path(digest)
            if not os.path.exists(path):
                problems.append(f"{digest[:12]}: blob file missing")
                continue
            with open(path, "rb") as fp:
                data = fp.read()
            if hashlib.sha256(data).hexdigest() != record.sha256:
                problems.append(f"{digest[:12]}: blob does not match sha256")
        if os.path.isdir(self._blob_dir):
            for name in sorted(os.listdir(self._blob_dir)):
                stem = name.rsplit(".pickle", 1)[0]
                if name.endswith(".pickle") and stem not in self._records:
                    problems.append(f"{stem[:12]}: orphan blob (no record)")
        return problems

    # -- the cache-through path --------------------------------------------

    def get_or_prepare(
        self,
        module: Module,
        key: WatermarkKey,
        watermark_bits: int,
        pieces: Optional[int] = None,
        piece_loss: Optional[float] = None,
        target_success: float = 0.99,
        max_steps: int = DEFAULT_MAX_STEPS,
        profile: bool = False,
        label: str = "",
        codec: str = "gcrt",
    ) -> Tuple[PreparedProgram, bool]:
        """(artifact, was_hit): load when stored, else prepare and store.

        The store-level analog of :meth:`~repro.pipeline.prepare.
        PrepareCache.get_or_prepare`; hits and misses feed the ambient
        metrics registry (``repro_store_requests_total``). A stored
        artifact that fails its integrity check is evicted and
        re-prepared rather than trusted.
        """
        # Normalize first ("hybrid" -> "hybrid-4", planner-sized
        # pieces -> the concrete count): the artifact's own
        # fingerprint uses the normalized forms, and the lookup digest
        # must agree with the address ``put`` stored it under — a
        # ``pieces=None`` lookup could otherwise never hit.
        codec = resolve_codec(codec).spec
        _, pieces = resolve_piece_count(
            watermark_bits, pieces, piece_loss, target_success, codec=codec
        )
        digest = prepare_fingerprint(
            module, key, watermark_bits, pieces, codec=codec
        )
        requests = get_registry().counter(
            "repro_store_requests_total", "Artifact store lookups"
        )
        if digest in self._records:
            try:
                artifact = self.load(digest)
            except StoreError:
                self.evict(digest)
            else:
                requests.inc(outcome="hit")
                return artifact, True
        requests.inc(outcome="miss")
        try:
            artifact = prepare(
                module,
                key,
                watermark_bits,
                pieces,
                piece_loss,
                target_success,
                max_steps=max_steps,
                profile=profile,
                codec=codec,
            )
        except PrepareError:
            raise  # nothing is stored for a failed preparation
        self.put(artifact, label=label)
        return artifact, False
