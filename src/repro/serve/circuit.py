"""A per-route circuit breaker for the serving daemon.

When a route's worker jobs start dying in a row — a poisoned artifact
that segfaults every worker, a pool that cannot be rebuilt, a machine
out of memory — continuing to queue requests onto it just burns the
queue and multiplies the damage. The breaker watches consecutive
failures per route and trips *open* after ``threshold`` of them: from
then on requests fail fast with ``503`` (plus a ``Retry-After`` hint)
without ever touching the pool. After ``reset_after`` seconds one
probe request is let through (*half-open*); its success closes the
circuit, its failure re-opens it for another full window.

The clock is injectable so tests drive the state machine with a fake
instead of sleeping through reset windows. State transitions feed the
ambient metrics registry
(``repro_http_circuit_transitions_total{route,state}``) — unless the
owner supplies ``on_transition``, which replaces the route-flavoured
telemetry entirely. That is how the fleet's per-worker health state
machine (:class:`~repro.serve.dispatch.HealthMonitor`) reuses these
exact semantics while reporting in worker vocabulary instead.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..obs.journal import emit as emit_event
from ..obs.metrics import get_registry

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker: closed -> open -> half-open -> ...

    ``allow()`` asks permission before dispatching; ``record_success``
    / ``record_failure`` report how the dispatch went. The breaker is
    not thread-safe by itself — the daemon drives it from its single
    event loop.
    """

    def __init__(
        self,
        threshold: int = 5,
        reset_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
        on_transition: Optional[Callable[[str], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be positive")
        if reset_after <= 0:
            raise ValueError("reset_after must be positive")
        self.threshold = threshold
        self.reset_after = reset_after
        self.name = name
        self._on_transition = on_transition
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed reset window."""
        if self._state == OPEN and self._window_elapsed():
            return HALF_OPEN
        return self._state

    @property
    def failures(self) -> int:
        return self._failures

    def _window_elapsed(self) -> bool:
        return self._clock() - self._opened_at >= self.reset_after

    def _transition(self, state: str) -> None:
        self._state = state
        if self._on_transition is not None:
            self._on_transition(state)
            return
        get_registry().counter(
            "repro_http_circuit_transitions_total",
            "Circuit breaker state transitions",
        ).inc(route=self.name or "-", state=state)
        emit_event("circuit", self.name or "-",
                   route=self.name or "-", state=state)

    def allow(self) -> bool:
        """May a request dispatch right now?

        In the open state this is the fast-fail path; once the reset
        window elapses exactly one caller gets True (the half-open
        probe) until its outcome is recorded.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN and self._window_elapsed():
            self._transition(HALF_OPEN)
            self._probing = True
            return True
        if self._state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._probing = False
        if self._state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._probing = False
        if self._state == HALF_OPEN:
            # The probe failed: back to a full open window.
            self._failures = self.threshold
            self._opened_at = self._clock()
            self._transition(OPEN)
            return
        self._failures += 1
        if self._state == CLOSED and self._failures >= self.threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (>= 0)."""
        if self._state == CLOSED:
            return 0.0
        return max(0.0, self._opened_at + self.reset_after - self._clock())
