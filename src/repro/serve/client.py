"""A resilient stdlib client for the fingerprinting daemon.

The other half of the daemon's backpressure contract: the server says
*when* to come back (``429``/``503`` + ``Retry-After``), this client
actually does so. Built on ``http.client`` only, retrying with the
same capped, seeded :class:`~repro.faults.retry.RetryPolicy` the batch
executor uses — when the server supplies ``Retry-After`` the client
honors it (taking the larger of the header and the policy's backoff),
otherwise the policy's jittered exponential schedule applies.

What retries: connection failures (daemon restarting), ``429``
(queue full), ``503`` (draining, circuit open, pool died). What does
not: every other status — ``400``/``404``/``422`` are the caller's
problem and ``504`` already cost a full request timeout, so hammering
it again unprompted is exactly what a loaded server does not need.

``sleep`` is injectable so tests assert on the produced schedule
instead of waiting through it::

    naps = []
    client = ServiceClient(url, retry=RetryPolicy(max_attempts=3),
                           sleep=naps.append)
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Callable, Dict, Optional, Tuple

from ..faults.retry import RetryPolicy

__all__ = ["ServiceClient", "ServiceError"]

#: Statuses worth retrying: the server explicitly said "later".
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(Exception):
    """The daemon answered with an error status (after any retries).

    ``status`` is the HTTP status; ``doc`` is the parsed JSON error
    body when there was one. ``retry_after`` carries the final
    response's ``Retry-After`` seconds when the server sent one (a 503
    circuit-open or 429 queue-full answer says *when* to come back) —
    callers scheduling their own requeue, like the fleet dispatcher,
    must honor the server's number instead of guessing with private
    backoff.
    """

    def __init__(self, status: int, message: str,
                 doc: Optional[Dict[str, Any]] = None,
                 retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.doc = doc or {}
        self.retry_after = retry_after


class ServiceClient:
    """Synchronous client: embed/recognize/health against one daemon.

    One instance per base URL; connections are per-request (the daemon
    closes after each response anyway). Retry behaviour is wholly
    owned by the ``retry`` policy — pass
    ``RetryPolicy(max_attempts=1)`` to disable retries.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"base_url must be http://host[:port], got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._sleep = sleep

    # -- transport ---------------------------------------------------------

    def _once(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                payload,
            )
        finally:
            conn.close()

    def request(
        self, method: str, path: str, doc: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One logical request, retried per the policy.

        Returns ``(status, parsed_body)`` for any non-retryable
        outcome (including error statuses — the typed helpers below
        decide what to raise). Exhausted retries return the last
        retryable status; a connection that never succeeds re-raises
        the last ``OSError``.
        """
        status, doc_out, _ = self.request_ex(method, path, doc)
        return status, doc_out

    def request_ex(
        self, method: str, path: str, doc: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """:meth:`request`, plus the final response's ``Retry-After``.

        The header used to vanish here: it fed the *internal* retry
        sleeps but was dropped from the exhausted-retries return, so a
        dispatcher requeueing the job fell back to its own backoff and
        hammered a server that had named its price. The third element
        is the last response's ``Retry-After`` in seconds (``None``
        when absent or unparseable).
        """
        body = (
            json.dumps(doc).encode() if doc is not None else None
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                status, headers, payload = self._once(method, path, body)
            except (OSError, http.client.HTTPException):
                if not self.retry.retries_left(attempt):
                    raise
                self._sleep(self.retry.delay(attempt))
                continue
            retry_after: Optional[float] = None
            header = headers.get("retry-after")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            if status in _RETRYABLE_STATUSES and self.retry.retries_left(
                attempt
            ):
                delay = self.retry.delay(attempt)
                if retry_after is not None:
                    delay = max(delay, retry_after)
                self._sleep(delay)
                continue
            return status, _parse_json(payload), retry_after

    # -- typed endpoints ---------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        status, doc = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, str(doc.get("error", "unhealthy")), doc)
        return doc

    def metrics(self) -> str:
        status, headers, payload = self._once("GET", "/metrics", None)
        if status != 200:
            raise ServiceError(status, "metrics unavailable")
        return payload.decode()

    def artifacts(self) -> Dict[str, Any]:
        status, doc = self.request("GET", "/v1/artifacts")
        if status != 200:
            raise ServiceError(status, str(doc.get("error", "")), doc)
        return doc

    def obs_events(
        self,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        route: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Tail the daemon's telemetry ring (``GET /v1/obs/events``)."""
        params: Dict[str, str] = {}
        if limit is not None:
            params["limit"] = str(limit)
        if kind is not None:
            params["kind"] = kind
        if name is not None:
            params["name"] = name
        if route is not None:
            params["route"] = route
        path = "/v1/obs/events"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        status, doc = self.request("GET", path)
        if status != 200:
            raise ServiceError(status, str(doc.get("error", "")), doc)
        return doc

    def obs_spans(self) -> Dict[str, Any]:
        """Recent trace trees (``GET /v1/obs/spans``)."""
        status, doc = self.request("GET", "/v1/obs/spans")
        if status != 200:
            raise ServiceError(status, str(doc.get("error", "")), doc)
        return doc

    def obs_slo(self) -> Dict[str, Any]:
        """The SLO engine's verdict (``GET /v1/obs/slo``)."""
        status, doc = self.request("GET", "/v1/obs/slo")
        if status != 200:
            raise ServiceError(status, str(doc.get("error", "")), doc)
        return doc

    def embed(
        self,
        artifact: str,
        copy_id: str,
        watermark: int,
        seed: int = 0,
        self_check: Optional[bool] = None,
        codec: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Mint one fingerprinted copy; returns the response document.

        ``codec`` overrides the artifact's redundancy scheme for this
        copy (e.g. ``"rs-8"``); recognition must then name the same
        codec.
        """
        doc: Dict[str, Any] = {
            "artifact": artifact,
            "copy_id": copy_id,
            "watermark": watermark,
            "seed": seed,
        }
        if self_check is not None:
            doc["self_check"] = self_check
        if codec is not None:
            doc["codec"] = codec
        status, out, retry_after = self.request_ex("POST", "/v1/embed", doc)
        if status != 200:
            raise ServiceError(
                status, str(out.get("error", "")), out,
                retry_after=retry_after,
            )
        return out

    def recognize(
        self,
        artifact: str,
        module_text: str,
        codec: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Recover a mark; 422 (incomplete recovery) is a result, not
        an error — check ``doc["complete"]``. ``codec`` must match the
        embedding codec when it overrode the artifact's default."""
        doc: Dict[str, Any] = {"artifact": artifact, "module": module_text}
        if codec is not None:
            doc["codec"] = codec
        status, out, retry_after = self.request_ex(
            "POST", "/v1/recognize", doc
        )
        if status not in (200, 422):
            raise ServiceError(
                status, str(out.get("error", "")), out,
                retry_after=retry_after,
            )
        return out


def _parse_json(payload: bytes) -> Dict[str, Any]:
    if not payload:
        return {}
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {"raw": payload.decode("utf-8", "replace")}
    return doc if isinstance(doc, dict) else {"raw": doc}
