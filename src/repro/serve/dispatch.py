"""Pluggable job dispatch: one pool, or a fleet of worker daemons.

The daemon and the CLI mint copies by submitting *jobs* — an HTTP-
shaped ``(route, payload)`` pair — to a :class:`Dispatcher`. Two
implementations share that contract:

* :class:`LocalDispatcher` — the existing in-process pool, wearing
  the protocol: jobs run on a ``ProcessPoolExecutor`` (or thread pool)
  via the same ``service_embed_copy``/``service_recognize`` entry
  points the daemon uses, fault plans and telemetry riding the pool
  initializer exactly as before.
* :class:`FleetDispatcher` — the scale-out path: jobs route to N
  worker daemons over the existing :class:`~repro.serve.client.
  ServiceClient` HTTP transport. A poller loop assigns queued jobs to
  the least-loaded worker with a free slot (**bounded in-flight per
  worker** — a worker advertises its capacity and is never handed
  more), invokes **per-job success/error callbacks**, **requeues on
  worker loss** under the shared seeded :class:`~repro.faults.retry.
  RetryPolicy` (honoring a 503's ``Retry-After`` over private
  backoff), and **load-sheds by route priority** when every worker is
  saturated and the backlog hits its bound — recognitions (the
  evidence path) outlive embeds (re-mintable at leisure).

Determinism: the dispatcher adds no randomness of its own beyond the
retry policy's seeded jitter. Job identity, payloads, and results are
caller-owned; completion *order* under a fleet is inherently racy,
which is why callers that need stable output (the campaign runner,
``run_batch``) sort by job key after the fact.

The fleet is **self-healing**: a :class:`HealthMonitor` drives a
per-worker state machine (``healthy → suspect → ejected → half-open
probe → readmitted``) off the same circuit-breaker semantics the
daemon uses per route (:mod:`repro.serve.circuit`), fed by a
background ``/healthz`` prober on a seeded-jitter interval *and* by
passive send outcomes. An ejected worker stops receiving jobs and its
in-flight jobs are immediately re-planned onto live peers; when every
worker is ejected the dispatcher browns out — submissions fail fast
with :class:`DispatchOverload` (a 503 + ``Retry-After`` at the
front-end) instead of building an unservable queue.

The transport declares :mod:`repro.faults` sites — ``fleet.send``,
keyed by worker name, and ``fleet.probe`` for the health prober — so
worker loss is injectable: a pinned :class:`~repro.faults.FaultPlan`
can kill the first K sends to one worker (or every probe) and a test
can watch the requeue/ejection machinery recover.
"""

from __future__ import annotations

import heapq
import itertools
import json
import random
import threading
import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from .. import faults, obs
from ..faults.retry import RetryPolicy
from ..obs.metrics import get_registry
from ..pipeline.batch import CopySpec, service_embed_copy, service_recognize
from .circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .client import ServiceClient, ServiceError

__all__ = [
    "Dispatcher",
    "DispatchOverload",
    "FleetDispatcher",
    "HealthMonitor",
    "Job",
    "LocalDispatcher",
    "ROUTE_PRIORITY",
    "WORKER_EJECTED",
    "WORKER_HEALTHY",
    "WORKER_PROBING",
    "WORKER_STATE_CODES",
    "WORKER_SUSPECT",
    "WorkerSpec",
    "load_workers",
]

#: Load-shed order: higher sheds later. Recognition requests carry
#: evidence that may not be reproducible (an attacked copy in hand);
#: an embed can always be re-minted from the artifact.
ROUTE_PRIORITY: Dict[str, int] = {
    "/v1/recognize": 2,
    "/v1/embed": 1,
}


class DispatchOverload(Exception):
    """Every worker is saturated and the pending queue is full.

    ``retry_after`` is the dispatcher's advice, in seconds — the
    daemon forwards it as a 503 ``Retry-After`` so well-behaved
    clients (ours honors it) back off instead of hammering.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class Job:
    """One unit of fleet work: an HTTP-shaped request plus callbacks.

    ``priority`` defaults from :data:`ROUTE_PRIORITY`; higher values
    survive load-shed longer. ``on_success``/``on_error`` fire on the
    dispatcher's worker threads (keep them cheap — flip a flag, append
    to a list); the returned future carries the same outcome for
    callers that prefer awaiting.
    """

    route: str
    payload: Dict[str, Any]
    job_id: str = ""
    priority: Optional[int] = None
    on_success: Optional[Callable[["Job", Dict[str, Any]], None]] = None
    on_error: Optional[Callable[["Job", BaseException], None]] = None
    attempts: int = 0
    worker: str = ""
    future: "Future[Dict[str, Any]]" = field(default_factory=Future)
    _resolved: bool = field(default=False, repr=False, compare=False)
    _resolve_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.priority is None:
            self.priority = ROUTE_PRIORITY.get(self.route, 0)

    def _claim(self) -> bool:
        """Take the one-and-only right to resolve this job.

        Exactly-once matters under self-healing: an ejection re-plans
        a worker's in-flight jobs, so a straggler send and its
        replacement can both come back with an outcome. Whichever
        claims first wins; the loser is a no-op — callbacks never fire
        twice and the future settles once.
        """
        with self._resolve_lock:
            if self._resolved:
                return False
            self._resolved = True
            return True

    def _succeed(self, doc: Dict[str, Any]) -> bool:
        if not self._claim():
            return False
        if self.on_success is not None:
            self.on_success(self, doc)
        if not self.future.done():
            self.future.set_result(doc)
        return True

    def _fail(self, exc: BaseException) -> bool:
        if not self._claim():
            return False
        if self.on_error is not None:
            self.on_error(self, exc)
        if not self.future.done():
            self.future.set_exception(exc)
        return True


class Dispatcher(Protocol):
    """What the daemon and CLI require of a job dispatcher."""

    def submit(self, job: Job) -> "Future[Dict[str, Any]]":
        """Enqueue a job; the future resolves to the response body."""
        ...

    def stats(self) -> Dict[str, Any]:
        """A snapshot for gauges/introspection (shape is impl-owned)."""
        ...

    def close(self) -> None:
        """Stop accepting work and release resources."""
        ...


# ---------------------------------------------------------------------------
# Local: the pre-fleet process pool behind the protocol
# ---------------------------------------------------------------------------


class LocalDispatcher:
    """Jobs run in this process's pool — the PR-4 serving path.

    ``pool`` is caller-owned when provided (the daemon already builds
    one with fault-plan/telemetry initializers); otherwise a thread
    pool of ``workers`` is created and owned here. Payloads are the
    same documents the HTTP API accepts, with ``artifact`` already a
    full digest.
    """

    def __init__(
        self,
        store_root: str,
        pool: Optional[Executor] = None,
        workers: int = 2,
    ):
        self.store_root = store_root
        self._own_pool = pool is None
        self._pool: Executor = pool or ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-dispatch"
        )
        self._submitted = 0
        self._lock = threading.Lock()

    def _run(self, job: Job) -> Dict[str, Any]:
        payload = job.payload
        if job.route not in ("/v1/embed", "/v1/recognize"):
            raise ValueError(f"no local handler for route {job.route!r}")
        digest = str(payload["artifact"])
        codec = payload.get("codec")
        if job.route == "/v1/embed":
            spec = CopySpec(
                copy_id=str(payload["copy_id"]),
                watermark=int(payload["watermark"]),
                seed=int(payload.get("seed", 0)),
            )
            result = service_embed_copy(
                self.store_root, digest, spec,
                self_check=bool(payload.get("self_check", True)),
                codec=codec,
            )
            return {
                "copy_id": result.copy_id,
                "artifact": digest,
                "ok": result.ok,
                "verified": result.verified,
                "wall_seconds": result.wall_seconds,
                "module": result.text,
            }
        if job.route == "/v1/recognize":
            return service_recognize(
                self.store_root, digest, str(payload["module"]),
                codec=codec,
            )
        raise ValueError(f"no local handler for route {job.route!r}")

    def submit(self, job: Job) -> "Future[Dict[str, Any]]":
        with self._lock:
            self._submitted += 1
        inner = self._pool.submit(self._run, job)

        def _done(f: "Future[Dict[str, Any]]") -> None:
            exc = f.exception()
            if exc is None:
                job._succeed(f.result())
            else:
                job._fail(exc)

        inner.add_done_callback(_done)
        return job.future

    def stats(self) -> Dict[str, Any]:
        return {"mode": "local", "submitted": self._submitted}

    def close(self) -> None:
        if self._own_pool:
            self._pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Fleet: N worker daemons behind ServiceClient
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """One worker daemon: where it is and how much it can hold.

    ``capacity`` is the in-flight bound — set it to the worker's
    ``--workers`` count so the fleet never out-queues a worker's own
    admission ceiling (jobs waiting here can still be re-planned;
    jobs queued *on* a saturated worker cannot).
    """

    name: str
    url: str
    capacity: int = 2

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "WorkerSpec":
        if not isinstance(doc.get("name"), str) or not doc["name"]:
            raise ValueError("worker entry needs a non-empty 'name'")
        if not isinstance(doc.get("url"), str):
            raise ValueError(f"worker {doc['name']!r} needs a 'url'")
        capacity = doc.get("capacity", 2)
        if isinstance(capacity, bool) or not isinstance(capacity, int) \
                or capacity < 1:
            raise ValueError(
                f"worker {doc['name']!r} capacity must be a positive int"
            )
        return WorkerSpec(doc["name"], doc["url"], capacity)


def load_workers(path: str) -> List[WorkerSpec]:
    """Parse a ``workers.json`` fleet file: ``{"workers": [...]}``."""
    with open(path) as fp:
        doc = json.load(fp)
    entries = doc.get("workers") if isinstance(doc, dict) else None
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path!r} must hold a non-empty 'workers' list")
    specs = [WorkerSpec.from_dict(e) for e in entries]
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate worker names in {path!r}")
    return specs


# ---------------------------------------------------------------------------
# Health: per-worker probes, ejection, readmission
# ---------------------------------------------------------------------------

WORKER_HEALTHY = "healthy"
WORKER_SUSPECT = "suspect"
WORKER_PROBING = "probing"
WORKER_EJECTED = "ejected"

#: Gauge encoding for ``repro_fleet_worker_state``.
WORKER_STATE_CODES: Dict[str, int] = {
    WORKER_HEALTHY: 0,
    WORKER_SUSPECT: 1,
    WORKER_PROBING: 2,
    WORKER_EJECTED: 3,
}

_WORKER_STATE_HELP = (
    "Fleet worker health (0 healthy, 1 suspect, 2 probing, 3 ejected)"
)


class HealthMonitor:
    """Per-worker health from active ``/healthz`` probes + passive sends.

    One :class:`~repro.serve.circuit.CircuitBreaker` per worker reuses
    the daemon's per-route circuit semantics for the worker life
    cycle::

        healthy ──(eject_threshold consecutive failures)──► ejected
        ejected ──(readmit_after elapses)──► probing (half-open)
        probing ──(one probe succeeds)──► healthy (readmitted)
        probing ──(the probe fails)──► ejected (another full window)

    with ``suspect`` the closed-but-bruised shade in between: at least
    one consecutive failure, threshold not yet reached. Failure
    signals arrive from two directions — a background prober hits each
    worker's ``/healthz`` on a seeded-jitter interval (the
    ``fleet.probe`` fault site lets tests stall or kill probes
    deterministically), and the dispatcher reports every send outcome
    via :meth:`record_send`, so a dying worker is caught between probe
    ticks too.

    State *changes* set the ``repro_fleet_worker_state`` gauge and
    emit ``fleet.worker`` journal events, and the owner's
    ``on_eject``/``on_readmit`` hooks fire **outside** the monitor
    lock: the dispatcher's hooks take its own lock, and keeping the
    two locks un-nested in this direction makes the dispatcher→monitor
    call ordering deadlock-free.

    The monitor is usable standalone: docs and tests drive it with a
    fake ``probe`` callable and ``clock`` and never call
    :meth:`start`.
    """

    def __init__(
        self,
        workers: List[WorkerSpec],
        probe: Callable[[WorkerSpec], None],
        eject_threshold: int = 3,
        readmit_after: float = 5.0,
        probe_interval: float = 1.0,
        probe_jitter: float = 0.25,
        seed: int = 2004,
        on_eject: Optional[Callable[[str], None]] = None,
        on_readmit: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if not 0.0 <= probe_jitter < 1.0:
            raise ValueError("probe_jitter must be in [0, 1)")
        self.workers = list(workers)
        self.probe_interval = probe_interval
        self.probe_jitter = probe_jitter
        self._probe = probe
        self._rng = random.Random(seed)
        self._on_eject = on_eject
        self._on_readmit = on_readmit
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {
            w.name: CircuitBreaker(
                threshold=eject_threshold,
                reset_after=readmit_after,
                clock=clock,
                name=w.name,
                # Worker transitions are reported below in worker
                # vocabulary; suppress the route-flavoured telemetry.
                on_transition=lambda state: None,
            )
            for w in self.workers
        }
        self._reported = {w.name: WORKER_HEALTHY for w in self.workers}
        self._ejections = 0
        self._readmissions = 0
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        gauge = get_registry().gauge(
            "repro_fleet_worker_state", _WORKER_STATE_HELP
        )
        for w in self.workers:
            gauge.set(WORKER_STATE_CODES[WORKER_HEALTHY], worker=w.name)

    # -- life cycle --------------------------------------------------------

    def start(self) -> None:
        """Start the background prober (idempotent)."""
        if self._prober is not None:
            return
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-fleet-prober", daemon=True
        )
        self._prober.start()

    def stop(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(timeout=5.0)
            self._prober = None

    # -- queries -----------------------------------------------------------

    def available(self, worker: str) -> bool:
        """May the dispatcher hand this worker a job right now?

        Only a closed breaker takes traffic: an ejected worker's
        half-open slot is spent on a health probe, never a real job.
        """
        with self._lock:
            return self._breakers[worker].state == CLOSED

    def any_available(self) -> bool:
        with self._lock:
            return any(b.state == CLOSED for b in self._breakers.values())

    def retry_after(self) -> float:
        """Seconds until the fleet could take work again (brownout hint)."""
        with self._lock:
            return min(b.retry_after() for b in self._breakers.values())

    def state(self, worker: str) -> str:
        with self._lock:
            return self._derived(self._breakers[worker])

    def states(self) -> Dict[str, str]:
        """Live derived state per worker (for stats/healthz/CLI)."""
        with self._lock:
            return {
                name: self._derived(breaker)
                for name, breaker in self._breakers.items()
            }

    @property
    def ejections(self) -> int:
        with self._lock:
            return self._ejections

    @property
    def readmissions(self) -> int:
        with self._lock:
            return self._readmissions

    # -- signals -----------------------------------------------------------

    def record_send(self, worker: str, ok: bool) -> None:
        """Passive signal from the dispatcher: how a real send went."""
        self._signal(worker, ok, "send")

    def probe_all(self) -> None:
        """One synchronous probe sweep — the loop body, also the
        entry point for tests/docs driving the monitor by hand."""
        for spec in self.workers:
            if self._stop.is_set():
                return
            self.probe_one(spec)

    def probe_one(self, spec: WorkerSpec) -> None:
        with self._lock:
            breaker = self._breakers[spec.name]
            if breaker.state == OPEN:
                return  # mid-window: too early for the half-open probe
            if breaker.state == HALF_OPEN and not breaker.allow():
                return  # another probe already owns the half-open slot
        try:
            faults.check("fleet.probe", worker=spec.name)
            self._probe(spec)
        except (OSError, faults.FaultError, ServiceError) as exc:
            self._signal(spec.name, False, f"probe: {exc}")
        else:
            self._signal(spec.name, True, "probe")

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _derived(breaker: CircuitBreaker) -> str:
        state = breaker.state
        if state == OPEN:
            return WORKER_EJECTED
        if state == HALF_OPEN:
            return WORKER_PROBING
        if breaker.failures > 0:
            return WORKER_SUSPECT
        return WORKER_HEALTHY

    def _signal(self, worker: str, ok: bool, reason: str) -> None:
        with self._lock:
            breaker = self._breakers[worker]
            before = self._reported[worker]
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()
            after = self._derived(breaker)
            if after == before:
                return
            self._reported[worker] = after
            readmitted = (
                before in (WORKER_EJECTED, WORKER_PROBING)
                and after in (WORKER_HEALTHY, WORKER_SUSPECT)
            )
            if after == WORKER_EJECTED:
                self._ejections += 1
            if readmitted:
                self._readmissions += 1
        # Telemetry and hooks run after the lock is released; hooks
        # may take the dispatcher's lock (requeueing, notifying).
        get_registry().gauge(
            "repro_fleet_worker_state", _WORKER_STATE_HELP
        ).set(WORKER_STATE_CODES[after], worker=worker)
        obs.emit(
            "fleet.worker", worker,
            worker=worker, state=after, previous=before,
            readmitted=readmitted, reason=reason,
        )
        if after == WORKER_EJECTED and self._on_eject is not None:
            self._on_eject(worker)
        if readmitted and self._on_readmit is not None:
            self._on_readmit(worker)

    def _probe_loop(self) -> None:
        while not self._stop.wait(self._next_delay()):
            self.probe_all()

    def _next_delay(self) -> float:
        """Seeded jitter keeps a fleet of probers from phase-locking."""
        if self.probe_jitter <= 0.0:
            return self.probe_interval
        spread = self._rng.uniform(-self.probe_jitter, self.probe_jitter)
        return self.probe_interval * (1.0 + spread)


class FleetDispatcher:
    """Route jobs to worker daemons; survive the daemons misbehaving.

    One poller thread owns the queue: it wakes on submissions,
    completions and requeue deadlines, and hands the highest-priority
    *ready* job to the least-loaded worker with a free slot. Sends run
    on a thread pool sized to the fleet's total capacity (they block
    on HTTP). The per-request ``ServiceClient`` retry is disabled
    (``max_attempts=1``): the dispatcher owns retries, because only it
    can requeue to a *different* worker.

    Failure handling per send:

    * connection loss / 429 / 503 — worker loss or saturation: the
      job requeues with delay ``max(policy backoff, server
      Retry-After)`` until the policy's attempts run out, then fails.
    * any other error status — the job is wrong, not the worker:
      fails immediately (no requeue).

    When the pending queue reaches ``max_pending``, the
    lowest-priority job (submission order breaking ties, newest
    first) is shed with :class:`DispatchOverload`.

    With ``eject=True`` (the default) a :class:`HealthMonitor` rides
    along: ejected workers are skipped by assignment, their in-flight
    jobs immediately re-planned onto live peers, and a fleet-wide
    brownout (every worker ejected) fast-fails submissions with
    :class:`DispatchOverload` instead of letting the queue build up
    against nobody. ``eject=False`` restores the old behavior — every
    routed job burns its full retry budget against a dead worker —
    and exists mostly so ``benchmarks/chaos_soak.py --no-eject`` can
    prove the difference.
    """

    def __init__(
        self,
        workers: List[WorkerSpec],
        retry: Optional[RetryPolicy] = None,
        poll_interval: float = 0.05,
        max_pending: int = 256,
        request_timeout: float = 60.0,
        client_factory: Optional[Callable[[WorkerSpec], ServiceClient]] = None,
        eject: bool = True,
        probe_interval: float = 1.0,
        probe_timeout: float = 2.0,
        eject_threshold: int = 3,
        readmit_after: float = 5.0,
        health_seed: int = 2004,
    ):
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.workers = list(workers)
        self.retry = retry or RetryPolicy()
        self.poll_interval = poll_interval
        self.max_pending = max_pending
        if client_factory is None:
            def client_factory(spec: WorkerSpec) -> ServiceClient:
                return ServiceClient(
                    spec.url, timeout=request_timeout,
                    retry=RetryPolicy(max_attempts=1),
                )
        self._clients = {w.name: client_factory(w) for w in self.workers}
        self._in_flight = {w.name: 0 for w in self.workers}
        self._capacity = {w.name: w.capacity for w in self.workers}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        # Entries: (-priority, seq, not_before, job). Heap order is
        # priority-first so shedding pops from the *back* conceptually;
        # readiness (not_before) is checked at assignment time.
        self._pending: List[Tuple[int, int, float, Job]] = []
        self._seq = itertools.count()
        # Assignment tokens per worker, keyed by id(job): an ejection
        # clears a worker's map, so a straggler send coming back with
        # a stale token knows its books were already settled.
        self._assigned: Dict[str, Dict[int, Tuple[Job, int]]] = {
            w.name: {} for w in self.workers
        }
        self._completed = 0
        self._errors = 0
        self._shed = 0
        self._requeues = 0
        self._brownouts = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=sum(w.capacity for w in self.workers),
            thread_name_prefix="repro-fleet",
        )
        self._poller = threading.Thread(
            target=self._poll_loop, name="repro-fleet-poller", daemon=True
        )
        self._poller.start()
        self._monitor: Optional[HealthMonitor] = None
        if eject:
            self._probe_clients = {
                w.name: ServiceClient(
                    w.url, timeout=probe_timeout,
                    retry=RetryPolicy(max_attempts=1),
                )
                for w in self.workers
            }
            self._monitor = HealthMonitor(
                self.workers,
                probe=self._probe_worker,
                eject_threshold=eject_threshold,
                readmit_after=readmit_after,
                probe_interval=probe_interval,
                seed=health_seed,
                on_eject=self._eject_worker,
                on_readmit=self._readmit_worker,
            )
            self._monitor.start()

    @property
    def monitor(self) -> Optional[HealthMonitor]:
        return self._monitor

    # -- public surface ----------------------------------------------------

    def submit(self, job: Job) -> "Future[Dict[str, Any]]":
        monitor = self._monitor
        if monitor is not None and not monitor.any_available():
            # Fleet-wide brownout: every worker is ejected. Queueing
            # would only build a backlog nobody can serve — degrade to
            # an immediate overload with the earliest readmission as
            # the Retry-After hint.
            retry_after = max(monitor.retry_after(), self.poll_interval)
            with self._wake:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                self._brownouts += 1
                if not job.job_id:
                    job.job_id = f"job-{next(self._seq)}"
            get_registry().counter(
                "repro_fleet_brownouts_total",
                "Submissions fast-failed while every worker was ejected",
            ).inc(route=job.route)
            obs.emit(
                "fleet.dispatch", job.job_id,
                route=job.route, outcome="brownout",
                retry_after=retry_after,
            )
            job._fail(DispatchOverload(
                f"fleet brownout: all {len(self.workers)} workers ejected",
                retry_after=retry_after,
            ))
            return job.future
        with self._wake:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            if len(self._pending) >= self.max_pending:
                self._shed_one(job)
                if job.future.done():
                    return job.future
            if not job.job_id:
                job.job_id = f"job-{next(self._seq)}"
            heapq.heappush(
                self._pending,
                (-int(job.priority or 0), next(self._seq), 0.0, job),
            )
            self._wake.notify()
        return job.future

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            doc: Dict[str, Any] = {
                "mode": "fleet",
                "pending": len(self._pending),
                "in_flight": dict(self._in_flight),
                "completed": self._completed,
                "errors": self._errors,
                "shed": self._shed,
                "requeues": self._requeues,
                "brownouts": self._brownouts,
            }
        monitor = self._monitor
        if monitor is not None:
            doc["workers"] = monitor.states()
            doc["ejections"] = monitor.ejections
            doc["readmissions"] = monitor.readmissions
        return doc

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until the queue and every in-flight slot are empty.

        Returns False without waiting once :meth:`close` has run —
        a closed dispatcher will never drain, it already failed its
        queue.
        """
        deadline = time.monotonic() + timeout
        with self._wake:
            if self._closed:
                return False
            while self._pending or any(self._in_flight.values()):
                if self._closed:
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wake.wait(min(remaining, self.poll_interval))
        return True

    def close(self) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            abandoned = [entry[3] for entry in self._pending]
            self._pending.clear()
            self._wake.notify_all()
        if self._monitor is not None:
            self._monitor.stop()
        for job in abandoned:
            job._fail(DispatchOverload("dispatcher closed", retry_after=0.0))
        self._poller.join(timeout=5.0)
        self._pool.shutdown(wait=True)

    # -- internals ---------------------------------------------------------

    def _shed_one(self, incoming: Job) -> None:
        """Queue full: drop the least important job (maybe the new one).

        The victim is the lowest-priority entry; among equals the
        *newest* goes — older jobs have waited longest and are closest
        to service (FIFO fairness under shed).
        """
        candidates = self._pending + [
            (-int(incoming.priority or 0), next(self._seq), 0.0, incoming)
        ]
        victim_entry = max(candidates, key=lambda e: (e[0], e[1]))
        if victim_entry[3] is not incoming:
            # Only evict the loser here; the caller pushes the
            # incoming job through its normal path. (Pushing it here
            # too used to double-enqueue the job: the duplicate entry
            # inflated the queue and could be shed — or sent — twice.)
            self._pending.remove(victim_entry)
            heapq.heapify(self._pending)
        victim = victim_entry[3]
        self._shed += 1
        get_registry().counter(
            "repro_fleet_shed_total", "Jobs load-shed by the dispatcher"
        ).inc(route=victim.route)
        obs.emit(
            "fleet.dispatch", victim.job_id or "unassigned",
            route=victim.route, outcome="shed", priority=victim.priority,
        )
        victim._fail(DispatchOverload(
            f"fleet saturated ({self.max_pending} pending); "
            f"{victim.route} shed", retry_after=self.poll_interval * 10,
        ))

    def _pick_worker(self) -> Optional[str]:
        """Least-loaded *available* worker with a free slot.

        Ejected workers are invisible here; their only traffic until
        readmission is the monitor's half-open health probe.
        """
        monitor = self._monitor
        best: Optional[str] = None
        best_load = 10**9
        for spec in self.workers:
            if monitor is not None and not monitor.available(spec.name):
                continue
            load = self._in_flight[spec.name]
            if load < self._capacity[spec.name] and load < best_load:
                best, best_load = spec.name, load
        return best

    def _poll_loop(self) -> None:
        while True:
            with self._wake:
                if self._closed:
                    return
                now = time.monotonic()
                entry, next_ready = self._next_ready(now)
                if entry is None:
                    if next_ready is not None:
                        # Everything pending is parked on a requeue
                        # delay: sleep until the earliest one comes
                        # due (submissions still notify us awake).
                        self._wake.wait(max(0.0, next_ready - now))
                    else:
                        self._wake.wait(self.poll_interval)
                    continue
                worker = self._pick_worker()
                if worker is None:
                    # All slots busy (or every worker ejected): put it
                    # back, wait for a completion or readmission.
                    heapq.heappush(self._pending, entry)
                    self._wake.wait(self.poll_interval)
                    continue
                job = entry[3]
                self._in_flight[worker] += 1
                token = next(self._seq)
                self._assigned[worker][id(job)] = (job, token)
            self._pool.submit(self._send, job, worker, token)

    def _next_ready(
        self, now: float
    ) -> Tuple[Optional[Tuple[int, int, float, Job]], Optional[float]]:
        """Pop the best ready entry; also report the earliest deferred
        ``not_before`` so the poller can sleep exactly that long.

        Entries whose job already resolved elsewhere — shed while
        parked, failed by ``close``, or finished by a straggler send
        after an ejection re-planned it — are discarded on the way
        through.
        """
        deferred: List[Tuple[int, int, float, Job]] = []
        picked: Optional[Tuple[int, int, float, Job]] = None
        while self._pending:
            entry = heapq.heappop(self._pending)
            if entry[3]._resolved:
                continue
            if entry[2] <= now:
                picked = entry
                break
            deferred.append(entry)
        for entry in deferred:
            heapq.heappush(self._pending, entry)
        earliest = min((e[2] for e in deferred), default=None)
        return picked, earliest

    def _send(self, job: Job, worker: str, token: int) -> None:
        job.attempts += 1
        job.worker = worker
        started = time.monotonic()
        try:
            faults.check("fleet.send", worker=worker, route=job.route)
            status, doc, retry_after = self._clients[worker].request_ex(
                "POST", job.route, job.payload
            )
        except (OSError, faults.FaultError) as exc:
            self._after_send(job, worker, started, token, error=exc,
                            retry_after=None)
            return
        if status in (429, 503):
            exc = ServiceError(
                status, str(doc.get("error", "worker saturated")), doc,
                retry_after=retry_after,
            )
            self._after_send(job, worker, started, token, error=exc,
                            retry_after=retry_after)
            return
        if status not in (200, 422):
            self._after_send(
                job, worker, started, token, fatal=ServiceError(
                    status, str(doc.get("error", "")), doc,
                    retry_after=retry_after,
                ),
            )
            return
        self._after_send(job, worker, started, token, result=doc)

    def _after_send(
        self,
        job: Job,
        worker: str,
        started: float,
        token: int,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[BaseException] = None,
        fatal: Optional[BaseException] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        seconds = time.monotonic() - started
        registry = get_registry()
        requeued = False
        superseded = False
        with self._wake:
            self._in_flight[worker] -= 1
            current = self._assigned[worker].get(id(job))
            superseded = current is None or current[1] != token
            if not superseded:
                del self._assigned[worker][id(job)]
                if error is not None and self.retry.retries_left(job.attempts):
                    delay = self.retry.delay(job.attempts)
                    if retry_after is not None:
                        # The worker named its price (503 Retry-After
                        # from an open circuit); honor it over private
                        # backoff.
                        delay = max(delay, retry_after)
                    self._requeues += 1
                    requeued = True
                    heapq.heappush(
                        self._pending,
                        (-int(job.priority or 0), next(self._seq),
                         time.monotonic() + delay, job),
                    )
                elif error is None and fatal is None:
                    self._completed += 1
                else:
                    self._errors += 1
            self._wake.notify()
        # Resolve the job before any telemetry: a metrics/journal
        # hiccup must never leave a caller waiting on the future.
        if superseded:
            # An ejection re-planned this job while the send was in
            # the air; its failure was accounted for then. A straggler
            # that actually *finished* the work still gets to resolve
            # the job — exactly-once claiming makes the race harmless,
            # and the re-planned pending copy is discarded by
            # ``_next_ready`` once the future is seen resolved.
            outcome = "superseded"
            if result is not None and job._succeed(result):
                outcome = "ok"
                with self._lock:
                    self._completed += 1
        else:
            outcome = (
                "ok" if result is not None
                else "requeued" if requeued
                else "error"
            )
            if result is not None:
                job._succeed(result)
            elif requeued:
                pass  # the poller will try again after the delay
            elif fatal is not None:
                job._fail(fatal)
            else:
                assert error is not None
                job._fail(error)
        registry.histogram(
            "repro_fleet_dispatch_seconds",
            "Wall time of one fleet send (submit to response)",
        ).observe(seconds, worker=worker, route=job.route)
        registry.counter(
            "repro_fleet_jobs_total", "Fleet jobs by outcome"
        ).inc(worker=worker, route=job.route, outcome=outcome)
        for spec in self.workers:
            registry.gauge(
                "repro_fleet_worker_inflight",
                "Jobs currently executing on each fleet worker",
            ).set(self._in_flight[spec.name], worker=spec.name)
        obs.emit(
            "fleet.dispatch", job.job_id,
            route=job.route, worker=worker, outcome=outcome,
            seconds=seconds, attempt=job.attempts,
        )
        # Passive health signal, after all books are settled: the
        # monitor's eject hook takes the dispatcher lock, so it must
        # not run while this thread holds it.
        monitor = self._monitor
        if monitor is not None:
            if error is None:
                alive = True  # a real response, success or fatal status
            elif isinstance(error, ServiceError) and error.status == 429:
                alive = True  # saturated is busy, not sick: it answered
            else:
                alive = False  # connection loss, injected fault, or 503
            monitor.record_send(worker, alive)

    # -- health integration ------------------------------------------------

    def _probe_worker(self, spec: WorkerSpec) -> None:
        """Active probe: GET the worker's /healthz, drain-aware.

        A worker that answers but reports a non-``ok`` status (e.g.
        ``draining`` during graceful shutdown) counts as unhealthy —
        it is about to 503 real jobs anyway, so stop routing to it
        now instead of flapping through its drain window.
        """
        status, doc, _ = self._probe_clients[spec.name].request_ex(
            "GET", "/healthz"
        )
        if status != 200:
            raise ServiceError(
                status, str(doc.get("error", "unhealthy")), doc
            )
        reported = doc.get("status", "ok")
        if reported != "ok":
            raise ServiceError(503, f"worker reports {reported!r}", doc)

    def _eject_worker(self, worker: str) -> None:
        """Eject hook: re-plan everything in flight on that worker.

        The straggler sends themselves cannot be recalled (an HTTP
        read has no abort), but their assignment tokens are
        invalidated so whatever they report is ignored — except a
        late *success*, which still resolves the job exactly once.
        """
        requeued: List[Job] = []
        with self._wake:
            if self._closed:
                return
            orphans = list(self._assigned[worker].values())
            self._assigned[worker].clear()
            for job, _token in orphans:
                if job._resolved:
                    continue
                self._requeues += 1
                heapq.heappush(
                    self._pending,
                    (-int(job.priority or 0), next(self._seq), 0.0, job),
                )
                requeued.append(job)
            if requeued:
                self._wake.notify()
        for job in requeued:
            obs.emit(
                "fleet.dispatch", job.job_id,
                route=job.route, worker=worker, outcome="requeued",
                reason="worker-ejected", attempt=job.attempts,
            )

    def _readmit_worker(self, worker: str) -> None:
        """Readmit hook: a worker came back — wake the poller."""
        with self._wake:
            self._wake.notify()
