"""Pluggable job dispatch: one pool, or a fleet of worker daemons.

The daemon and the CLI mint copies by submitting *jobs* — an HTTP-
shaped ``(route, payload)`` pair — to a :class:`Dispatcher`. Two
implementations share that contract:

* :class:`LocalDispatcher` — the existing in-process pool, wearing
  the protocol: jobs run on a ``ProcessPoolExecutor`` (or thread pool)
  via the same ``service_embed_copy``/``service_recognize`` entry
  points the daemon uses, fault plans and telemetry riding the pool
  initializer exactly as before.
* :class:`FleetDispatcher` — the scale-out path: jobs route to N
  worker daemons over the existing :class:`~repro.serve.client.
  ServiceClient` HTTP transport. A poller loop assigns queued jobs to
  the least-loaded worker with a free slot (**bounded in-flight per
  worker** — a worker advertises its capacity and is never handed
  more), invokes **per-job success/error callbacks**, **requeues on
  worker loss** under the shared seeded :class:`~repro.faults.retry.
  RetryPolicy` (honoring a 503's ``Retry-After`` over private
  backoff), and **load-sheds by route priority** when every worker is
  saturated and the backlog hits its bound — recognitions (the
  evidence path) outlive embeds (re-mintable at leisure).

Determinism: the dispatcher adds no randomness of its own beyond the
retry policy's seeded jitter. Job identity, payloads, and results are
caller-owned; completion *order* under a fleet is inherently racy,
which is why callers that need stable output (the campaign runner,
``run_batch``) sort by job key after the fact.

The transport declares a :mod:`repro.faults` site — ``fleet.send``,
keyed by worker name — so worker loss is injectable: a pinned
:class:`~repro.faults.FaultPlan` can kill the first K sends to one
worker and a test can watch the requeue machinery recover.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from .. import faults, obs
from ..faults.retry import RetryPolicy
from ..obs.metrics import get_registry
from ..pipeline.batch import CopySpec, service_embed_copy, service_recognize
from .client import ServiceClient, ServiceError

__all__ = [
    "Dispatcher",
    "DispatchOverload",
    "FleetDispatcher",
    "Job",
    "LocalDispatcher",
    "ROUTE_PRIORITY",
    "WorkerSpec",
    "load_workers",
]

#: Load-shed order: higher sheds later. Recognition requests carry
#: evidence that may not be reproducible (an attacked copy in hand);
#: an embed can always be re-minted from the artifact.
ROUTE_PRIORITY: Dict[str, int] = {
    "/v1/recognize": 2,
    "/v1/embed": 1,
}


class DispatchOverload(Exception):
    """Every worker is saturated and the pending queue is full.

    ``retry_after`` is the dispatcher's advice, in seconds — the
    daemon forwards it as a 503 ``Retry-After`` so well-behaved
    clients (ours honors it) back off instead of hammering.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class Job:
    """One unit of fleet work: an HTTP-shaped request plus callbacks.

    ``priority`` defaults from :data:`ROUTE_PRIORITY`; higher values
    survive load-shed longer. ``on_success``/``on_error`` fire on the
    dispatcher's worker threads (keep them cheap — flip a flag, append
    to a list); the returned future carries the same outcome for
    callers that prefer awaiting.
    """

    route: str
    payload: Dict[str, Any]
    job_id: str = ""
    priority: Optional[int] = None
    on_success: Optional[Callable[["Job", Dict[str, Any]], None]] = None
    on_error: Optional[Callable[["Job", BaseException], None]] = None
    attempts: int = 0
    worker: str = ""
    future: "Future[Dict[str, Any]]" = field(default_factory=Future)

    def __post_init__(self) -> None:
        if self.priority is None:
            self.priority = ROUTE_PRIORITY.get(self.route, 0)

    def _succeed(self, doc: Dict[str, Any]) -> None:
        if self.on_success is not None:
            self.on_success(self, doc)
        if not self.future.done():
            self.future.set_result(doc)

    def _fail(self, exc: BaseException) -> None:
        if self.on_error is not None:
            self.on_error(self, exc)
        if not self.future.done():
            self.future.set_exception(exc)


class Dispatcher(Protocol):
    """What the daemon and CLI require of a job dispatcher."""

    def submit(self, job: Job) -> "Future[Dict[str, Any]]":
        """Enqueue a job; the future resolves to the response body."""
        ...

    def stats(self) -> Dict[str, Any]:
        """A snapshot for gauges/introspection (shape is impl-owned)."""
        ...

    def close(self) -> None:
        """Stop accepting work and release resources."""
        ...


# ---------------------------------------------------------------------------
# Local: the pre-fleet process pool behind the protocol
# ---------------------------------------------------------------------------


class LocalDispatcher:
    """Jobs run in this process's pool — the PR-4 serving path.

    ``pool`` is caller-owned when provided (the daemon already builds
    one with fault-plan/telemetry initializers); otherwise a thread
    pool of ``workers`` is created and owned here. Payloads are the
    same documents the HTTP API accepts, with ``artifact`` already a
    full digest.
    """

    def __init__(
        self,
        store_root: str,
        pool: Optional[Executor] = None,
        workers: int = 2,
    ):
        self.store_root = store_root
        self._own_pool = pool is None
        self._pool: Executor = pool or ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-dispatch"
        )
        self._submitted = 0
        self._lock = threading.Lock()

    def _run(self, job: Job) -> Dict[str, Any]:
        payload = job.payload
        if job.route not in ("/v1/embed", "/v1/recognize"):
            raise ValueError(f"no local handler for route {job.route!r}")
        digest = str(payload["artifact"])
        codec = payload.get("codec")
        if job.route == "/v1/embed":
            spec = CopySpec(
                copy_id=str(payload["copy_id"]),
                watermark=int(payload["watermark"]),
                seed=int(payload.get("seed", 0)),
            )
            result = service_embed_copy(
                self.store_root, digest, spec,
                self_check=bool(payload.get("self_check", True)),
                codec=codec,
            )
            return {
                "copy_id": result.copy_id,
                "artifact": digest,
                "ok": result.ok,
                "verified": result.verified,
                "wall_seconds": result.wall_seconds,
                "module": result.text,
            }
        if job.route == "/v1/recognize":
            return service_recognize(
                self.store_root, digest, str(payload["module"]),
                codec=codec,
            )
        raise ValueError(f"no local handler for route {job.route!r}")

    def submit(self, job: Job) -> "Future[Dict[str, Any]]":
        with self._lock:
            self._submitted += 1
        inner = self._pool.submit(self._run, job)

        def _done(f: "Future[Dict[str, Any]]") -> None:
            exc = f.exception()
            if exc is None:
                job._succeed(f.result())
            else:
                job._fail(exc)

        inner.add_done_callback(_done)
        return job.future

    def stats(self) -> Dict[str, Any]:
        return {"mode": "local", "submitted": self._submitted}

    def close(self) -> None:
        if self._own_pool:
            self._pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Fleet: N worker daemons behind ServiceClient
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """One worker daemon: where it is and how much it can hold.

    ``capacity`` is the in-flight bound — set it to the worker's
    ``--workers`` count so the fleet never out-queues a worker's own
    admission ceiling (jobs waiting here can still be re-planned;
    jobs queued *on* a saturated worker cannot).
    """

    name: str
    url: str
    capacity: int = 2

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "WorkerSpec":
        if not isinstance(doc.get("name"), str) or not doc["name"]:
            raise ValueError("worker entry needs a non-empty 'name'")
        if not isinstance(doc.get("url"), str):
            raise ValueError(f"worker {doc['name']!r} needs a 'url'")
        capacity = doc.get("capacity", 2)
        if isinstance(capacity, bool) or not isinstance(capacity, int) \
                or capacity < 1:
            raise ValueError(
                f"worker {doc['name']!r} capacity must be a positive int"
            )
        return WorkerSpec(doc["name"], doc["url"], capacity)


def load_workers(path: str) -> List[WorkerSpec]:
    """Parse a ``workers.json`` fleet file: ``{"workers": [...]}``."""
    with open(path) as fp:
        doc = json.load(fp)
    entries = doc.get("workers") if isinstance(doc, dict) else None
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path!r} must hold a non-empty 'workers' list")
    specs = [WorkerSpec.from_dict(e) for e in entries]
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate worker names in {path!r}")
    return specs


class FleetDispatcher:
    """Route jobs to worker daemons; survive the daemons misbehaving.

    One poller thread owns the queue: it wakes on submissions,
    completions and requeue deadlines, and hands the highest-priority
    *ready* job to the least-loaded worker with a free slot. Sends run
    on a thread pool sized to the fleet's total capacity (they block
    on HTTP). The per-request ``ServiceClient`` retry is disabled
    (``max_attempts=1``): the dispatcher owns retries, because only it
    can requeue to a *different* worker.

    Failure handling per send:

    * connection loss / 429 / 503 — worker loss or saturation: the
      job requeues with delay ``max(policy backoff, server
      Retry-After)`` until the policy's attempts run out, then fails.
    * any other error status — the job is wrong, not the worker:
      fails immediately (no requeue).

    When the pending queue reaches ``max_pending``, the
    lowest-priority job (submission order breaking ties, newest
    first) is shed with :class:`DispatchOverload`.
    """

    def __init__(
        self,
        workers: List[WorkerSpec],
        retry: Optional[RetryPolicy] = None,
        poll_interval: float = 0.05,
        max_pending: int = 256,
        request_timeout: float = 60.0,
        client_factory: Optional[Callable[[WorkerSpec], ServiceClient]] = None,
    ):
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.workers = list(workers)
        self.retry = retry or RetryPolicy()
        self.poll_interval = poll_interval
        self.max_pending = max_pending
        if client_factory is None:
            def client_factory(spec: WorkerSpec) -> ServiceClient:
                return ServiceClient(
                    spec.url, timeout=request_timeout,
                    retry=RetryPolicy(max_attempts=1),
                )
        self._clients = {w.name: client_factory(w) for w in self.workers}
        self._in_flight = {w.name: 0 for w in self.workers}
        self._capacity = {w.name: w.capacity for w in self.workers}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        # Entries: (-priority, seq, not_before, job). Heap order is
        # priority-first so shedding pops from the *back* conceptually;
        # readiness (not_before) is checked at assignment time.
        self._pending: List[Tuple[int, int, float, Job]] = []
        self._seq = itertools.count()
        self._completed = 0
        self._errors = 0
        self._shed = 0
        self._requeues = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=sum(w.capacity for w in self.workers),
            thread_name_prefix="repro-fleet",
        )
        self._poller = threading.Thread(
            target=self._poll_loop, name="repro-fleet-poller", daemon=True
        )
        self._poller.start()

    # -- public surface ----------------------------------------------------

    def submit(self, job: Job) -> "Future[Dict[str, Any]]":
        with self._wake:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            if len(self._pending) >= self.max_pending:
                self._shed_one(job)
                if job.future.done():
                    return job.future
            if not job.job_id:
                job.job_id = f"job-{next(self._seq)}"
            heapq.heappush(
                self._pending,
                (-int(job.priority or 0), next(self._seq), 0.0, job),
            )
            self._wake.notify()
        return job.future

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "mode": "fleet",
                "pending": len(self._pending),
                "in_flight": dict(self._in_flight),
                "completed": self._completed,
                "errors": self._errors,
                "shed": self._shed,
                "requeues": self._requeues,
            }

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until the queue and every in-flight slot are empty."""
        deadline = time.monotonic() + timeout
        with self._wake:
            while self._pending or any(self._in_flight.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wake.wait(min(remaining, self.poll_interval))
        return True

    def close(self) -> None:
        with self._wake:
            self._closed = True
            abandoned = [entry[3] for entry in self._pending]
            self._pending.clear()
            self._wake.notify_all()
        for job in abandoned:
            job._fail(DispatchOverload("dispatcher closed", retry_after=0.0))
        self._poller.join(timeout=5.0)
        self._pool.shutdown(wait=True)

    # -- internals ---------------------------------------------------------

    def _shed_one(self, incoming: Job) -> None:
        """Queue full: drop the least important job (maybe the new one).

        The victim is the lowest-priority entry; among equals the
        *newest* goes — older jobs have waited longest and are closest
        to service (FIFO fairness under shed).
        """
        candidates = self._pending + [
            (-int(incoming.priority or 0), next(self._seq), 0.0, incoming)
        ]
        victim_entry = max(candidates, key=lambda e: (e[0], e[1]))
        if victim_entry[3] is not incoming:
            self._pending.remove(victim_entry)
            heapq.heapify(self._pending)
            heapq.heappush(
                self._pending,
                (-int(incoming.priority or 0), next(self._seq), 0.0,
                 incoming),
            )
        victim = victim_entry[3]
        self._shed += 1
        get_registry().counter(
            "repro_fleet_shed_total", "Jobs load-shed by the dispatcher"
        ).inc(route=victim.route)
        obs.emit(
            "fleet.dispatch", victim.job_id or "unassigned",
            route=victim.route, outcome="shed", priority=victim.priority,
        )
        victim._fail(DispatchOverload(
            f"fleet saturated ({self.max_pending} pending); "
            f"{victim.route} shed", retry_after=self.poll_interval * 10,
        ))

    def _pick_worker(self) -> Optional[str]:
        """Least-loaded worker with a free slot (stable tie-break)."""
        best: Optional[str] = None
        best_load = 10**9
        for spec in self.workers:
            load = self._in_flight[spec.name]
            if load < self._capacity[spec.name] and load < best_load:
                best, best_load = spec.name, load
        return best

    def _poll_loop(self) -> None:
        while True:
            with self._wake:
                if self._closed:
                    return
                now = time.monotonic()
                entry = self._next_ready(now)
                if entry is None:
                    self._wake.wait(self.poll_interval)
                    continue
                worker = self._pick_worker()
                if worker is None:
                    # All slots busy: put it back, wait for a completion.
                    heapq.heappush(self._pending, entry)
                    self._wake.wait(self.poll_interval)
                    continue
                job = entry[3]
                self._in_flight[worker] += 1
            self._pool.submit(self._send, job, worker)

    def _next_ready(self, now: float) -> Optional[Tuple[int, int, float, Job]]:
        """Pop the best pending entry whose requeue delay has elapsed."""
        deferred: List[Tuple[int, int, float, Job]] = []
        picked: Optional[Tuple[int, int, float, Job]] = None
        while self._pending:
            entry = heapq.heappop(self._pending)
            if entry[2] <= now:
                picked = entry
                break
            deferred.append(entry)
        for entry in deferred:
            heapq.heappush(self._pending, entry)
        return picked

    def _send(self, job: Job, worker: str) -> None:
        job.attempts += 1
        job.worker = worker
        started = time.monotonic()
        try:
            faults.check("fleet.send", worker=worker, route=job.route)
            status, doc, retry_after = self._clients[worker].request_ex(
                "POST", job.route, job.payload
            )
        except (OSError, faults.FaultError) as exc:
            self._after_send(job, worker, started, error=exc,
                            retry_after=None)
            return
        if status in (429, 503):
            exc = ServiceError(
                status, str(doc.get("error", "worker saturated")), doc,
                retry_after=retry_after,
            )
            self._after_send(job, worker, started, error=exc,
                            retry_after=retry_after)
            return
        if status not in (200, 422):
            self._after_send(
                job, worker, started, fatal=ServiceError(
                    status, str(doc.get("error", "")), doc,
                    retry_after=retry_after,
                ),
            )
            return
        self._after_send(job, worker, started, result=doc)

    def _after_send(
        self,
        job: Job,
        worker: str,
        started: float,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[BaseException] = None,
        fatal: Optional[BaseException] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        seconds = time.monotonic() - started
        registry = get_registry()
        requeued = False
        with self._wake:
            self._in_flight[worker] -= 1
            if error is not None and self.retry.retries_left(job.attempts):
                delay = self.retry.delay(job.attempts)
                if retry_after is not None:
                    # The worker named its price (503 Retry-After from
                    # an open circuit); honor it over private backoff.
                    delay = max(delay, retry_after)
                self._requeues += 1
                requeued = True
                heapq.heappush(
                    self._pending,
                    (-int(job.priority or 0), next(self._seq),
                     time.monotonic() + delay, job),
                )
            elif error is None and fatal is None:
                self._completed += 1
            else:
                self._errors += 1
            self._wake.notify()
        outcome = (
            "ok" if result is not None
            else "requeued" if requeued
            else "error"
        )
        # Resolve the job before any telemetry: a metrics/journal
        # hiccup must never leave a caller waiting on the future.
        if result is not None:
            job._succeed(result)
        elif requeued:
            pass  # the poller will try again after the delay
        elif fatal is not None:
            job._fail(fatal)
        else:
            assert error is not None
            job._fail(error)
        registry.histogram(
            "repro_fleet_dispatch_seconds",
            "Wall time of one fleet send (submit to response)",
        ).observe(seconds, worker=worker, route=job.route)
        registry.counter(
            "repro_fleet_jobs_total", "Fleet jobs by outcome"
        ).inc(worker=worker, route=job.route, outcome=outcome)
        for spec in self.workers:
            registry.gauge(
                "repro_fleet_worker_inflight",
                "Jobs currently executing on each fleet worker",
            ).set(self._in_flight[spec.name], worker=spec.name)
        obs.emit(
            "fleet.dispatch", job.job_id,
            route=job.route, worker=worker, outcome=outcome,
            seconds=seconds, attempt=job.attempts,
        )
