"""The sharded artifact fabric: one store address space, N roots.

A single :class:`~repro.serve.store.ArtifactStore` serializes every
manifest write behind one lockfile and puts every blob on one disk.
That is the right shape for one release pipeline; it is the wrong
shape for a fleet minting thousands of releases, where store traffic
should spread across directories (and, behind a shared filesystem,
across machines). The fabric keeps the store's interface and
integrity story but **consistent-hashes release digests over N shard
roots**, each shard being a full, independently hardened
``ArtifactStore`` (lockfile, quarantine, torn-manifest rebuild — all
of PR 5's machinery, unchanged).

Why consistent hashing rather than ``hash(digest) % N``: membership
changes. With modulo placement, growing N remaps nearly every key;
with a hash ring, adding a shard moves **only the keys whose arc the
new shard now owns** (about ``1/(N+1)`` of them), and removing it
moves exactly those keys back. Rebalancing cost is proportional to
the data that must move, never to the data that exists.

On-disk layout::

    <root>/
      fabric.json          # ring membership: version, replicas, shards
      shard-00/            # a complete ArtifactStore
        store.json
        blobs/...
      shard-01/
      ...

The ring is a pure function of the membership list: each shard
contributes ``replicas`` points at ``sha256("<name>#<i>")`` and a
digest is owned by the first point clockwise from ``sha256(digest)``.
Two fabrics with the same ``fabric.json`` route identically, in any
process, forever — routing state is never cached on disk.

Rebalancing (:meth:`ShardedArtifactStore.add_shard` /
:meth:`~ShardedArtifactStore.remove_shard`) recomputes ownership for
every record and moves only the records whose owner changed; blobs
move bytes-verbatim (:meth:`~repro.serve.store.ArtifactStore.
export_blob` → :meth:`~repro.serve.store.ArtifactStore.adopt`), so a
move can never silently re-pickle or corrupt an artifact — the
receiving shard re-checks the SHA-256 before accepting it.

:func:`open_store` is the polymorphic entry point the daemon, the
batch CLI and the service workers use: a root holding ``fabric.json``
opens as a fabric, anything else as a plain store, and both expose
the same surface.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import faults
from ..bytecode_wm.keys import WatermarkKey
from ..codec import resolve_codec
from ..obs.metrics import get_registry
from ..pipeline.prepare import (
    PreparedProgram,
    prepare_fingerprint,
    resolve_piece_count,
)
from ..vm.interpreter import DEFAULT_MAX_STEPS
from ..vm.program import Module
from .store import (
    ArtifactRecord,
    ArtifactStore,
    QuarantineRecord,
    StoreError,
    _atomic_write,
)

__all__ = [
    "FABRIC_MANIFEST",
    "HashRing",
    "RebalanceReport",
    "ShardedArtifactStore",
    "is_fabric",
    "open_store",
]

#: Bumped when the fabric manifest schema changes; a mismatch is an
#: error, never a silent misread (same contract as STORE_VERSION).
FABRIC_VERSION = 1

FABRIC_MANIFEST = "fabric.json"

#: Ring points per shard. 64 keeps the arc distribution within a few
#: percent of uniform for small fleets while the ring stays tiny
#: (N*64 16-byte entries).
DEFAULT_REPLICAS = 64


def _ring_hash(text: str) -> int:
    """A stable 64-bit position on the ring (independent of
    PYTHONHASHSEED, unlike ``hash()``)."""
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named shards.

    The ring is deterministic in its membership *set*: insertion order
    does not matter, because every shard's points are a pure function
    of its name. ``route`` is O(log(shards * replicas)).
    """

    def __init__(self, shards: List[str], replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be positive")
        if len(set(shards)) != len(shards):
            raise ValueError("duplicate shard names in ring membership")
        self.replicas = replicas
        self.shards = sorted(shards)
        points: List[Tuple[int, str]] = []
        for shard in self.shards:
            for index in range(replicas):
                points.append((_ring_hash(f"{shard}#{index}"), shard))
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    def route(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise."""
        if not self._points:
            raise StoreError("fabric has no shards")
        where = bisect.bisect_right(self._positions, _ring_hash(key))
        if where == len(self._points):
            where = 0  # wrap: the ring is a circle
        return self._points[where][1]

    def with_shard(self, name: str) -> "HashRing":
        return HashRing(self.shards + [name], self.replicas)

    def without_shard(self, name: str) -> "HashRing":
        return HashRing(
            [s for s in self.shards if s != name], self.replicas
        )


@dataclass
class RebalanceReport:
    """What a membership change actually moved.

    ``moved`` maps each relocated digest to its ``(source,
    destination)`` shard pair; ``kept`` counts the records the change
    did not touch. The minimal-movement contract — only the affected
    arc relocates — is asserted by the fabric tests over this report.
    """

    added: Optional[str] = None
    removed: Optional[str] = None
    moved: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    kept: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "added": self.added,
            "removed": self.removed,
            "moved": {d: list(pair) for d, pair in self.moved.items()},
            "kept": self.kept,
        }


class ShardedArtifactStore:
    """N hardened :class:`ArtifactStore` roots behind one hash ring.

    Mirrors the single store's surface (``put``/``load``/
    ``get_or_prepare``/``records``/``resolve``/``evict``/``verify``/
    ``quarantined``/``refresh``), so the daemon and CLI use either
    interchangeably via :func:`open_store`. Every operation on one
    artifact touches exactly one shard — the shard the ring routes its
    digest to — so shards never contend on each other's locks.
    """

    def __init__(
        self,
        root: str,
        shards: Optional[int] = None,
        create: bool = True,
        replicas: int = DEFAULT_REPLICAS,
    ):
        self.root = root
        manifest = os.path.join(root, FABRIC_MANIFEST)
        if os.path.exists(manifest):
            self._read_manifest(manifest)
        elif create:
            count = 2 if shards is None else shards
            if count < 1:
                raise ValueError("a fabric needs at least one shard")
            self.replicas = replicas
            self._shard_names = [f"shard-{i:02d}" for i in range(count)]
            os.makedirs(root, exist_ok=True)
            for name in self._shard_names:
                ArtifactStore(os.path.join(root, name))
            self._write_manifest()
        else:
            raise StoreError(f"no artifact fabric at {root!r}")
        self.ring = HashRing(self._shard_names, self.replicas)
        self._stores: Dict[str, ArtifactStore] = {
            name: ArtifactStore(os.path.join(root, name))
            for name in self._shard_names
        }

    # -- manifest ----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.root, FABRIC_MANIFEST)

    def _read_manifest(self, path: str) -> None:
        try:
            with open(path) as fp:
                doc = json.load(fp)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable fabric manifest: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != FABRIC_VERSION:
            raise StoreError(
                f"fabric version {doc.get('version')!r} unsupported "
                f"(expected {FABRIC_VERSION})"
            )
        shards = doc.get("shards")
        if not isinstance(shards, list) or not shards:
            raise StoreError("fabric manifest names no shards")
        self._shard_names = [str(s) for s in shards]
        self.replicas = int(doc.get("replicas", DEFAULT_REPLICAS))

    def _write_manifest(self) -> None:
        doc = {
            "version": FABRIC_VERSION,
            "replicas": self.replicas,
            "shards": sorted(self._shard_names),
        }
        payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        _atomic_write(
            self._manifest_path(), payload.encode(),
            site="store.write.fabric",
        )

    # -- routing -----------------------------------------------------------

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._shard_names)

    def shard(self, name: str) -> ArtifactStore:
        try:
            return self._stores[name]
        except KeyError:
            raise StoreError(f"no shard {name!r} in fabric") from None

    def route(self, digest: str) -> str:
        """The shard name owning ``digest`` under the current ring."""
        return self.ring.route(digest)

    def _owner(self, digest: str) -> ArtifactStore:
        return self._stores[self.ring.route(digest)]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._stores.values())

    def __contains__(self, digest: str) -> bool:
        return digest in self._owner(digest)

    def contains(self, digest: str) -> bool:
        return digest in self

    def record(self, digest: str) -> ArtifactRecord:
        return self._owner(digest).record(digest)

    def records(self) -> List[ArtifactRecord]:
        """All records fabric-wide, oldest first (CLI listing order)."""
        self._sample_gauges()
        merged: List[ArtifactRecord] = []
        for store in self._stores.values():
            merged.extend(store.records())
        merged.sort(key=lambda r: (r.created_unix, r.digest))
        return merged

    def resolve(self, prefix: str) -> str:
        """Expand a unique digest prefix across every shard."""
        matches = []
        for store in self._stores.values():
            try:
                matches.append(store.resolve(prefix))
            except StoreError as exc:
                if "ambiguous" in str(exc):
                    raise
        if not matches:
            raise StoreError(f"no artifact matches {prefix!r}")
        if len(set(matches)) > 1:
            raise StoreError(f"ambiguous artifact prefix {prefix!r}")
        return matches[0]

    def refresh(self) -> None:
        for store in self._stores.values():
            store.refresh()

    def _sample_gauges(self) -> None:
        gauge = get_registry().gauge(
            "repro_fabric_shard_artifacts",
            "Artifacts stored per fabric shard",
        )
        for name, store in sorted(self._stores.items()):
            gauge.set(len(store), shard=name)

    # -- persistence -------------------------------------------------------

    def put(self, prepared: PreparedProgram, label: str = "") -> ArtifactRecord:
        return self._owner(prepared.fingerprint()).put(prepared, label=label)

    def load(self, digest: str) -> PreparedProgram:
        return self._owner(digest).load(digest)

    def evict(self, digest: str) -> bool:
        return self._owner(digest).evict(digest)

    def quarantined(self) -> List[QuarantineRecord]:
        merged: List[QuarantineRecord] = []
        for store in self._stores.values():
            merged.extend(store.quarantined())
        merged.sort(key=lambda r: (r.quarantined_at, r.digest))
        return merged

    def verify(self) -> List[str]:
        """Per-shard integrity sweeps plus a placement audit: a record
        sitting on a shard the ring does not route it to is a problem
        (an interrupted rebalance, or a hand-copied blob)."""
        problems: List[str] = []
        for name in self.shard_names:
            store = self._stores[name]
            problems.extend(f"{name}: {p}" for p in store.verify())
            for record in store.records():
                owner = self.ring.route(record.digest)
                if owner != name:
                    problems.append(
                        f"{name}: {record.digest[:12]} belongs on {owner} "
                        f"(stale placement; rebalance was interrupted?)"
                    )
        return problems

    def get_or_prepare(
        self,
        module: Module,
        key: WatermarkKey,
        watermark_bits: int,
        pieces: Optional[int] = None,
        piece_loss: Optional[float] = None,
        target_success: float = 0.99,
        max_steps: int = DEFAULT_MAX_STEPS,
        profile: bool = False,
        label: str = "",
        codec: str = "gcrt",
    ) -> Tuple[PreparedProgram, bool]:
        """Route by the preparation fingerprint, then delegate.

        The owning shard runs the same heal-on-corruption funnel the
        single store does; the fabric only decides *where*.
        """
        codec = resolve_codec(codec).spec
        # Resolve a planner-sized piece count before routing: the
        # artifact lands under its *concrete* fingerprint, so routing
        # by the ``pieces=None`` digest would place it on (and later
        # look it up from) the wrong shard.
        _, pieces = resolve_piece_count(
            watermark_bits, pieces, piece_loss, target_success, codec=codec
        )
        digest = prepare_fingerprint(
            module, key, watermark_bits, pieces, codec=codec
        )
        return self._owner(digest).get_or_prepare(
            module,
            key,
            watermark_bits,
            pieces=pieces,
            piece_loss=piece_loss,
            target_success=target_success,
            max_steps=max_steps,
            profile=profile,
            label=label,
            codec=codec,
        )

    # -- membership + rebalancing ------------------------------------------

    def _move(
        self, digest: str, source: str, destination: str
    ) -> None:
        """Relocate one artifact bytes-verbatim between shards.

        Adopt-then-evict ordering: the destination verifies and
        manifests the blob before the source drops it, so a crash
        mid-move leaves a duplicate (flagged by :meth:`verify` as a
        stale placement), never a loss.
        """
        faults.check("fabric.rebalance.move", digest=digest,
                     source=source, destination=destination)
        record, data = self._stores[source].export_blob(digest)
        self._stores[destination].adopt(record, data)
        self._stores[source].evict(digest)

    def _rebalance(self, old_ring: HashRing,
                   report: RebalanceReport) -> RebalanceReport:
        moves: List[Tuple[str, str, str]] = []
        for name in sorted(self._stores):
            if name not in old_ring.shards:
                continue  # a brand-new shard holds nothing yet
            for record in self._stores[name].records():
                owner = self.ring.route(record.digest)
                if owner != name:
                    moves.append((record.digest, name, owner))
                else:
                    report.kept += 1
        for digest, source, destination in moves:
            self._move(digest, source, destination)
            report.moved[digest] = (source, destination)
        get_registry().counter(
            "repro_fabric_rebalanced_total",
            "Artifacts relocated by fabric membership changes",
        ).inc(len(moves))
        self._sample_gauges()
        return report

    def add_shard(self, name: Optional[str] = None) -> RebalanceReport:
        """Grow the ring by one shard and move only its arc's keys."""
        if name is None:
            index = len(self._shard_names)
            while f"shard-{index:02d}" in self._shard_names:
                index += 1
            name = f"shard-{index:02d}"
        if name in self._shard_names:
            raise StoreError(f"shard {name!r} already in fabric")
        old_ring = self.ring
        self._stores[name] = ArtifactStore(os.path.join(self.root, name))
        self._shard_names.append(name)
        self.ring = HashRing(self._shard_names, self.replicas)
        self._write_manifest()
        return self._rebalance(old_ring, RebalanceReport(added=name))

    def remove_shard(self, name: str) -> RebalanceReport:
        """Shrink the ring; the departing shard's keys scatter back to
        exactly the arcs they came from (the inverse of add)."""
        if name not in self._shard_names:
            raise StoreError(f"no shard {name!r} in fabric")
        if len(self._shard_names) == 1:
            raise StoreError("cannot remove the last shard")
        departing = self._stores[name]
        old_ring = self.ring
        self._shard_names.remove(name)
        self.ring = HashRing(self._shard_names, self.replicas)
        self._write_manifest()
        report = RebalanceReport(removed=name)
        # Every record on the departing shard moves, by definition;
        # records elsewhere are untouched (their arcs did not change).
        for record in departing.records():
            destination = self.ring.route(record.digest)
            self._move(record.digest, name, destination)
            report.moved[record.digest] = (name, destination)
        for other in self._stores.values():
            if other is not departing:
                report.kept += len(other)
        del self._stores[name]
        del old_ring
        get_registry().counter(
            "repro_fabric_rebalanced_total",
            "Artifacts relocated by fabric membership changes",
        ).inc(len(report.moved))
        self._sample_gauges()
        return report


def is_fabric(root: str) -> bool:
    """Does ``root`` hold a sharded fabric (vs a plain store)?"""
    return os.path.exists(os.path.join(root, FABRIC_MANIFEST))


def open_store(
    root: str,
    create: bool = False,
    shards: Optional[int] = None,
) -> Union[ArtifactStore, ShardedArtifactStore]:
    """Open whatever lives at ``root``: fabric or single store.

    ``shards`` (with ``create=True``) creates a new fabric when the
    root holds neither; ``shards=None`` creates a plain store. The
    daemon, the batch CLI and the service workers all come through
    here, so a store can be swapped for a fabric without touching any
    caller.
    """
    if is_fabric(root):
        return ShardedArtifactStore(root, create=False)
    if shards is not None:
        if os.path.exists(os.path.join(root, "store.json")):
            raise StoreError(
                f"{root!r} already holds a single store; cannot shard it "
                f"in place (create a fresh fabric root)"
            )
        return ShardedArtifactStore(root, shards=shards, create=True)
    return ArtifactStore(root, create=create)
