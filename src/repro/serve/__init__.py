"""Fingerprinting as a service: durable artifacts + an async daemon.

The paper's schemes are operational workflows — a vendor embeds one
mark per distributed copy and recognizes marks in suspect binaries,
continuously, per release. This package turns the library into that
service:

* :mod:`repro.serve.store` — a content-addressed, integrity-checked
  on-disk store of :class:`~repro.pipeline.prepare.PreparedProgram`
  artifacts, so the heavy watermark-independent preparation is paid
  once per *(program, key)* release and survives process restarts;
* :mod:`repro.serve.daemon` — a zero-dependency asyncio HTTP daemon
  (``POST /v1/embed``, ``POST /v1/recognize``, ``GET /healthz``,
  ``GET /metrics``) that dispatches requests to a worker pool with
  bounded-queue backpressure, per-request timeouts, retry-once on
  worker death, and per-request spans + Prometheus metrics.

Typical use::

    from repro.serve import ArtifactStore, ServerConfig, serve

    store = ArtifactStore("store/")
    record = store.put(prepared)          # or: repro artifact prepare
    serve(ServerConfig(store_root="store/", port=8765, workers=4))

See ``docs/serving.md`` for the HTTP API and an end-to-end
walkthrough.
"""

from .daemon import (
    ROUTES,
    Request,
    Response,
    ServerConfig,
    ServerThread,
    WatermarkService,
    serve,
)
from .store import ArtifactRecord, ArtifactStore, StoreError

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "ROUTES",
    "Request",
    "Response",
    "ServerConfig",
    "ServerThread",
    "StoreError",
    "WatermarkService",
    "serve",
]
