"""Fingerprinting as a service: durable artifacts + an async daemon.

The paper's schemes are operational workflows — a vendor embeds one
mark per distributed copy and recognizes marks in suspect binaries,
continuously, per release. This package turns the library into that
service:

* :mod:`repro.serve.store` — a content-addressed, integrity-checked
  on-disk store of :class:`~repro.pipeline.prepare.PreparedProgram`
  artifacts, so the heavy watermark-independent preparation is paid
  once per *(program, key)* release and survives process restarts;
* :mod:`repro.serve.daemon` — a zero-dependency asyncio HTTP daemon
  (``POST /v1/embed``, ``POST /v1/recognize``, ``GET /healthz``,
  ``GET /metrics``) that dispatches requests to a worker pool with
  bounded-queue backpressure, per-request timeouts, retry-once on
  worker death, per-route circuit breakers, graceful SIGTERM drain,
  and per-request spans + Prometheus metrics;
* :mod:`repro.serve.circuit` — the consecutive-failure
  :class:`CircuitBreaker` state machine behind those routes;
* :mod:`repro.serve.client` — a stdlib :class:`ServiceClient` that
  honors the daemon's ``Retry-After`` backpressure with the shared
  :class:`~repro.faults.retry.RetryPolicy` backoff;
* :mod:`repro.serve.fabric` — the scale-out store: a
  :class:`ShardedArtifactStore` consistent-hashing releases over N
  hardened shard roots, with minimal-movement rebalancing and the
  :func:`open_store` factory that makes fabrics and plain stores
  interchangeable;
* :mod:`repro.serve.dispatch` — pluggable job dispatch behind the
  daemon: the in-process pool (:class:`LocalDispatcher`) or a
  :class:`FleetDispatcher` routing to N worker daemons with bounded
  in-flight, requeue-on-loss, priority load-shed, and a
  :class:`HealthMonitor` that probes, ejects, and readmits workers.

Typical use::

    from repro.serve import ArtifactStore, ServerConfig, serve

    store = ArtifactStore("store/")
    record = store.put(prepared)          # or: repro artifact prepare
    serve(ServerConfig(store_root="store/", port=8765, workers=4))

See ``docs/serving.md`` for the HTTP API and an end-to-end
walkthrough.
"""

from .circuit import CircuitBreaker
from .client import ServiceClient, ServiceError
from .daemon import (
    ROUTES,
    Request,
    Response,
    ServerConfig,
    ServerThread,
    WatermarkService,
    serve,
)
from .dispatch import (
    Dispatcher,
    DispatchOverload,
    FleetDispatcher,
    HealthMonitor,
    Job,
    LocalDispatcher,
    WorkerSpec,
    load_workers,
)
from .fabric import (
    HashRing,
    RebalanceReport,
    ShardedArtifactStore,
    is_fabric,
    open_store,
)
from .store import (
    ArtifactRecord,
    ArtifactStore,
    QuarantineRecord,
    StoreError,
)

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "CircuitBreaker",
    "Dispatcher",
    "DispatchOverload",
    "FleetDispatcher",
    "HashRing",
    "HealthMonitor",
    "Job",
    "LocalDispatcher",
    "QuarantineRecord",
    "ROUTES",
    "RebalanceReport",
    "Request",
    "Response",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ShardedArtifactStore",
    "StoreError",
    "WatermarkService",
    "WorkerSpec",
    "is_fabric",
    "load_workers",
    "open_store",
    "serve",
]
