"""The WVM fast-path execution engine, with tracing hooks.

Tracing is built into the interpreter rather than added by bytecode
instrumentation. This deliberately models the paper's response to the
class-encryption attack (Section 5.1.2): tracing "need not be
collected through the use of instrumentation [...] standard Java
interfaces for profiling and debugging" observe the running program
directly, and "the JVM necessarily has access to the unencoded form
of the bytecode". WVM's interpreter-level hooks are that profiling
interface.

Runtime failures raise :class:`VMError` (the analog of a JVM crash or
exception); the attack harness treats a trapped program as broken.

Execution design (see ``docs/performance.md`` for measurements):

* Functions are lowered once, lazily, into the dense precompiled form
  of :mod:`repro.vm.compiler` — integer opcodes, resolved branch
  targets, pre-decoded operands, pre-built branch events and site
  keys, and fused superinstructions for hot straight-line patterns.
* The run loop exists in three *specializations* — untraced,
  branch-traced and full-traced — so ``trace_mode=None`` pays zero
  tracing overhead. The three are generated from one template at
  import time (:func:`_gen_loop`); tracing differs only in the lines
  tagged for that mode, which keeps the semantics of the variants
  in lockstep by construction.
* Each specialization also has a *profiled* twin that counts every
  dispatched slot into a per-opcode array (the raw material of
  :class:`repro.obs.vmprofile.DispatchProfile`). Profiled loops are
  generated lazily on first use and selected only when
  ``profile=True`` — exactly the ``trace_mode`` pattern, so plain
  runs keep paying zero instrumentation cost.

Observable behaviour is identical to the seed engine (kept as
:mod:`repro.vm._reference` for differential testing): same outputs,
same step counts, same traps, and byte-identical traces.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from .compiler import NUM_OPCODES, CompiledFunction
from .instructions import wrap64
from .program import Module
from .tracing import RunResult, Trace, TracePoint

DEFAULT_MAX_STEPS = 50_000_000


class VMError(Exception):
    """A WVM runtime trap (bad branch, division by zero, etc.)."""


class StepLimitExceeded(VMError):
    """The configured ``max_steps`` budget ran out mid-execution.

    Raised instead of spinning silently; any partially collected trace
    is discarded with the run (the interpreter never returns one).
    """

    def __init__(self, max_steps: int, function: str):
        super().__init__(
            f"step limit of {max_steps} exceeded in {function!r} "
            f"(non-terminating program, or raise max_steps)"
        )
        self.max_steps = max_steps
        self.function = function


# ---------------------------------------------------------------------------
# Run-loop template. One source, three specializations: lines emitted
# conditionally on the mode flags T (record branch events: "branch" and
# "full") and F (record trace-site snapshots: "full" only).
# ---------------------------------------------------------------------------

_MIN64 = -(1 << 63)
_MAX64 = (1 << 63) - 1


def _gen_loop(mode: Optional[str], profiled: bool = False) -> str:
    T = mode in ("branch", "full")
    F = mode == "full"
    name = {None: "_run_untraced", "branch": "_run_branch", "full": "_run_full"}
    L: list = []
    emit = L.append

    def snap(keys_expr: str, ind: str) -> None:
        """Record every SiteKey in ``keys_expr`` with current snapshots."""
        emit(f"{ind}_sk = {keys_expr}")
        emit(f"{ind}if _sk:")
        emit(f"{ind}    _ls = tuple(loc); _gs = tuple(glob)")
        emit(f"{ind}    for _k in _sk:")
        emit(f"{ind}        pt_append(TracePoint(_k, _ls, _gs))")

    def branch_tail(tgt: str, adv: int, ind: str) -> None:
        """Shared conditional-branch epilogue: event, sites, transfer."""
        emit(f"{ind}if taken:")
        if T:
            emit(f"{ind}    ev_append(evt[pc])")
        if F:
            snap("ts[pc]", ind + "    ")
        emit(f"{ind}    pc = {tgt}")
        emit(f"{ind}else:")
        if T:
            emit(f"{ind}    ev_append(evf[pc])")
        if F:
            snap("fs[pc]", ind + "    ")
        emit(f"{ind}    pc += {adv}")
        emit(f"{ind}continue")

    def jump_tail(tgt: str, ind: str) -> None:
        """goto-style epilogue: sites on the taken edge, then transfer."""
        if F:
            snap("ts[pc]", ind)
        emit(f"{ind}pc = {tgt}")
        emit(f"{ind}continue")

    def fall(adv: int, ind: str) -> None:
        """Fall-through epilogue: sites crossed, then advance."""
        if F:
            snap("fs[pc]", ind)
        emit(f"{ind}pc += {adv}")
        emit(f"{ind}continue")

    def binop_chain(
        out_stmt: Callable[[str], str],
        adv: int,
        ind: str,
        tail: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Selector-dispatched fused binop: a_ OP b_ -> ``out_stmt``.

        ``out_stmt`` receives the value expression; the aload arm emits
        its own (unwrapped) result, everything else goes through the
        64-bit wrap fast path. ``tail`` overrides the fall-through
        epilogue (used by fused forms that end in a goto).
        """
        if tail is None:
            def tail(ind2: str) -> None:
                fall(adv, ind2)
        wrapped = out_stmt(f"v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
        emit(f"{ind}if sel < 5:")
        emit(f"{ind}    if sel == 0:")
        emit(f"{ind}        v = a_ + b_")
        emit(f"{ind}    elif sel == 1:")
        emit(f"{ind}        v = a_ * b_")
        emit(f"{ind}    elif sel == 2:")  # aload
        emit(f"{ind}        if not 0 <= a_ < len(heap):")
        emit(f"{ind}            raise VMError(f'bad array reference {{a_}}')")
        emit(f"{ind}        _arr = heap[a_]")
        emit(f"{ind}        if not 0 <= b_ < len(_arr):")
        emit(f"{ind}            raise VMError(")
        emit(f"{ind}                f'array index {{b_}} out of bounds "
             f"({{len(_arr)}})')")
        emit(f"{ind}        {out_stmt('_arr[b_]')}")
        tail(ind + "        ")
        emit(f"{ind}    elif sel == 3:")
        emit(f"{ind}        v = a_ & b_")
        emit(f"{ind}    else:")  # mod
        emit(f"{ind}        if b_ == 0:")
        emit(f"{ind}            raise VMError('modulo by zero')")
        emit(f"{ind}        _q = abs(a_) // abs(b_)")
        emit(f"{ind}        if (a_ < 0) != (b_ < 0):")
        emit(f"{ind}            _q = -_q")
        emit(f"{ind}        if not {_MIN64} <= _q <= {_MAX64}:")
        emit(f"{ind}            _q = wrap(_q)")
        emit(f"{ind}        v = a_ - _q * b_")
        emit(f"{ind}elif sel == 5:")
        emit(f"{ind}    v = a_ - b_")
        emit(f"{ind}elif sel == 6:")
        emit(f"{ind}    v = a_ | b_")
        emit(f"{ind}elif sel == 7:")
        emit(f"{ind}    v = a_ ^ b_")
        emit(f"{ind}elif sel == 8:")
        emit(f"{ind}    v = a_ << (b_ & 63)")
        emit(f"{ind}elif sel == 9:")
        emit(f"{ind}    v = a_ >> (b_ & 63)")
        emit(f"{ind}else:")  # div
        emit(f"{ind}    if b_ == 0:")
        emit(f"{ind}        raise VMError('division by zero')")
        emit(f"{ind}    v = abs(a_) // abs(b_)")
        emit(f"{ind}    if (a_ < 0) != (b_ < 0):")
        emit(f"{ind}        v = -v")
        emit(f"{ind}{wrapped}")
        tail(ind)

    def inner_chain(a_expr: str, b_expr: str, sel_expr: str, ind: str) -> None:
        """Full binop into ``t_`` — the inner half of a second-order
        fused slot. Traps raise the same ``VMError`` as the unfused
        sequence would; the interleaving difference is unobservable
        because a trap discards the whole run."""
        emit(f"{ind}_ia = {a_expr}")
        emit(f"{ind}_ib = {b_expr}")
        emit(f"{ind}_s2 = {sel_expr}")
        emit(f"{ind}if _s2 < 5:")
        emit(f"{ind}    if _s2 == 0:")
        emit(f"{ind}        t_ = _ia + _ib")
        emit(f"{ind}    elif _s2 == 1:")
        emit(f"{ind}        t_ = _ia * _ib")
        emit(f"{ind}    elif _s2 == 2:")  # aload
        emit(f"{ind}        if not 0 <= _ia < len(heap):")
        emit(f"{ind}            raise VMError(f'bad array reference {{_ia}}')")
        emit(f"{ind}        _arr = heap[_ia]")
        emit(f"{ind}        if not 0 <= _ib < len(_arr):")
        emit(f"{ind}            raise VMError(")
        emit(f"{ind}                f'array index {{_ib}} out of bounds "
             f"({{len(_arr)}})')")
        emit(f"{ind}        t_ = _arr[_ib]")
        emit(f"{ind}    elif _s2 == 3:")
        emit(f"{ind}        t_ = _ia & _ib")
        emit(f"{ind}    else:")  # mod
        emit(f"{ind}        if _ib == 0:")
        emit(f"{ind}            raise VMError('modulo by zero')")
        emit(f"{ind}        _q = abs(_ia) // abs(_ib)")
        emit(f"{ind}        if (_ia < 0) != (_ib < 0):")
        emit(f"{ind}            _q = -_q")
        emit(f"{ind}        if not {_MIN64} <= _q <= {_MAX64}:")
        emit(f"{ind}            _q = wrap(_q)")
        emit(f"{ind}        t_ = _ia - _q * _ib")
        emit(f"{ind}elif _s2 == 5:")
        emit(f"{ind}    t_ = _ia - _ib")
        emit(f"{ind}elif _s2 == 6:")
        emit(f"{ind}    t_ = _ia | _ib")
        emit(f"{ind}elif _s2 == 7:")
        emit(f"{ind}    t_ = _ia ^ _ib")
        emit(f"{ind}elif _s2 == 8:")
        emit(f"{ind}    t_ = _ia << (_ib & 63)")
        emit(f"{ind}elif _s2 == 9:")
        emit(f"{ind}    t_ = _ia >> (_ib & 63)")
        emit(f"{ind}else:")  # div
        emit(f"{ind}    if _ib == 0:")
        emit(f"{ind}        raise VMError('division by zero')")
        emit(f"{ind}    t_ = abs(_ia) // abs(_ib)")
        emit(f"{ind}    if (_ia < 0) != (_ib < 0):")
        emit(f"{ind}        t_ = -t_")
        emit(f"{ind}if not {_MIN64} <= t_ <= {_MAX64}:")
        emit(f"{ind}    t_ = wrap(t_)")

    def cmp_chain(ind: str) -> None:
        """Selector-dispatched comparison into ``taken``."""
        emit(f"{ind}if sel == 5:")
        emit(f"{ind}    taken = a_ >= b_")
        emit(f"{ind}elif sel == 2:")
        emit(f"{ind}    taken = a_ < b_")
        emit(f"{ind}elif sel == 1:")
        emit(f"{ind}    taken = a_ != b_")
        emit(f"{ind}elif sel == 0:")
        emit(f"{ind}    taken = a_ == b_")
        emit(f"{ind}elif sel == 3:")
        emit(f"{ind}    taken = a_ <= b_")
        emit(f"{ind}else:")
        emit(f"{ind}    taken = a_ > b_")

    fname = name[mode] + ("_prof" if profiled else "")
    args = "module, compiled, compile_fn, inputs, max_steps"
    if profiled:
        args += ", prof"
    emit(f"def {fname}({args}):")
    emit("    compiled_get = compiled.get")
    emit("    glob = [0] * module.globals_count")
    emit("    output = []")
    emit("    out_append = output.append")
    emit("    input_pos = 0")
    emit("    n_inputs = len(inputs)")
    emit("    heap = []")
    emit("    heap_append = heap.append")
    emit("    steps = 0")
    emit("    halted = False")
    emit("    wrap = wrap64")
    if T:
        emit("    trace = Trace()")
        emit("    ev_append = trace.branches.append")
    if F:
        emit("    pt_append = trace.points.append")
    emit("    cf = compiled_get(module.entry)")
    emit("    if cf is None:")
    emit("        cf = compile_fn(module.entry)")
    emit("    ops = cf.ops; aa = cf.aa; bb = cf.bb; cc = cf.cc")
    emit("    dd = cf.dd; ee = cf.ee")
    if T:
        emit("    evt = cf.evt; evf = cf.evf")
    if F:
        emit("    fs = cf.fs; ts = cf.ts")
    emit("    loc = [0] * cf.nlocals")
    emit("    stack = []")
    emit("    push = stack.append")
    emit("    pop = stack.pop")
    emit("    frames = []")
    emit("    frames_append = frames.append")
    emit("    frames_pop = frames.pop")
    emit("    pc = 0")
    if F:
        emit("    _ls = tuple(loc); _gs = tuple(glob)")
        emit("    for _k in cf.entry_sites:")
        emit("        pt_append(TracePoint(_k, _ls, _gs))")
    emit("    try:")
    emit("        while True:")
    emit("            op = ops[pc]")
    if profiled:
        # One list-index increment per dispatched slot — the entire
        # profiling hook. Fused slots count once here; their component
        # coverage is recovered from slot widths at report time.
        emit("            prof[op] += 1")
    # ---- singles -----------------------------------------------------
    emit("            if op < 45:")
    emit("                steps += 1")
    emit("                if steps > max_steps:")
    emit("                    raise StepLimitExceeded(max_steps, cf.name)")
    IND = "                "
    emit(f"{IND}if op < 10:")
    emit(f"{IND}    if op == 0:")  # load
    emit(f"{IND}        push(loc[aa[pc]])")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 1:")  # const
    emit(f"{IND}        push(aa[pc])")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 2:")  # add
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        v = stack[-1] + b_")
    emit(f"{IND}        stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 3:")  # store
    emit(f"{IND}        loc[aa[pc]] = pop()")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 4:")  # aload
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        a_ = stack[-1]")
    emit(f"{IND}        if not 0 <= a_ < len(heap):")
    emit(f"{IND}            raise VMError(f'bad array reference {{a_}}')")
    emit(f"{IND}        _arr = heap[a_]")
    emit(f"{IND}        if not 0 <= b_ < len(_arr):")
    emit(f"{IND}            raise VMError(")
    emit(f"{IND}                f'array index {{b_}} out of bounds "
         f"({{len(_arr)}})')")
    emit(f"{IND}        stack[-1] = _arr[b_]")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 5:")  # mul
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        v = stack[-1] * b_")
    emit(f"{IND}        stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 6:")  # band
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        v = stack[-1] & b_")
    emit(f"{IND}        stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 7:")  # sub
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        v = stack[-1] - b_")
    emit(f"{IND}        stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    fall(1, IND + "        ")
    emit(f"{IND}    if op == 8:")  # astore
    emit(f"{IND}        v = pop()")
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        a_ = pop()")
    emit(f"{IND}        if not 0 <= a_ < len(heap):")
    emit(f"{IND}            raise VMError(f'bad array reference {{a_}}')")
    emit(f"{IND}        _arr = heap[a_]")
    emit(f"{IND}        if not 0 <= b_ < len(_arr):")
    emit(f"{IND}            raise VMError(")
    emit(f"{IND}                f'array index {{b_}} out of bounds "
         f"({{len(_arr)}})')")
    emit(f"{IND}        _arr[b_] = v")
    fall(1, IND + "        ")
    # iinc
    emit(f"{IND}    _i = aa[pc]")
    emit(f"{IND}    v = loc[_i] + bb[pc]")
    emit(f"{IND}    loc[_i] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    fall(1, IND + "    ")
    # conditionals 10..21
    emit(f"{IND}if op < 22:")
    emit(f"{IND}    if op < 16:")
    emit(f"{IND}        b_ = pop()")
    emit(f"{IND}        a_ = pop()")
    emit(f"{IND}        sel = op - 10")
    emit(f"{IND}    else:")
    emit(f"{IND}        a_ = pop()")
    emit(f"{IND}        b_ = 0")
    emit(f"{IND}        sel = op - 16")
    cmp_chain(IND + "    ")
    branch_tail("aa[pc]", 1, IND + "    ")
    emit(f"{IND}if op == 22:")  # goto
    jump_tail("aa[pc]", IND + "    ")
    emit(f"{IND}if op == 23:")  # call
    emit(f"{IND}    callee = compiled_get(aa[pc])")
    emit(f"{IND}    if callee is None:")
    emit(f"{IND}        callee = compile_fn(aa[pc])")
    emit(f"{IND}    _np = callee.params")
    emit(f"{IND}    if len(stack) < _np:")
    emit(f"{IND}        raise VMError(")
    emit(f"{IND}            f'{{cf.name}}: stack underflow calling "
         f"{{callee.name}}')")
    emit(f"{IND}    if len(frames) >= 4095:")
    emit(f"{IND}        raise VMError('call stack overflow')")
    emit(f"{IND}    if _np:")
    emit(f"{IND}        _args = stack[-_np:]")
    emit(f"{IND}        del stack[-_np:]")
    emit(f"{IND}    else:")
    emit(f"{IND}        _args = []")
    emit(f"{IND}    frames_append((cf, pc + 1, loc, stack, push, pop))")
    emit(f"{IND}    cf = callee")
    emit(f"{IND}    ops = cf.ops; aa = cf.aa; bb = cf.bb; cc = cf.cc")
    emit(f"{IND}    dd = cf.dd; ee = cf.ee")
    if T:
        emit(f"{IND}    evt = cf.evt; evf = cf.evf")
    if F:
        emit(f"{IND}    fs = cf.fs; ts = cf.ts")
    emit(f"{IND}    loc = _args + [0] * (cf.nlocals - _np)")
    emit(f"{IND}    stack = []")
    emit(f"{IND}    push = stack.append")
    emit(f"{IND}    pop = stack.pop")
    emit(f"{IND}    pc = 0")
    if F:
        emit(f"{IND}    _ls = tuple(loc); _gs = tuple(glob)")
        emit(f"{IND}    for _k in cf.entry_sites:")
        emit(f"{IND}        pt_append(TracePoint(_k, _ls, _gs))")
    emit(f"{IND}    continue")
    emit(f"{IND}if op == 24:")  # ret
    emit(f"{IND}    _v = pop()")
    emit(f"{IND}    if not frames:")
    emit(f"{IND}        halted = True")
    emit(f"{IND}        break")
    emit(f"{IND}    cf, pc, loc, stack, push, pop = frames_pop()")
    emit(f"{IND}    push(_v)")
    emit(f"{IND}    ops = cf.ops; aa = cf.aa; bb = cf.bb; cc = cf.cc")
    emit(f"{IND}    dd = cf.dd; ee = cf.ee")
    if T:
        emit(f"{IND}    evt = cf.evt; evf = cf.evf")
    if F:
        emit(f"{IND}    fs = cf.fs; ts = cf.ts")
        snap("fs[pc - 1]", IND + "    ")
    emit(f"{IND}    continue")
    emit(f"{IND}if op == 25:")  # gload
    emit(f"{IND}    push(glob[aa[pc]])")
    fall(1, IND + "    ")
    emit(f"{IND}if op == 26:")  # gstore
    emit(f"{IND}    glob[aa[pc]] = pop()")
    fall(1, IND + "    ")
    emit(f"{IND}if op < 33:")  # div mod bor bxor shl shr (27..32)
    emit(f"{IND}    b_ = pop()")
    emit(f"{IND}    a_ = stack[-1]")
    emit(f"{IND}    if op == 27:")
    emit(f"{IND}        if b_ == 0:")
    emit(f"{IND}            raise VMError('division by zero')")
    emit(f"{IND}        v = abs(a_) // abs(b_)")
    emit(f"{IND}        if (a_ < 0) != (b_ < 0):")
    emit(f"{IND}            v = -v")
    emit(f"{IND}    elif op == 28:")
    emit(f"{IND}        if b_ == 0:")
    emit(f"{IND}            raise VMError('modulo by zero')")
    emit(f"{IND}        _q = abs(a_) // abs(b_)")
    emit(f"{IND}        if (a_ < 0) != (b_ < 0):")
    emit(f"{IND}            _q = -_q")
    emit(f"{IND}        if not {_MIN64} <= _q <= {_MAX64}:")
    emit(f"{IND}            _q = wrap(_q)")
    emit(f"{IND}        v = a_ - _q * b_")
    emit(f"{IND}    elif op == 29:")
    emit(f"{IND}        v = a_ | b_")
    emit(f"{IND}    elif op == 30:")
    emit(f"{IND}        v = a_ ^ b_")
    emit(f"{IND}    elif op == 31:")
    emit(f"{IND}        v = a_ << (b_ & 63)")
    emit(f"{IND}    else:")
    emit(f"{IND}        v = a_ >> (b_ & 63)")
    emit(f"{IND}    stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    fall(1, IND + "    ")
    emit(f"{IND}if op < 38:")  # neg bnot dup pop swap (33..37)
    emit(f"{IND}    if op == 33:")
    emit(f"{IND}        v = -stack[-1]")
    emit(f"{IND}        stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    emit(f"{IND}    elif op == 34:")
    emit(f"{IND}        v = ~stack[-1]")
    emit(f"{IND}        stack[-1] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    emit(f"{IND}    elif op == 35:")
    emit(f"{IND}        push(stack[-1])")
    emit(f"{IND}    elif op == 36:")
    emit(f"{IND}        pop()")
    emit(f"{IND}    else:")
    emit(f"{IND}        stack[-1], stack[-2] = stack[-2], stack[-1]")
    fall(1, IND + "    ")
    emit(f"{IND}if op == 38:")  # newarray
    emit(f"{IND}    _n = pop()")
    emit(f"{IND}    if _n < 0 or _n > 10_000_000:")
    emit(f"{IND}        raise VMError(f'bad array length {{_n}}')")
    emit(f"{IND}    heap_append([0] * _n)")
    emit(f"{IND}    push(len(heap) - 1)")
    fall(1, IND + "    ")
    emit(f"{IND}if op == 39:")  # alen
    emit(f"{IND}    a_ = stack[-1]")
    emit(f"{IND}    if not 0 <= a_ < len(heap):")
    emit(f"{IND}        raise VMError(f'bad array reference {{a_}}')")
    emit(f"{IND}    stack[-1] = len(heap[a_])")
    fall(1, IND + "    ")
    emit(f"{IND}if op == 40:")  # print
    emit(f"{IND}    out_append(pop())")
    fall(1, IND + "    ")
    emit(f"{IND}if op == 41:")  # input
    emit(f"{IND}    if input_pos >= n_inputs:")
    emit(f"{IND}        raise VMError('input sequence exhausted')")
    emit(f"{IND}    push(inputs[input_pos])")
    emit(f"{IND}    input_pos += 1")
    fall(1, IND + "    ")
    emit(f"{IND}if op == 42:")  # nop
    fall(1, IND + "    ")
    emit(f"{IND}if op == 43:")  # halt
    emit(f"{IND}    halted = True")
    emit(f"{IND}    break")
    # OP_END sentinel
    emit(f"{IND}raise VMError(f'{{cf.name}}: fell off the end of the code')")
    # ---- fused slots -------------------------------------------------
    J = "            "
    emit(f"{J}elif op < 63:")
    emit(f"{J}    if op < 54:")  # push-push pairs, +2 steps
    emit(f"{J}        steps += 2")
    emit(f"{J}        if steps > max_steps:")
    emit(f"{J}            raise StepLimitExceeded(max_steps, cf.name)")
    K = J + "        "
    for opn, (s1, s2) in {
        45: ("loc[aa[pc]]", "loc[bb[pc]]"),
        46: ("loc[aa[pc]]", "bb[pc]"),
        47: ("loc[aa[pc]]", "glob[bb[pc]]"),
        48: ("aa[pc]", "loc[bb[pc]]"),
        49: ("aa[pc]", "bb[pc]"),
        50: ("aa[pc]", "glob[bb[pc]]"),
        51: ("glob[aa[pc]]", "loc[bb[pc]]"),
        52: ("glob[aa[pc]]", "bb[pc]"),
    }.items():
        emit(f"{K}if op == {opn}:")
        emit(f"{K}    push({s1})")
        emit(f"{K}    push({s2})")
        fall(2, K + "    ")
    emit(f"{K}push(glob[aa[pc]])")  # 53 GG2
    emit(f"{K}push(glob[bb[pc]])")
    fall(2, K)
    emit(f"{J}    else:")  # push-push-binop triples, +3 steps
    emit(f"{J}        steps += 3")
    emit(f"{J}        if steps > max_steps:")
    emit(f"{J}            raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}if op == 62:")  # CCB constant-folded
    emit(f"{K}    push(aa[pc])")
    fall(3, K + "    ")
    for opn, (s1, s2) in {
        54: ("loc[aa[pc]]", "loc[bb[pc]]"),
        55: ("loc[aa[pc]]", "bb[pc]"),
        56: ("loc[aa[pc]]", "glob[bb[pc]]"),
        57: ("aa[pc]", "loc[bb[pc]]"),
        58: ("aa[pc]", "glob[bb[pc]]"),
        59: ("glob[aa[pc]]", "loc[bb[pc]]"),
        60: ("glob[aa[pc]]", "bb[pc]"),
    }.items():
        emit(f"{K}{'if' if opn == 54 else 'elif'} op == {opn}:")
        emit(f"{K}    a_ = {s1}; b_ = {s2}")
    emit(f"{K}else:")  # 61 GGB
    emit(f"{K}    a_ = glob[aa[pc]]; b_ = glob[bb[pc]]")
    emit(f"{K}sel = cc[pc]")
    binop_chain(lambda v: f"push({v})", 3, K)
    emit(f"{J}elif op < 71:")  # push-push-compare triples, +3 steps
    emit(f"{J}    steps += 3")
    emit(f"{J}    if steps > max_steps:")
    emit(f"{J}        raise StepLimitExceeded(max_steps, cf.name)")
    K = J + "    "
    for opn, (s1, s2) in {
        63: ("loc[aa[pc]]", "loc[bb[pc]]"),
        64: ("loc[aa[pc]]", "bb[pc]"),
        65: ("loc[aa[pc]]", "glob[bb[pc]]"),
        66: ("aa[pc]", "loc[bb[pc]]"),
        67: ("aa[pc]", "glob[bb[pc]]"),
        68: ("glob[aa[pc]]", "loc[bb[pc]]"),
        69: ("glob[aa[pc]]", "bb[pc]"),
    }.items():
        emit(f"{K}{'if' if opn == 63 else 'elif'} op == {opn}:")
        emit(f"{K}    a_ = {s1}; b_ = {s2}")
    emit(f"{K}else:")  # 70 GGI
    emit(f"{K}    a_ = glob[aa[pc]]; b_ = glob[bb[pc]]")
    emit(f"{K}sel = cc[pc]")
    cmp_chain(K)
    branch_tail("dd[pc]", 3, K)
    emit(f"{J}elif op < 80:")  # push-binop / push-compare pairs, +2
    emit(f"{J}    steps += 2")
    emit(f"{J}    if steps > max_steps:")
    emit(f"{J}        raise StepLimitExceeded(max_steps, cf.name)")
    K = J + "    "
    emit(f"{K}if op < 74:")  # LB CB GB: in-place binop with stack top
    emit(f"{K}    if op == 71:")
    emit(f"{K}        b_ = loc[aa[pc]]")
    emit(f"{K}    elif op == 72:")
    emit(f"{K}        b_ = aa[pc]")
    emit(f"{K}    else:")
    emit(f"{K}        b_ = glob[aa[pc]]")
    emit(f"{K}    a_ = stack[-1]")
    emit(f"{K}    sel = bb[pc]")
    binop_chain(lambda v: f"stack[-1] = {v}", 2, K + "    ")
    emit(f"{K}if op < 77:")  # LIC CIC GIC: b from src, a popped
    emit(f"{K}    if op == 74:")
    emit(f"{K}        b_ = loc[aa[pc]]")
    emit(f"{K}    elif op == 75:")
    emit(f"{K}        b_ = aa[pc]")
    emit(f"{K}    else:")
    emit(f"{K}        b_ = glob[aa[pc]]")
    emit(f"{K}    a_ = pop()")
    emit(f"{K}else:")  # LIZ CIZ GIZ: a from src, compare against zero
    emit(f"{K}    if op == 77:")
    emit(f"{K}        a_ = loc[aa[pc]]")
    emit(f"{K}    elif op == 78:")
    emit(f"{K}        a_ = aa[pc]")
    emit(f"{K}    else:")
    emit(f"{K}        a_ = glob[aa[pc]]")
    emit(f"{K}    b_ = 0")
    emit(f"{K}sel = bb[pc]")
    cmp_chain(K)
    branch_tail("cc[pc]", 2, K)
    emit(f"{J}elif op < 95:")  # binop-store / push-store / store-load, +2
    emit(f"{J}    steps += 2")
    emit(f"{J}    if steps > max_steps:")
    emit(f"{J}        raise StepLimitExceeded(max_steps, cf.name)")
    K = J + "    "
    emit(f"{K}if op == 80:")  # BSL
    emit(f"{K}    b_ = pop()")
    emit(f"{K}    a_ = pop()")
    emit(f"{K}    sel = bb[pc]")
    binop_chain(lambda v: f"loc[aa[pc]] = {v}", 2, K + "    ")
    emit(f"{K}if op == 81:")  # BSG
    emit(f"{K}    b_ = pop()")
    emit(f"{K}    a_ = pop()")
    emit(f"{K}    sel = bb[pc]")
    binop_chain(lambda v: f"glob[aa[pc]] = {v}", 2, K + "    ")
    for opn, src in ((82, "loc[aa[pc]]"), (83, "aa[pc]"), (84, "glob[aa[pc]]")):
        emit(f"{K}if op == {opn}:")
        emit(f"{K}    loc[bb[pc]] = {src}")
        fall(2, K + "    ")
    for opn, src in ((85, "loc[aa[pc]]"), (86, "aa[pc]"), (87, "glob[aa[pc]]")):
        emit(f"{K}if op == {opn}:")
        emit(f"{K}    glob[bb[pc]] = {src}")
        fall(2, K + "    ")
    emit(f"{K}if op == 88:")  # store s; load s
    emit(f"{K}    loc[aa[pc]] = stack[-1]")
    fall(2, K + "    ")
    emit(f"{K}if op == 89:")  # store s1; load s2
    emit(f"{K}    loc[aa[pc]] = pop()")
    emit(f"{K}    push(loc[bb[pc]])")
    fall(2, K + "    ")
    emit(f"{K}if op == 90:")  # store s; goto t
    emit(f"{K}    loc[aa[pc]] = pop()")
    jump_tail("bb[pc]", K + "    ")
    emit(f"{K}_i = aa[pc]")  # 91: iinc s d; goto t
    emit(f"{K}v = loc[_i] + bb[pc]")
    emit(f"{K}loc[_i] = v if {_MIN64} <= v <= {_MAX64} else wrap(v)")
    jump_tail("cc[pc]", K)
    # ---- second-order superinstructions ------------------------------
    emit(f"{J}else:")
    K = J + "    "
    emit(f"{K}if op == 99:")  # LCBSG: load;const;BINOP;store;goto
    emit(f"{K}    steps += 5")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}    a_ = loc[aa[pc]]")
    emit(f"{K}    b_ = bb[pc]")
    emit(f"{K}    sel = cc[pc]")
    binop_chain(
        lambda v: f"loc[dd[pc]] = {v}", 5, K + "    ",
        tail=lambda ind2: jump_tail("ee[pc]", ind2),
    )
    emit(f"{K}if op == 98:")  # GLB2: gload;load;OP1;OP2
    emit(f"{K}    steps += 4")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    inner_chain("glob[aa[pc]]", "loc[bb[pc]]", "cc[pc]", K + "    ")
    emit(f"{K}    a_ = stack[-1]")
    emit(f"{K}    b_ = t_")
    emit(f"{K}    sel = dd[pc]")
    binop_chain(lambda v: f"stack[-1] = {v}", 4, K + "    ")
    emit(f"{K}if op == 101:")  # LBCB: load;OP1;const;OP2
    emit(f"{K}    steps += 4")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    inner_chain("stack[-1]", "loc[aa[pc]]", "bb[pc]", K + "    ")
    emit(f"{K}    a_ = t_")
    emit(f"{K}    b_ = cc[pc]")
    emit(f"{K}    sel = dd[pc]")
    binop_chain(lambda v: f"stack[-1] = {v}", 4, K + "    ")
    emit(f"{K}if op == 102:")  # BSLLCB: OP1;store;load;const;OP2
    emit(f"{K}    steps += 5")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}    _b1 = pop()")
    emit(f"{K}    _a1 = pop()")
    inner_chain("_a1", "_b1", "bb[pc]", K + "    ")
    emit(f"{K}    loc[aa[pc]] = t_")
    emit(f"{K}    a_ = loc[cc[pc]]")
    emit(f"{K}    b_ = dd[pc]")
    emit(f"{K}    sel = ee[pc]")
    binop_chain(lambda v: f"push({v})", 5, K + "    ")
    emit(f"{K}if op == 97:")  # LGC: load;gload;const;BINOP
    emit(f"{K}    steps += 4")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}    push(loc[aa[pc]])")
    emit(f"{K}    a_ = glob[bb[pc]]")
    emit(f"{K}    b_ = cc[pc]")
    emit(f"{K}    sel = dd[pc]")
    binop_chain(lambda v: f"push({v})", 4, K + "    ")
    emit(f"{K}if op == 95:")  # CBS: const;BINOP;store
    emit(f"{K}    steps += 3")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}    a_ = pop()")
    emit(f"{K}    b_ = aa[pc]")
    emit(f"{K}    sel = bb[pc]")
    binop_chain(lambda v: f"loc[cc[pc]] = {v}", 3, K + "    ")
    emit(f"{K}if op == 96:")  # CBB: const;OP1;OP2;store
    emit(f"{K}    steps += 4")
    emit(f"{K}    if steps > max_steps:")
    emit(f"{K}        raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}    _a1 = pop()")
    inner_chain("_a1", "aa[pc]", "bb[pc]", K + "    ")
    emit(f"{K}    a_ = pop()")
    emit(f"{K}    b_ = t_")
    emit(f"{K}    sel = dd[pc]")
    binop_chain(lambda v: f"loc[cc[pc]] = {v}", 4, K + "    ")
    # 100: BLB: OP1;load;OP2
    emit(f"{K}steps += 3")
    emit(f"{K}if steps > max_steps:")
    emit(f"{K}    raise StepLimitExceeded(max_steps, cf.name)")
    emit(f"{K}_b1 = pop()")
    inner_chain("stack[-1]", "_b1", "cc[pc]", K)
    emit(f"{K}a_ = t_")
    emit(f"{K}b_ = loc[aa[pc]]")
    emit(f"{K}sel = bb[pc]")
    binop_chain(lambda v: f"stack[-1] = {v}", 3, K)
    # ---- epilogue ----------------------------------------------------
    # Underflow inside a *fused* slot cannot name the exact component
    # the seed engine would blame (the pop interleaving is collapsed),
    # so the cold error path replays the deterministic program on the
    # reference engine to recover the seed-identical diagnostic.
    emit("    except IndexError:")
    emit("        if op >= 45:")
    emit("            _exc = _seed_diagnostic_replay(module, inputs,"
         " max_steps)")
    emit("            if _exc is not None:")
    emit("                raise _exc from None")
    emit("        raise VMError(")
    emit("            f'{cf.name}@{cf.raw_of[pc] if pc < len(cf.raw_of)"
         " else pc}: '")
    emit("            f'stack underflow on {cf.mnemonic(pc)}') from None")
    trace_expr = "trace" if T else "None"
    emit(f"    return RunResult(output=output, steps=steps, "
         f"trace={trace_expr}, halted=halted)")
    return "\n".join(L) + "\n"


def _seed_diagnostic_replay(module, inputs, max_steps):
    """Re-run a trapped program on the reference engine (cold path).

    WVM programs are deterministic, so the replay reaches the same
    trap; the reference engine attributes it to the exact component
    instruction, which a fused slot cannot do from inside the fast
    loop. Returns the replayed :class:`VMError`, or ``None`` if the
    replay unexpectedly diverges (the caller then falls back to its
    own slot-level message).
    """
    from ._reference import run_module_reference

    try:
        run_module_reference(module, inputs, max_steps=max_steps)
    except VMError as exc:
        return exc
    return None


_MODE_NAMES: Dict[Optional[str], str] = {
    None: "_run_untraced",
    "branch": "_run_branch",
    "full": "_run_full",
}


def _materialize_loop(mode: Optional[str], profiled: bool = False) -> Callable:
    namespace: Dict = {
        "wrap64": wrap64,
        "VMError": VMError,
        "StepLimitExceeded": StepLimitExceeded,
        "Trace": Trace,
        "TracePoint": TracePoint,
        "RunResult": RunResult,
        "_seed_diagnostic_replay": _seed_diagnostic_replay,
    }
    fname = _MODE_NAMES[mode] + ("_prof" if profiled else "")
    source = _gen_loop(mode, profiled)
    code = compile(source, f"<wvm-loop:{fname}>", "exec")
    exec(code, namespace)  # noqa: S102 - internal template, no user input
    return namespace[fname]


_LOOPS: Dict[Optional[str], Callable] = {
    mode: _materialize_loop(mode) for mode in _MODE_NAMES
}

#: Profiled twins, generated on first request so the common import
#: path never pays their codegen.
_PROFILED_LOOPS: Dict[Optional[str], Callable] = {}


def _profiled_loop(mode: Optional[str]) -> Callable:
    loop = _PROFILED_LOOPS.get(mode)
    if loop is None:
        loop = _PROFILED_LOOPS[mode] = _materialize_loop(mode, profiled=True)
    return loop


class Interpreter:
    """Executes a module; optionally records a trace.

    ``trace_mode``:
      * ``None`` — no tracing (fastest; cost evaluation runs);
      * ``"branch"`` — record conditional-branch events only
        (recognition);
      * ``"full"`` — branch events plus per-site variable snapshots
        (the embedding-time tracing phase).

    ``profile=True`` selects the profiled loop twin, which counts
    every dispatched slot into a per-opcode array surfaced as
    ``RunResult.dispatch_counts`` (cumulative across ``run`` calls on
    one interpreter). Plain runs never touch the profiled loops.

    Functions are compiled to the dense dispatch form lazily, on first
    call, and cached for the lifetime of the interpreter — so cold
    code (most of a jess-like module) never pays compilation.
    """

    def __init__(
        self,
        module: Module,
        max_steps: int = DEFAULT_MAX_STEPS,
        trace_mode: Optional[str] = None,
        profile: bool = False,
    ):
        if trace_mode not in (None, "branch", "full"):
            raise ValueError(f"bad trace_mode {trace_mode!r}")
        module.validate_structure()
        self.module = module
        self.max_steps = max_steps
        self.trace_mode = trace_mode
        self._compiled: Dict[str, CompiledFunction] = {}
        self.dispatch_counts: Optional[list] = (
            [0] * NUM_OPCODES if profile else None
        )
        self._loop = (
            _profiled_loop(trace_mode) if profile else _LOOPS[trace_mode]
        )

    # -- public API ---------------------------------------------------------

    def run(self, inputs: Sequence[int] = ()) -> RunResult:
        """Execute from the entry function until halt or return.

        ``inputs`` is the secret input sequence consumed by ``input``
        instructions (the watermark key at trace time).
        """
        if self.dispatch_counts is None:
            return self._loop(
                self.module, self._compiled, self._compile, inputs,
                self.max_steps,
            )
        result = self._loop(
            self.module, self._compiled, self._compile, inputs,
            self.max_steps, self.dispatch_counts,
        )
        result.dispatch_counts = self.dispatch_counts
        return result

    # -- helpers -------------------------------------------------------------

    def _compile(self, name: str) -> CompiledFunction:
        fn = self.module.functions.get(name)
        if fn is None:
            raise VMError(f"call to unknown function {name!r}")
        code = CompiledFunction(fn)
        self._compiled[name] = code
        return code


def run_module(
    module: Module,
    inputs: Sequence[int] = (),
    trace_mode: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    profile: bool = False,
) -> RunResult:
    """Convenience wrapper: build an interpreter and run the module."""
    return Interpreter(
        module, max_steps=max_steps, trace_mode=trace_mode, profile=profile
    ).run(inputs)
