"""WVM disassembler: the inverse of :mod:`repro.vm.assembler`.

``disassemble(assemble(text))`` produces text that re-assembles into a
structurally identical module (round-trip property tested in
``tests/test_vm_asm.py``).
"""

from __future__ import annotations

from typing import List

from .program import Function, Module


def disassemble_function(fn: Function) -> str:
    lines: List[str] = [
        f".func {fn.name} params={fn.params} locals={fn.locals_count}"
    ]
    for instr in fn.code:
        if instr.is_label:
            lines.append(f"{instr.arg}:")
        elif instr.op == "iinc":
            lines.append(f"    iinc {instr.arg} {instr.arg2}")
        elif instr.arg is not None:
            lines.append(f"    {instr.op} {instr.arg}")
        else:
            lines.append(f"    {instr.op}")
    lines.append(".end")
    return "\n".join(lines)


def disassemble(module: Module) -> str:
    """Render a module as assemblable text."""
    parts: List[str] = []
    if module.globals_count:
        parts.append(f".globals {module.globals_count}")
    parts.append(f".entry {module.entry}")
    parts.append("")
    for name in sorted(module.functions):
        parts.append(disassemble_function(module.functions[name]))
        parts.append("")
    return "\n".join(parts)
