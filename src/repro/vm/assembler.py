"""Textual assembler for WVM modules.

The assembly format is line-based:

.. code-block:: text

    ; comment
    .globals 2
    .entry main

    .func main params=0 locals=2
        const 25
        store 0
    loop:
        load 0
        ifle done
        iinc 0 -1
        goto loop
    done:
        const 0
        ret
    .end

Labels are ``name:`` lines; directives start with ``.``; everything
else is ``opcode [operand [operand]]``. Integer operands accept
decimal and ``0x`` hex with optional sign. The assembler is the
canonical way tests and examples build small programs, and the
disassembler's output round-trips through it.
"""

from __future__ import annotations

import re
from typing import Optional

from .instructions import (
    GLOBAL_OPERANDS,
    LABEL_OPERANDS,
    LOCAL_OPERANDS,
    OPCODES,
    Instruction,
)
from .program import Function, Module

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):$")
_FUNC_RE = re.compile(
    r"^\.func\s+([A-Za-z_][A-Za-z0-9_.$]*)\s+params=(\d+)\s+locals=(\d+)$"
)
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")


class AssemblyError(Exception):
    """Syntax or structural error in WVM assembly text."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _parse_int(token: str) -> int:
    return int(token, 0)


def assemble(text: str) -> Module:
    """Assemble source text into a validated :class:`Module`."""
    module = Module()
    current: Optional[Function] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("."):
            current = _handle_directive(line, line_no, module, current)
            continue

        if current is None:
            raise AssemblyError(line_no, f"code outside .func: {line!r}")

        label_match = _LABEL_RE.match(line)
        if label_match:
            current.code.append(Instruction("label", label_match.group(1)))
            continue

        current.code.append(_parse_instruction(line, line_no))

    if current is not None:
        raise AssemblyError(0, f"missing .end for function {current.name!r}")
    module.validate_structure()
    return module


def _handle_directive(
    line: str, line_no: int, module: Module, current: Optional[Function]
) -> Optional[Function]:
    if line.startswith(".func"):
        if current is not None:
            raise AssemblyError(line_no, "nested .func")
        m = _FUNC_RE.match(line)
        if not m:
            raise AssemblyError(
                line_no, ".func needs: .func NAME params=N locals=N"
            )
        name, params, locals_count = m.group(1), int(m.group(2)), int(m.group(3))
        fn = Function(name, params, locals_count)
        module.add(fn)
        return fn
    if line == ".end":
        if current is None:
            raise AssemblyError(line_no, ".end without .func")
        return None
    if line.startswith(".globals"):
        parts = line.split()
        if len(parts) != 2 or not parts[1].isdigit():
            raise AssemblyError(line_no, ".globals needs a count")
        module.globals_count = int(parts[1])
        return current
    if line.startswith(".entry"):
        parts = line.split()
        if len(parts) != 2:
            raise AssemblyError(line_no, ".entry needs a function name")
        module.entry = parts[1]
        return current
    raise AssemblyError(line_no, f"unknown directive {line.split()[0]!r}")


def _parse_instruction(line: str, line_no: int) -> Instruction:
    parts = line.split()
    op = parts[0]
    if op not in OPCODES:
        raise AssemblyError(line_no, f"unknown opcode {op!r}")
    if op == "label":
        raise AssemblyError(line_no, "use 'name:' syntax for labels")
    operands = parts[1:]

    if op == "iinc":
        if len(operands) != 2:
            raise AssemblyError(line_no, "iinc needs slot and delta")
        return Instruction(op, _parse_int(operands[0]), _parse_int(operands[1]))

    if op in LABEL_OPERANDS or op == "call":
        if len(operands) != 1:
            raise AssemblyError(line_no, f"{op} needs one operand")
        return Instruction(op, operands[0])

    if op in LOCAL_OPERANDS or op in GLOBAL_OPERANDS or op == "const":
        if len(operands) != 1 or not _INT_RE.match(operands[0]):
            raise AssemblyError(line_no, f"{op} needs one integer operand")
        return Instruction(op, _parse_int(operands[0]))

    if operands:
        raise AssemblyError(line_no, f"{op} takes no operands")
    return Instruction(op)
