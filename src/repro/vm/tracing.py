"""Trace data model for WVM executions (paper Section 3.1).

Two granularities, matching the two phases of the algorithm:

* **Full traces** (embedding time): the sequence of executed trace
  sites — function entries and label positions, i.e. basic-block
  boundaries — each with a snapshot of the local variables and module
  globals, "the value of every local variable and every static and
  instance field of the containing class". The embedder mines these
  for insertion frequencies and for variable values to build
  condition-code predicates from.
* **Branch traces** (recognition time): the sequence of conditional
  branch events, each the pair (static branch instruction, dynamic
  follower). :func:`Trace.branch_pairs` feeds these directly to
  :func:`repro.core.bitstring.decode_bits`.

A full trace always contains a branch trace too, so one tracing run
serves both needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from .instructions import Instruction


@dataclass(frozen=True)
class SiteKey:
    """Stable identity of a trace site: function name + site name.

    The site name is a label name, or ``"<entry>"`` for function entry.
    """

    function: str
    site: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function}:{self.site}"


@dataclass
class TracePoint:
    """One execution of a trace site, with variable snapshots."""

    key: SiteKey
    locals_snapshot: Tuple[int, ...]
    globals_snapshot: Tuple[int, ...]


@dataclass
class BranchEvent:
    """One execution of a conditional branch.

    ``branch`` is the static :class:`Instruction` object (identity
    matters); ``follower`` is the instruction object executed next,
    which plays the role of "the block that immediately follows" in
    the paper's bit-string definition. ``taken`` is recorded for
    diagnostics only — the decoder never uses it.
    """

    branch: Instruction
    follower: Instruction
    taken: bool


@dataclass
class Trace:
    """A full or branch-only execution trace."""

    points: List[TracePoint] = field(default_factory=list)
    branches: List[BranchEvent] = field(default_factory=list)

    def branch_pairs(self) -> List[Tuple[Hashable, Hashable]]:
        """(branch identity, follower identity) pairs for the decoder."""
        return [(e.branch, e.follower) for e in self.branches]

    def site_counts(self) -> Dict[SiteKey, int]:
        """Execution frequency of every trace site."""
        counts: Dict[SiteKey, int] = {}
        for p in self.points:
            counts[p.key] = counts.get(p.key, 0) + 1
        return counts

    def site_snapshots(self, key: SiteKey) -> List[TracePoint]:
        """All executions of one site, in order."""
        return [p for p in self.points if p.key == key]


@dataclass
class RunResult:
    """Result of executing a module.

    ``steps`` counts executed (non-label) instructions and is the
    deterministic stand-in for running time throughout the evaluation
    (see DESIGN.md, "Known deviations").

    ``dispatch_counts`` is populated only by profiled runs
    (``profile=True``): a per-opcode array of dispatched slots, raw
    material for :class:`repro.obs.vmprofile.DispatchProfile`.
    """

    output: List[int]
    steps: int
    trace: Optional[Trace] = None
    halted: bool = True
    dispatch_counts: Optional[List[int]] = None
