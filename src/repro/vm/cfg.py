"""Control-flow graphs over WVM functions.

Used by the watermark placement logic (finding insertion sites), by
several attacks (basic-block reordering, block splitting), and by the
verifier. Blocks are half-open index ranges over ``Function.code``;
a block's *name* is the label that leads it, or a synthetic name for
fall-through leaders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .instructions import (
    CONDITIONAL_BRANCHES,
    Instruction,
    UNCONDITIONAL_TRANSFERS,
)
from .program import Function


@dataclass
class BasicBlock:
    """A maximal straight-line region of a function.

    ``start``/``end`` are indices into ``Function.code`` (half-open).
    ``name`` is the leading label, or ``"@<index>"`` when the block
    starts without one.
    """

    name: str
    start: int
    end: int
    successors: List[str] = field(default_factory=list)

    def instructions(self, fn: Function) -> List[Instruction]:
        return [i for i in fn.code[self.start:self.end] if not i.is_label]

    def terminator(self, fn: Function) -> Optional[Instruction]:
        """The block's last real instruction, if any."""
        for instr in reversed(fn.code[self.start:self.end]):
            if not instr.is_label:
                return instr
        return None


@dataclass
class CFG:
    """Control-flow graph of one function."""

    function: Function
    blocks: Dict[str, BasicBlock]
    order: List[str]  # block names in code order
    entry: str

    def successors(self, name: str) -> List[str]:
        return self.blocks[name].successors

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors:
                preds[succ].append(name)
        return preds

    def reachable(self) -> Set[str]:
        """Block names reachable from the entry block."""
        seen: Set[str] = set()
        work = [self.entry]
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            work.extend(self.blocks[name].successors)
        return seen

    def back_edges(self) -> List[Tuple[str, str]]:
        """(source, target) pairs forming loops (DFS back edges).

        A block that is the target of a back edge (or reaches itself)
        is considered *inside a loop*; the native tamper-proofer uses
        the analogous notion to avoid hot candidates.
        """
        color: Dict[str, int] = {}
        out: List[Tuple[str, str]] = []
        if not self.blocks:
            return out
        # Iterative DFS to avoid recursion limits on long CFGs.
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        color[self.entry] = 1
        while stack:
            name, child = stack[-1]
            succs = self.blocks[name].successors
            if child < len(succs):
                stack[-1] = (name, child + 1)
                succ = succs[child]
                c = color.get(succ, 0)
                if c == 1:
                    out.append((name, succ))
                elif c == 0:
                    color[succ] = 1
                    stack.append((succ, 0))
            else:
                color[name] = 2
                stack.pop()
        return out

    def loop_blocks(self) -> Set[str]:
        """Blocks that participate in some cycle (natural-loop bodies)."""
        preds = self.predecessors()
        in_loop: Set[str] = set()
        for source, target in self.back_edges():
            # Natural loop of back edge source->target: target plus all
            # blocks reaching source without passing through target.
            body = {target, source}
            work = [source]
            while work:
                b = work.pop()
                for p in preds.get(b, []):
                    if p not in body:
                        body.add(p)
                        work.append(p)
            in_loop |= body
        return in_loop


def build_cfg(fn: Function) -> CFG:
    """Construct the CFG of ``fn``.

    Leaders: index 0, every label, and every instruction following a
    branch or unconditional transfer.
    """
    code = fn.code
    labels = fn.labels()
    leaders: Set[int] = {0} if code else set()
    for idx, instr in enumerate(code):
        if instr.is_label:
            leaders.add(idx)
        elif (
            instr.op in CONDITIONAL_BRANCHES
            or instr.op in UNCONDITIONAL_TRANSFERS
        ):
            if idx + 1 < len(code):
                leaders.add(idx + 1)

    ordered = sorted(leaders)
    names: Dict[int, str] = {}
    for idx in ordered:
        instr = code[idx]
        names[idx] = instr.arg if instr.is_label else f"@{idx}"

    blocks: Dict[str, BasicBlock] = {}
    order: List[str] = []
    for pos, start in enumerate(ordered):
        end = ordered[pos + 1] if pos + 1 < len(ordered) else len(code)
        name = names[start]
        block = BasicBlock(name, start, end)
        blocks[name] = block
        order.append(name)

    def block_of_label(label_name: str) -> str:
        idx = labels[label_name]
        # A label is always a leader, so it names its block.
        return names[idx]

    for pos, name in enumerate(order):
        block = blocks[name]
        term = block.terminator(fn)
        next_name = order[pos + 1] if pos + 1 < len(order) else None
        if term is None:
            if next_name is not None:
                block.successors.append(next_name)
            continue
        if term.op in CONDITIONAL_BRANCHES:
            block.successors.append(block_of_label(term.arg))
            if next_name is not None:
                block.successors.append(next_name)
        elif term.op == "goto":
            block.successors.append(block_of_label(term.arg))
        elif term.op in ("ret", "halt"):
            pass
        else:
            if next_name is not None:
                block.successors.append(next_name)

    entry = order[0] if order else ""
    return CFG(fn, blocks, order, entry)
