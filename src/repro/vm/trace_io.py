"""Trace serialization (paper Section 3.1).

    "In the tracing phase, we instrument the input program to write to
    a file the sequence of basic blocks it executes. At each trace
    point we also store the value of every local variable ..."

The embedding pipeline can therefore be split across processes: trace
once on the machine that has the secret input, ship the trace file,
embed elsewhere. Two formats coexist:

* **JSON (version 1)** — :func:`dump_trace` / :func:`load_trace`, the
  original human-greppable document. Kept for compatibility and for
  debugging sessions where seeing the trace matters more than size.
* **Binary (version 2)** — :func:`dump_trace_binary` /
  :func:`load_trace_binary` on top of the streaming
  :class:`BinaryTraceWriter` / :class:`BinaryTraceReader` pair. A
  jess-scale full trace is tens of megabytes as JSON; the binary form
  interns every function/site name once (``DEF`` records emitted
  inline, on first use), stores integers as zigzag LEB128 varints,
  run-length-encodes repeated branch events, and finishes with an
  explicit ``END`` marker so truncation is always detected. This is
  what :class:`repro.pipeline.prepare.PreparedProgram` embeds in its
  pickle, which is why cache artifacts stay cheap to persist.

Branch events reference static instructions, whose identity is
object-based in memory; on disk they are keyed by a stable
``(function, instruction ordinal)`` pair, which is exactly as stable
as the module file the trace was produced from. Loading re-binds the
events against a module with matching structure.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Dict, List, Optional, TextIO, Tuple

from .instructions import Instruction
from .program import Module
from .tracing import BranchEvent, SiteKey, Trace, TracePoint

FORMAT_VERSION = 1

#: First bytes of every binary trace stream, followed by one version byte.
BINARY_MAGIC = b"WVMT"
BINARY_FORMAT_VERSION = 2


class TraceFormatError(Exception):
    """The trace file is malformed or does not match the module."""


def _instruction_index(module: Module) -> Dict[int, Tuple[str, int]]:
    """id(instruction) -> (function, ordinal among real instructions)."""
    out: Dict[int, Tuple[str, int]] = {}
    for name, fn in module.functions.items():
        for ordinal, instr in enumerate(fn.code):
            out[id(instr)] = (name, ordinal)
    return out


def _instruction_table(module: Module) -> Dict[Tuple[str, int], Instruction]:
    out: Dict[Tuple[str, int], Instruction] = {}
    for name, fn in module.functions.items():
        for ordinal, instr in enumerate(fn.code):
            out[(name, ordinal)] = instr
    return out


def dump_trace(trace: Trace, module: Module, fp: TextIO) -> None:
    """Write a trace produced from ``module`` to a file object."""
    index = _instruction_index(module)

    def key_of(instr: Instruction) -> List:
        try:
            fn, ordinal = index[id(instr)]
        except KeyError:
            raise TraceFormatError(
                "trace references an instruction not present in the module"
            ) from None
        return [fn, ordinal]

    doc = {
        "version": FORMAT_VERSION,
        "points": [
            {
                "function": p.key.function,
                "site": p.key.site,
                "locals": list(p.locals_snapshot),
                "globals": list(p.globals_snapshot),
            }
            for p in trace.points
        ],
        "branches": [
            {
                "branch": key_of(e.branch),
                "follower": key_of(e.follower),
                "taken": e.taken,
            }
            for e in trace.branches
        ],
    }
    json.dump(doc, fp)


def load_trace(fp: TextIO, module: Module) -> Trace:
    """Read a trace back, re-binding events against ``module``.

    Raises :class:`TraceFormatError` when the file is malformed or
    references instructions the module does not have (e.g. the module
    was edited since tracing).
    """
    try:
        doc = json.load(fp)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not a trace file: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {doc.get('version')!r}"
        )
    table = _instruction_table(module)
    trace = Trace()
    try:
        for p in doc["points"]:
            trace.points.append(
                TracePoint(
                    SiteKey(p["function"], p["site"]),
                    tuple(p["locals"]),
                    tuple(p["globals"]),
                )
            )
        for e in doc["branches"]:
            b_fn, b_ord = e["branch"]
            f_fn, f_ord = e["follower"]
            try:
                branch = table[(b_fn, b_ord)]
                follower = table[(f_fn, f_ord)]
            except KeyError:
                raise TraceFormatError(
                    f"trace references missing instruction "
                    f"{b_fn}[{b_ord}] / {f_fn}[{f_ord}]"
                ) from None
            trace.branches.append(BranchEvent(branch, follower, e["taken"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace file: {exc}") from exc
    return trace


# -- binary format (version 2) ----------------------------------------------
#
# Stream layout: ``WVMT`` + version byte, then tagged records, then END.
#
#   DEF_STR     0x01  varint(len) utf8-bytes
#       Interns a function/site/label name; ids are assigned in order
#       of appearance (0, 1, 2, ...). Emitted lazily, on first use.
#   POINT       0x02  varint(site-fn-id) varint(site-name-id)
#                     varint(nlocals) zigzag*  varint(nglobals) zigzag*
#   DEF_EDGE    0x03  varint(branch-fn-id) varint(branch-ordinal)
#                     varint(follower-fn-id) varint(follower-ordinal)
#                     taken-byte
#       Interns one distinct (branch, follower, taken) event; a module
#       has few distinct edges but a trace exercises them millions of
#       times, so each is described once and referenced by id.
#   BRANCH      0x04  varint(edge-id)
#   BRANCH_RUN  0x05  varint(edge-id) varint(count)
#       ``count`` consecutive occurrences of the same edge (tight loops
#       whose body contains a single conditional produce long runs).
#   END         0x7F
#       Mandatory terminator: a reader that hits end-of-file first
#       reports truncation instead of silently yielding a short trace.

_TAG_DEF_STR = 0x01
_TAG_POINT = 0x02
_TAG_DEF_EDGE = 0x03
_TAG_BRANCH = 0x04
_TAG_BRANCH_RUN = 0x05
_TAG_END = 0x7F


def _write_uvarint(out: List[bytes], value: int) -> None:
    while value > 0x7F:
        out.append(bytes(((value & 0x7F) | 0x80,)))
        value >>= 7
    out.append(bytes((value,)))


def _zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class BinaryTraceWriter:
    """Streams a trace to a binary file object as it is produced.

    Points and branch events may be fed in any interleaving; the
    reader reassembles them into the two ordered lists of a
    :class:`Trace`. Call :meth:`close` (or use as a context manager)
    to flush the pending run-length state and write the END marker —
    a stream without it is deliberately unreadable.
    """

    def __init__(self, fp: BinaryIO, module: Module):
        self._fp = fp
        self._index = _instruction_index(module)
        self._strings: Dict[str, int] = {}
        self._edges: Dict[Tuple[int, int, int, int, bool], int] = {}
        self._run_edge: Optional[int] = None
        self._run_count = 0
        self._closed = False
        fp.write(BINARY_MAGIC + bytes((BINARY_FORMAT_VERSION,)))

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def _intern(self, out: List[bytes], name: str) -> int:
        sid = self._strings.get(name)
        if sid is None:
            sid = self._strings[name] = len(self._strings)
            data = name.encode("utf-8")
            out.append(bytes((_TAG_DEF_STR,)))
            _write_uvarint(out, len(data))
            out.append(data)
        return sid

    def _locate(self, instr: Instruction) -> Tuple[str, int]:
        try:
            return self._index[id(instr)]
        except KeyError:
            raise TraceFormatError(
                "trace references an instruction not present in the module"
            ) from None

    def write_point(self, point: TracePoint) -> None:
        out: List[bytes] = []
        fn_id = self._intern(out, point.key.function)
        site_id = self._intern(out, point.key.site)
        out.append(bytes((_TAG_POINT,)))
        _write_uvarint(out, fn_id)
        _write_uvarint(out, site_id)
        _write_uvarint(out, len(point.locals_snapshot))
        for v in point.locals_snapshot:
            _write_uvarint(out, _zigzag(v))
        _write_uvarint(out, len(point.globals_snapshot))
        for v in point.globals_snapshot:
            _write_uvarint(out, _zigzag(v))
        self._fp.write(b"".join(out))

    def write_branch(self, event: BranchEvent) -> None:
        b_fn, b_ord = self._locate(event.branch)
        f_fn, f_ord = self._locate(event.follower)
        out: List[bytes] = []
        key = (
            self._intern(out, b_fn),
            b_ord,
            self._intern(out, f_fn),
            f_ord,
            bool(event.taken),
        )
        edge_id = self._edges.get(key)
        if edge_id is None:
            edge_id = self._edges[key] = len(self._edges)
            out.append(bytes((_TAG_DEF_EDGE,)))
            _write_uvarint(out, key[0])
            _write_uvarint(out, key[1])
            _write_uvarint(out, key[2])
            _write_uvarint(out, key[3])
            out.append(b"\x01" if key[4] else b"\x00")
        if edge_id == self._run_edge:
            self._run_count += 1
            if out:
                self._fp.write(b"".join(out))
            return
        self._flush_run(out)
        self._run_edge = edge_id
        self._run_count = 1
        if out:
            self._fp.write(b"".join(out))

    def _flush_run(self, out: List[bytes]) -> None:
        if self._run_edge is None:
            return
        if self._run_count == 1:
            out.append(bytes((_TAG_BRANCH,)))
            _write_uvarint(out, self._run_edge)
        else:
            out.append(bytes((_TAG_BRANCH_RUN,)))
            _write_uvarint(out, self._run_edge)
            _write_uvarint(out, self._run_count)
        self._run_edge = None
        self._run_count = 0

    def close(self) -> None:
        if self._closed:
            return
        out: List[bytes] = []
        self._flush_run(out)
        out.append(bytes((_TAG_END,)))
        self._fp.write(b"".join(out))
        self._closed = True


class BinaryTraceReader:
    """Decodes one binary trace stream back into a :class:`Trace`."""

    def __init__(self, fp: BinaryIO, module: Module):
        header = fp.read(len(BINARY_MAGIC) + 1)
        if header[: len(BINARY_MAGIC)] != BINARY_MAGIC or len(header) <= len(
            BINARY_MAGIC
        ):
            raise TraceFormatError("not a binary trace file (bad magic)")
        version = header[len(BINARY_MAGIC)]
        if version != BINARY_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported binary trace version {version}"
            )
        self._fp = fp
        self._table = _instruction_table(module)
        self._strings: List[str] = []
        self._edges: List[BranchEvent] = []

    def _read_exact(self, n: int) -> bytes:
        data = self._fp.read(n)
        if len(data) != n:
            raise TraceFormatError("truncated binary trace")
        return data

    def _read_uvarint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self._read_exact(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise TraceFormatError("corrupt varint in binary trace")

    def _string(self, sid: int) -> str:
        try:
            return self._strings[sid]
        except IndexError:
            raise TraceFormatError(
                f"corrupt binary trace: undefined string id {sid}"
            ) from None

    def _edge(self, edge_id: int) -> BranchEvent:
        try:
            return self._edges[edge_id]
        except IndexError:
            raise TraceFormatError(
                f"corrupt binary trace: undefined edge id {edge_id}"
            ) from None

    def _instruction(self, fn: str, ordinal: int) -> Instruction:
        try:
            return self._table[(fn, ordinal)]
        except KeyError:
            raise TraceFormatError(
                f"trace references missing instruction {fn}[{ordinal}]"
            ) from None

    def read(self) -> Trace:
        trace = Trace()
        points_append = trace.points.append
        branches_append = trace.branches.append
        while True:
            tag = self._read_exact(1)[0]
            if tag == _TAG_END:
                return trace
            if tag == _TAG_BRANCH:
                branches_append(self._edge(self._read_uvarint()))
            elif tag == _TAG_BRANCH_RUN:
                event = self._edge(self._read_uvarint())
                count = self._read_uvarint()
                if count < 1:
                    raise TraceFormatError(
                        "corrupt binary trace: empty branch run"
                    )
                branches_append(event)
                for _ in range(count - 1):
                    branches_append(event)
            elif tag == _TAG_POINT:
                fn = self._string(self._read_uvarint())
                site = self._string(self._read_uvarint())
                locals_ = tuple(
                    _unzigzag(self._read_uvarint())
                    for _ in range(self._read_uvarint())
                )
                globals_ = tuple(
                    _unzigzag(self._read_uvarint())
                    for _ in range(self._read_uvarint())
                )
                points_append(TracePoint(SiteKey(fn, site), locals_, globals_))
            elif tag == _TAG_DEF_STR:
                length = self._read_uvarint()
                data = self._read_exact(length)
                try:
                    self._strings.append(data.decode("utf-8"))
                except UnicodeDecodeError as exc:
                    raise TraceFormatError(
                        f"corrupt binary trace: bad string ({exc})"
                    ) from exc
            elif tag == _TAG_DEF_EDGE:
                b_fn = self._string(self._read_uvarint())
                b_ord = self._read_uvarint()
                f_fn = self._string(self._read_uvarint())
                f_ord = self._read_uvarint()
                taken = self._read_exact(1)[0]
                if taken not in (0, 1):
                    raise TraceFormatError(
                        "corrupt binary trace: bad taken flag"
                    )
                self._edges.append(
                    BranchEvent(
                        self._instruction(b_fn, b_ord),
                        self._instruction(f_fn, f_ord),
                        bool(taken),
                    )
                )
            else:
                raise TraceFormatError(
                    f"corrupt binary trace: unknown record tag 0x{tag:02x}"
                )


def dump_trace_binary(trace: Trace, module: Module, fp: BinaryIO) -> None:
    """Write ``trace`` to a binary file object (format version 2)."""
    with BinaryTraceWriter(fp, module) as writer:
        for point in trace.points:
            writer.write_point(point)
        for event in trace.branches:
            writer.write_branch(event)


def load_trace_binary(fp: BinaryIO, module: Module) -> Trace:
    """Read a binary trace back, re-binding events against ``module``.

    Raises :class:`TraceFormatError` on a bad magic/version, any
    corrupt record, or a stream that ends before its END marker
    (truncation is never silent).
    """
    return BinaryTraceReader(fp, module).read()
