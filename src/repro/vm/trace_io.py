"""Trace serialization (paper Section 3.1).

    "In the tracing phase, we instrument the input program to write to
    a file the sequence of basic blocks it executes. At each trace
    point we also store the value of every local variable ..."

The embedding pipeline can therefore be split across processes: trace
once on the machine that has the secret input, ship the trace file,
embed elsewhere. The format is a compact JSON document (versioned, so
stored traces survive library upgrades).

Branch events reference static instructions, whose identity is
object-based in memory; on disk they are keyed by a stable
``(function, instruction ordinal)`` pair, which is exactly as stable
as the module file the trace was produced from. Loading re-binds the
events against a module with matching structure.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Tuple

from .instructions import Instruction
from .program import Module
from .tracing import BranchEvent, SiteKey, Trace, TracePoint

FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """The trace file is malformed or does not match the module."""


def _instruction_index(module: Module) -> Dict[int, Tuple[str, int]]:
    """id(instruction) -> (function, ordinal among real instructions)."""
    out: Dict[int, Tuple[str, int]] = {}
    for name, fn in module.functions.items():
        for ordinal, instr in enumerate(fn.code):
            out[id(instr)] = (name, ordinal)
    return out


def _instruction_table(module: Module) -> Dict[Tuple[str, int], Instruction]:
    out: Dict[Tuple[str, int], Instruction] = {}
    for name, fn in module.functions.items():
        for ordinal, instr in enumerate(fn.code):
            out[(name, ordinal)] = instr
    return out


def dump_trace(trace: Trace, module: Module, fp: TextIO) -> None:
    """Write a trace produced from ``module`` to a file object."""
    index = _instruction_index(module)

    def key_of(instr: Instruction) -> List:
        try:
            fn, ordinal = index[id(instr)]
        except KeyError:
            raise TraceFormatError(
                "trace references an instruction not present in the module"
            ) from None
        return [fn, ordinal]

    doc = {
        "version": FORMAT_VERSION,
        "points": [
            {
                "function": p.key.function,
                "site": p.key.site,
                "locals": list(p.locals_snapshot),
                "globals": list(p.globals_snapshot),
            }
            for p in trace.points
        ],
        "branches": [
            {
                "branch": key_of(e.branch),
                "follower": key_of(e.follower),
                "taken": e.taken,
            }
            for e in trace.branches
        ],
    }
    json.dump(doc, fp)


def load_trace(fp: TextIO, module: Module) -> Trace:
    """Read a trace back, re-binding events against ``module``.

    Raises :class:`TraceFormatError` when the file is malformed or
    references instructions the module does not have (e.g. the module
    was edited since tracing).
    """
    try:
        doc = json.load(fp)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not a trace file: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {doc.get('version')!r}"
        )
    table = _instruction_table(module)
    trace = Trace()
    try:
        for p in doc["points"]:
            trace.points.append(
                TracePoint(
                    SiteKey(p["function"], p["site"]),
                    tuple(p["locals"]),
                    tuple(p["globals"]),
                )
            )
        for e in doc["branches"]:
            b_fn, b_ord = e["branch"]
            f_fn, f_ord = e["follower"]
            try:
                branch = table[(b_fn, b_ord)]
                follower = table[(f_fn, f_ord)]
            except KeyError:
                raise TraceFormatError(
                    f"trace references missing instruction "
                    f"{b_fn}[{b_ord}] / {f_fn}[{f_ord}]"
                ) from None
            trace.branches.append(BranchEvent(branch, follower, e["taken"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace file: {exc}") from exc
    return trace
