"""Precompilation of WVM functions into a dense dispatch form.

The seed interpreter re-dispatched on opcode *strings* and re-looked-up
label targets in a dict on every executed branch. This module performs
all of that work exactly once per function:

* every opcode becomes a small integer (``OP_*``) so the run loop
  dispatches on int comparisons;
* label pseudo-instructions disappear from the executed stream — every
  branch target is resolved to the dense index of the next real
  instruction, and the label *objects* survive only where tracing
  semantics need them (branch-event followers, full-trace site keys);
* operands are pre-decoded (const values, local slots, branch targets,
  iinc deltas), so the loop never touches :class:`Instruction` objects;
* for every conditional branch both possible
  :class:`~repro.vm.tracing.BranchEvent` objects are pre-created, so the
  branch-traced loop appends a ready-made event instead of constructing
  one per execution;
* for every control transfer the tuple of
  :class:`~repro.vm.tracing.SiteKey` objects crossed on that edge is
  pre-computed, so the full-traced loop records sites without looking at
  labels at run time;
* a peephole pass fuses hot straight-line pairs and triples
  (``load;const``, ``const;mul``, ``load;const;if_icmpge``, ``add;store``,
  …) into superinstructions, cutting dispatches per logical step.

Fusion never crosses a label (so jump-ins and full-trace site recording
keep working) and the fused span's component slots keep their original
single-instruction encoding, so dense branch targets remain valid
without any re-indexing. ``steps`` accounting stays exact: a fused slot
adds the number of original instructions it covers.

The compiled form is private to the interpreter; nothing here changes
observable semantics. See ``docs/performance.md`` for the design notes
and the measured effect.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .instructions import wrap64
from .program import Function
from .tracing import BranchEvent, SiteKey

# ---------------------------------------------------------------------------
# Opcode integers. The numeric layout is load-bearing: the run loop's
# dispatch tree tests ranges (fused >= OP_FUSED_BASE, hot singles < 10,
# conditionals in [10, 22), ...), so renumbering requires matching edits
# in interpreter.py.
# ---------------------------------------------------------------------------

OP_LOAD = 0
OP_CONST = 1
OP_ADD = 2
OP_STORE = 3
OP_ALOAD = 4
OP_MUL = 5
OP_BAND = 6
OP_SUB = 7
OP_ASTORE = 8
OP_IINC = 9
# conditional branches: if_icmp* in [10, 16), zero-compares in [16, 22),
# ordered eq, ne, lt, le, gt, ge within each family.
OP_ICMPEQ, OP_ICMPNE, OP_ICMPLT, OP_ICMPLE, OP_ICMPGT, OP_ICMPGE = range(10, 16)
OP_IFEQ, OP_IFNE, OP_IFLT, OP_IFLE, OP_IFGT, OP_IFGE = range(16, 22)
OP_GOTO = 22
OP_CALL = 23
OP_RET = 24
OP_GLOAD = 25
OP_GSTORE = 26
OP_DIV = 27
OP_MOD = 28
OP_BOR = 29
OP_BXOR = 30
OP_SHL = 31
OP_SHR = 32
OP_NEG = 33
OP_BNOT = 34
OP_DUP = 35
OP_POP = 36
OP_SWAP = 37
OP_NEWARRAY = 38
OP_ALEN = 39
OP_PRINT = 40
OP_INPUT = 41
OP_NOP = 42
OP_HALT = 43
#: Sentinel appended after the last real instruction: executing it means
#: control fell off the end of the function.
OP_END = 44

OP_FUSED_BASE = 45

# Fused push-push pairs: push <src1>, push <src2>. Source kinds are L
# (local), C (const), G (global); operands in aa/bb.
OP_LL2, OP_LC2, OP_LG2, OP_CL2, OP_CC2, OP_CG2, OP_GL2, OP_GC2, OP_GG2 = range(
    45, 54
)
# Fused push-push-binop triples: a = <src1>, b = <src2>, push(a BINOP b).
# Binop selector in cc. CCB is the constant-folded const/const case
# (result pre-computed into aa).
OP_LLB, OP_LCB, OP_LGB, OP_CLB, OP_CGB, OP_GLB, OP_GCB, OP_GGB = range(54, 62)
OP_CCB = 62
# Fused push-push-compare-branch triples (if_icmp family): a = <src1>,
# b = <src2>, branch on compare. Comparator selector in cc, dense branch
# target in dd.
OP_LLI, OP_LCI, OP_LGI, OP_CLI, OP_CGI, OP_GLI, OP_GCI, OP_GGI = range(63, 71)
# Fused push-binop pairs (second operand from src, first from stack,
# result replaces the stack top in place). Operand in aa, selector in bb.
OP_LB, OP_CB, OP_GB = range(71, 74)
# Fused push-compare-branch pairs, if_icmp family: b = <src>, a popped.
# Operand aa, comparator bb, dense target cc.
OP_LIC, OP_CIC, OP_GIC = range(74, 77)
# Fused push-compare-branch pairs, zero family: a = <src> (no stack
# traffic at all). Operand aa, comparator bb, dense target cc.
OP_LIZ, OP_CIZ, OP_GIZ = range(77, 80)
# Fused binop-store pairs: pop b, pop a, store (a BINOP b) to a local /
# global slot. Slot in aa, selector in bb.
OP_BSL, OP_BSG = 80, 81
# Fused push-store pairs: local/const/global straight into a local slot
# (operand aa, slot bb), and the same three into a global slot.
OP_LSL, OP_CSL, OP_GSL = 82, 83, 84
OP_LSG, OP_CSG, OP_GSG = 85, 86, 87
# store s1; load s2 — same-slot form keeps the value on the stack.
OP_SLS, OP_SLD = 88, 89
# store s; goto t    and    iinc s d; goto t
OP_SGO, OP_IGO = 90, 91

# Second-order superinstructions: a first-pass fused slot merged with
# the next live slot (see :func:`_fuse2`). Operand layouts in the
# interpreter arms; ``ee`` holds the fifth operand where needed.
OP_CBS = 95      # const;BINOP;store           -> loc[cc] = pop() OP(bb) aa
OP_CBB = 96      # const;OP1;OP2;store         -> loc[cc] = pop2 OP2(dd) (pop1 OP1(bb) aa)
OP_LGC = 97      # load;gload;const;BINOP      -> push loc[aa]; push glob[bb] OP(dd) cc
OP_GLB2 = 98     # gload;load;OP1;OP2          -> stack[-1] = stack[-1] OP2(dd) (glob[aa] OP1(cc) loc[bb])
OP_LCBSG = 99    # load;const;BINOP;store;goto -> loc[dd] = loc[aa] OP(cc) bb; pc = ee
OP_BLB = 100     # OP1;load;OP2                -> b=pop; stack[-1] = (stack[-1] OP1(cc) b) OP2(bb) loc[aa]
OP_LBCB = 101    # load;OP1;const;OP2          -> stack[-1] = (stack[-1] OP1(bb) loc[aa]) OP2(dd) cc
OP_BSLLCB = 102  # OP1;store;load;const;OP2    -> loc[aa] = pop2 OP1(bb) pop1; push loc[cc] OP2(ee) dd

_STR2INT: Dict[str, int] = {
    "load": OP_LOAD, "const": OP_CONST, "add": OP_ADD, "store": OP_STORE,
    "aload": OP_ALOAD, "mul": OP_MUL, "band": OP_BAND, "sub": OP_SUB,
    "astore": OP_ASTORE, "iinc": OP_IINC,
    "if_icmpeq": OP_ICMPEQ, "if_icmpne": OP_ICMPNE, "if_icmplt": OP_ICMPLT,
    "if_icmple": OP_ICMPLE, "if_icmpgt": OP_ICMPGT, "if_icmpge": OP_ICMPGE,
    "ifeq": OP_IFEQ, "ifne": OP_IFNE, "iflt": OP_IFLT, "ifle": OP_IFLE,
    "ifgt": OP_IFGT, "ifge": OP_IFGE,
    "goto": OP_GOTO, "call": OP_CALL, "ret": OP_RET,
    "gload": OP_GLOAD, "gstore": OP_GSTORE,
    "div": OP_DIV, "mod": OP_MOD, "bor": OP_BOR, "bxor": OP_BXOR,
    "shl": OP_SHL, "shr": OP_SHR, "neg": OP_NEG, "bnot": OP_BNOT,
    "dup": OP_DUP, "pop": OP_POP, "swap": OP_SWAP,
    "newarray": OP_NEWARRAY, "alen": OP_ALEN,
    "print": OP_PRINT, "input": OP_INPUT, "nop": OP_NOP, "halt": OP_HALT,
}

#: int opcode -> mnemonic, for diagnostics (fused slots report the
#: leading component's mnemonic via ``raw_of``).
INT2STR: Dict[int, str] = {v: k for k, v in _STR2INT.items()}

#: Names for the fused opcodes, for dispatch-count profiles and
#: diagnostics. The short forms match the comments above (source kinds
#: L/C/G, B = binop, I = icmp branch, Z = zero-compare branch, S =
#: store). Kept in one table so a profile row can always be named.
FUSED_NAMES: Dict[int, str] = {
    45: "LL2", 46: "LC2", 47: "LG2", 48: "CL2", 49: "CC2", 50: "CG2",
    51: "GL2", 52: "GC2", 53: "GG2",
    54: "LLB", 55: "LCB", 56: "LGB", 57: "CLB", 58: "CGB", 59: "GLB",
    60: "GCB", 61: "GGB", 62: "CCB",
    63: "LLI", 64: "LCI", 65: "LGI", 66: "CLI", 67: "CGI", 68: "GLI",
    69: "GCI", 70: "GGI",
    71: "LB", 72: "CB", 73: "GB",
    74: "LIC", 75: "CIC", 76: "GIC",
    77: "LIZ", 78: "CIZ", 79: "GIZ",
    80: "BSL", 81: "BSG",
    82: "LSL", 83: "CSL", 84: "GSL", 85: "LSG", 86: "CSG", 87: "GSG",
    88: "SLS", 89: "SLD", 90: "SGO", 91: "IGO",
    95: "CBS", 96: "CBB", 97: "LGC", 98: "GLB2", 99: "LCBSG",
    100: "BLB", 101: "LBCB", 102: "BSLLCB",
}

#: One past the highest opcode the run loops can dispatch — the size
#: of a per-opcode dispatch-count array.
NUM_OPCODES = 103


def opcode_name(op: int) -> str:
    """Human-readable name of any dispatchable opcode (incl. fused)."""
    if op == OP_END:
        return "<end>"
    name = INT2STR.get(op) or FUSED_NAMES.get(op)
    return name if name is not None else f"op{op}"

# Binop selector codes for fused arithmetic, ordered by observed dynamic
# frequency on the jess-like workload (hot first => shallow dispatch).
SEL_ADD, SEL_MUL, SEL_ALOAD, SEL_BAND, SEL_MOD = range(5)
SEL_SUB, SEL_BOR, SEL_BXOR, SEL_SHL, SEL_SHR, SEL_DIV = range(5, 11)

_BINOP_SEL: Dict[int, int] = {
    OP_ADD: SEL_ADD, OP_MUL: SEL_MUL, OP_ALOAD: SEL_ALOAD,
    OP_BAND: SEL_BAND, OP_MOD: SEL_MOD, OP_SUB: SEL_SUB,
    OP_BOR: SEL_BOR, OP_BXOR: SEL_BXOR, OP_SHL: SEL_SHL,
    OP_SHR: SEL_SHR, OP_DIV: SEL_DIV,
}

# Comparator selector codes: eq, ne, lt, le, gt, ge — the same order as
# the opcode families, so sel = op - family_base.
SEL_EQ, SEL_NE, SEL_LT, SEL_LE, SEL_GT, SEL_GE = range(6)

_PUSHERS = (OP_LOAD, OP_CONST, OP_GLOAD)

#: (kind1, kind2) -> fused opcode, kinds indexed L=0, C=1, G=2.
_PUSH_KIND: Dict[int, int] = {OP_LOAD: 0, OP_CONST: 1, OP_GLOAD: 2}
_PP2 = (
    (OP_LL2, OP_LC2, OP_LG2),
    (OP_CL2, OP_CC2, OP_CG2),
    (OP_GL2, OP_GC2, OP_GG2),
)
_PPB = (
    (OP_LLB, OP_LCB, OP_LGB),
    (OP_CLB, OP_CCB, OP_CGB),  # [1][1] replaced by fold handling
    (OP_GLB, OP_GCB, OP_GGB),
)
_PPI = (
    (OP_LLI, OP_LCI, OP_LGI),
    (OP_CLI, None, OP_CGI),  # const/const compares stay unfused
    (OP_GLI, OP_GCI, OP_GGI),
)
_PB = {OP_LOAD: OP_LB, OP_CONST: OP_CB, OP_GLOAD: OP_GB}
_PIC = {OP_LOAD: OP_LIC, OP_CONST: OP_CIC, OP_GLOAD: OP_GIC}
_PIZ = {OP_LOAD: OP_LIZ, OP_CONST: OP_CIZ, OP_GLOAD: OP_GIZ}
_PS_LOCAL = {OP_LOAD: OP_LSL, OP_CONST: OP_CSL, OP_GLOAD: OP_GSL}
_PS_GLOBAL = {OP_LOAD: OP_LSG, OP_CONST: OP_CSG, OP_GLOAD: OP_GSG}

#: Pure-ish binops eligible as the arithmetic half of a fused slot.
#: div/mod may trap, aload bounds-checks — all raise the same VMError at
#: the same logical point either way, so they fuse safely.
_FUSABLE_BINOPS = frozenset(_BINOP_SEL)

#: Constant folding is restricted to ops that cannot trap and do not
#: touch run-time state.
_FOLDABLE = {
    SEL_ADD: lambda a, b: a + b,
    SEL_MUL: lambda a, b: a * b,
    SEL_BAND: lambda a, b: a & b,
    SEL_SUB: lambda a, b: a - b,
    SEL_BOR: lambda a, b: a | b,
    SEL_BXOR: lambda a, b: a ^ b,
    SEL_SHL: lambda a, b: a << (b & 63),
    SEL_SHR: lambda a, b: a >> (b & 63),
}


class CompiledFunction:
    """One function in dense precompiled form.

    Parallel arrays indexed by dense pc (one slot per real instruction,
    plus the ``OP_END`` sentinel):

    * ``ops`` — int opcode;
    * ``aa``/``bb``/``cc``/``dd`` — pre-decoded operands (meaning is
      per-opcode: slots, const values, dense branch targets, fusion
      selectors);
    * ``evt``/``evf`` — pre-built taken / not-taken
      :class:`BranchEvent` for conditional-branch slots;
    * ``fs`` — :class:`SiteKey` tuple crossed when falling through
      *out of* this slot (labels between it and the next real
      instruction);
    * ``ts`` — SiteKey tuple crossed when *jumping* via this slot;
    * ``raw_of`` — raw ``fn.code`` index of each slot, for diagnostics.

    ``entry_sites`` is the ``<entry>`` key plus any labels preceding the
    first real instruction, recorded on frame entry in full-trace mode.
    """

    __slots__ = (
        "name", "params", "nlocals", "ops", "aa", "bb", "cc", "dd", "ee",
        "evt", "evf", "fs", "ts", "raw_of", "entry_sites", "fn",
    )

    def __init__(self, fn: Function):
        self.fn = fn
        self.name = fn.name
        self.params = fn.params
        self.nlocals = fn.locals_count
        _build(self, fn)

    def mnemonic(self, pc: int) -> str:
        """Best-effort mnemonic of the slot at dense ``pc``."""
        if 0 <= pc < len(self.raw_of):
            instr = self.fn.code[self.raw_of[pc]]
            return instr.op
        return "<end>"


def _site_runs(
    fn: Function,
) -> Tuple[List[int], List[Tuple[SiteKey, ...]]]:
    """Per raw pc: dense index of the next real instruction at/after it,
    and the tuple of label SiteKeys crossed getting there."""
    raw = fn.code
    n = len(raw)
    dense_at = [0] * (n + 1)
    sites_at: List[Tuple[SiteKey, ...]] = [()] * (n + 1)
    d = 0
    pending: List[int] = []
    for p in range(n):
        dense_at[p] = d
        if raw[p].is_label:
            pending.append(p)
        else:
            if pending:
                for q in pending:
                    sites_at[q] = tuple(
                        SiteKey(fn.name, raw[r].arg)
                        for r in range(q, p)
                        if raw[r].is_label
                    )
                pending.clear()
            d += 1
    dense_at[n] = d
    for q in pending:
        sites_at[q] = tuple(
            SiteKey(fn.name, raw[r].arg) for r in range(q, n)
            if raw[r].is_label
        )
    return dense_at, sites_at


def _build(out: CompiledFunction, fn: Function) -> None:
    raw = fn.code
    n = len(raw)
    labels = fn.labels()
    dense_at, sites_at = _site_runs(fn)

    ops: List[int] = []
    aa: List[Any] = []
    bb: List[Any] = []
    cc: List[Any] = []
    dd: List[Any] = []
    ee: List[Any] = []
    evt: List[Optional[BranchEvent]] = []
    evf: List[Optional[BranchEvent]] = []
    fs: List[Tuple[SiteKey, ...]] = []
    ts: List[Tuple[SiteKey, ...]] = []
    raw_of: List[int] = []

    for p, instr in enumerate(raw):
        if instr.is_label:
            continue
        op = _STR2INT[instr.op]
        a: Any = instr.arg
        b: Any = instr.arg2
        c: Any = None
        d2: Any = None
        e_t: Optional[BranchEvent] = None
        e_f: Optional[BranchEvent] = None
        t_sites: Tuple[SiteKey, ...] = ()
        if 10 <= op < 22:  # conditional branch
            target = labels[instr.arg]
            a = dense_at[target]
            t_sites = sites_at[target]
            follower_not = raw[p + 1] if p + 1 < n else instr
            e_t = BranchEvent(instr, raw[target], True)
            e_f = BranchEvent(instr, follower_not, False)
        elif op == OP_GOTO:
            target = labels[instr.arg]
            a = dense_at[target]
            t_sites = sites_at[target]
        ops.append(op)
        aa.append(a)
        bb.append(b)
        cc.append(c)
        dd.append(d2)
        ee.append(None)
        evt.append(e_t)
        evf.append(e_f)
        fs.append(sites_at[p + 1] if p + 1 <= n else ())
        ts.append(t_sites)
        raw_of.append(p)

    labeled = {dense_at[idx] for idx in labels.values()}
    _fuse(ops, aa, bb, cc, dd, evt, evf, fs, ts, labeled)
    _fuse2(ops, aa, bb, cc, dd, ee, fs, ts, labeled)

    # OP_END sentinel: falling onto it (or branching to a trailing
    # label) traps exactly where the seed engine raised.
    ops.append(OP_END)
    aa.append(None)
    bb.append(None)
    cc.append(None)
    dd.append(None)
    ee.append(None)
    evt.append(None)
    evf.append(None)
    fs.append(())
    ts.append(())

    out.ops = ops
    out.aa = aa
    out.bb = bb
    out.cc = cc
    out.dd = dd
    out.ee = ee
    out.evt = evt
    out.evf = evf
    out.fs = fs
    out.ts = ts
    out.raw_of = raw_of
    out.entry_sites = (SiteKey(fn.name, "<entry>"),) + sites_at[0]


def _fuse(ops, aa, bb, cc, dd, evt, evf, fs, ts, labeled) -> None:
    """Peephole superinstruction pass over the dense arrays.

    Rewrites slot ``i`` in place to cover the following one or two
    slots; the covered slots keep their original encoding (they are
    only reachable by jumping to a label, and fusion never spans a
    label, so they become dead — kept as-is for safety and for the
    traced loops, which share these arrays).
    """
    n = len(ops)
    i = 0
    while i < n - 1:
        op1 = ops[i]
        op2 = ops[i + 1]
        if (i + 1) in labeled:
            i += 1
            continue
        op3 = ops[i + 2] if i + 2 < n and (i + 2) not in labeled else None

        if op1 in _PUSHERS:
            k1 = _PUSH_KIND[op1]
            if op3 is not None and op2 in _PUSHERS:
                k2 = _PUSH_KIND[op2]
                if op3 in _FUSABLE_BINOPS:
                    sel = _BINOP_SEL[op3]
                    if op1 == OP_CONST and op2 == OP_CONST:
                        fold = _FOLDABLE.get(sel)
                        if fold is None:
                            # const/const with a trapping or stateful
                            # binop: fuse just the pushes.
                            ops[i] = OP_CC2
                            bb[i] = aa[i + 1]
                            fs[i] = fs[i + 1]
                            i += 2
                            continue
                        ops[i] = OP_CCB
                        aa[i] = wrap64(fold(aa[i], aa[i + 1]))
                    else:
                        ops[i] = _PPB[k1][k2]
                        bb[i] = aa[i + 1]
                        cc[i] = sel
                    fs[i] = fs[i + 2]
                    i += 3
                    continue
                if 10 <= op3 < 16:  # if_icmp family
                    fused = _PPI[k1][k2]
                    if fused is not None:
                        ops[i] = fused
                        bb[i] = aa[i + 1]
                        cc[i] = op3 - OP_ICMPEQ
                        dd[i] = aa[i + 2]
                        evt[i] = evt[i + 2]
                        evf[i] = evf[i + 2]
                        ts[i] = ts[i + 2]
                        fs[i] = fs[i + 2]
                        i += 3
                        continue
                # plain push-push pair
                ops[i] = _PP2[k1][k2]
                bb[i] = aa[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if op2 in _PUSHERS:
                ops[i] = _PP2[k1][_PUSH_KIND[op2]]
                bb[i] = aa[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if op2 in _FUSABLE_BINOPS:
                ops[i] = _PB[op1]
                bb[i] = _BINOP_SEL[op2]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if 10 <= op2 < 16:
                ops[i] = _PIC[op1]
                bb[i] = op2 - OP_ICMPEQ
                cc[i] = aa[i + 1]
                evt[i] = evt[i + 1]
                evf[i] = evf[i + 1]
                ts[i] = ts[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if 16 <= op2 < 22:
                ops[i] = _PIZ[op1]
                bb[i] = op2 - OP_IFEQ
                cc[i] = aa[i + 1]
                evt[i] = evt[i + 1]
                evf[i] = evf[i + 1]
                ts[i] = ts[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if op2 == OP_STORE:
                ops[i] = _PS_LOCAL[op1]
                bb[i] = aa[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if op2 == OP_GSTORE:
                ops[i] = _PS_GLOBAL[op1]
                bb[i] = aa[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            i += 1
            continue

        if op1 in _FUSABLE_BINOPS and op2 in (OP_STORE, OP_GSTORE):
            sel = _BINOP_SEL[op1]
            ops[i] = OP_BSL if op2 == OP_STORE else OP_BSG
            aa[i] = aa[i + 1]
            bb[i] = sel
            fs[i] = fs[i + 1]
            i += 2
            continue

        if op1 == OP_STORE:
            if op2 == OP_LOAD:
                ops[i] = OP_SLS if aa[i] == aa[i + 1] else OP_SLD
                bb[i] = aa[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            if op2 == OP_GOTO:
                ops[i] = OP_SGO
                bb[i] = aa[i + 1]
                ts[i] = ts[i + 1]
                fs[i] = fs[i + 1]
                i += 2
                continue
            i += 1
            continue

        if op1 == OP_IINC and op2 == OP_GOTO:
            ops[i] = OP_IGO
            cc[i] = aa[i + 1]
            ts[i] = ts[i + 1]
            fs[i] = fs[i + 1]
            i += 2
            continue

        i += 1


#: Opcode -> number of original instructions the slot covers (== the
#: slot's contribution to ``steps`` and the fall-through advance).
#: Public as :func:`slot_width` for dispatch-count profiling.
def _width(op: int) -> int:
    if op < OP_FUSED_BASE:
        return 1
    if op < OP_LLB:
        return 2
    if op < OP_LB:
        return 3
    if op < 92:
        return 2
    return {
        OP_CBS: 3, OP_CBB: 4, OP_LGC: 4, OP_GLB2: 4, OP_LCBSG: 5,
        OP_BLB: 3, OP_LBCB: 4, OP_BSLLCB: 5,
    }[op]


def _fuse2(ops, aa, bb, cc, dd, ee, fs, ts, labeled) -> None:
    """Second peephole pass: merge a live slot with its fall-through
    successor into one of the ``OP_CBS``.. ``OP_BSLLCB`` superops.

    The scan walks exactly the live fall-through chain (slot ``i`` has
    width ``_width(ops[i])``; components in between are dead unless
    labeled, and fusion never covers labeled slots, so ``i + width`` is
    always the next live slot). Merges are blocked when the successor
    is a jump target (``labeled``), which also guarantees no trace
    sites lie inside the merged span. A trap raised by the inner half
    is indistinguishable from the unfused sequence's trap: same
    ``VMError``, and the run's partial state is discarded either way.
    """
    n = len(ops)
    i = 0
    while i < n:
        j = i + _width(ops[i])
        if j >= n:
            break
        if j in labeled:
            i = j
            continue
        op1 = ops[i]
        op2 = ops[j]
        nxt = j + _width(op2)
        fused = True
        if op1 == OP_CB and op2 == OP_STORE:
            ops[i] = OP_CBS
            cc[i] = aa[j]
        elif op1 == OP_CB and op2 == OP_BSL:
            ops[i] = OP_CBB
            cc[i] = aa[j]
            dd[i] = bb[j]
        elif op1 == OP_LG2 and op2 == OP_CB:
            ops[i] = OP_LGC
            cc[i] = aa[j]
            dd[i] = bb[j]
        elif op1 == OP_GLB and op2 in _BINOP_SEL:
            ops[i] = OP_GLB2
            dd[i] = _BINOP_SEL[op2]
        elif op1 == OP_LCB and op2 == OP_SGO:
            ops[i] = OP_LCBSG
            dd[i] = aa[j]
            ee[i] = bb[j]
            ts[i] = ts[j]
        elif op2 == OP_LB and op1 in _BINOP_SEL:
            ops[i] = OP_BLB
            cc[i] = _BINOP_SEL[op1]
            aa[i] = aa[j]
            bb[i] = bb[j]
        elif op1 == OP_LB and op2 == OP_CB:
            ops[i] = OP_LBCB
            cc[i] = aa[j]
            dd[i] = bb[j]
        elif op1 == OP_BSL and op2 == OP_LCB:
            ops[i] = OP_BSLLCB
            cc[i] = aa[j]
            dd[i] = bb[j]
            ee[i] = cc[j]
        else:
            fused = False
        if fused:
            fs[i] = fs[j]
            i = nxt
        else:
            i = j


def slot_width(op: int) -> int:
    """Number of original instructions a dispatched slot covers.

    ``1`` for every unfused opcode (and the sentinel); the component
    count for superinstructions. A dispatch-count profile multiplied
    through this recovers exact executed-instruction totals.
    Unassigned opcode numbers (the 92–94 gap) report ``1``.
    """
    if 92 <= op <= 94:
        return 1
    return _width(op)


def compile_function(fn: Function) -> CompiledFunction:
    """Compile one function to its dense dispatch form."""
    return CompiledFunction(fn)
