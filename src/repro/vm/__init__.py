"""WVM — the stack-based virtual machine substrate (Java-bytecode analog).

See DESIGN.md for the substitution argument. Public surface:

* :class:`Instruction`, :class:`Function`, :class:`Module` — code model;
* :func:`assemble` / :func:`disassemble` — textual form;
* :class:`Interpreter` / :func:`run_module` — execution with optional
  tracing ("branch" or "full" mode);
* :func:`build_cfg` — control-flow graphs;
* :func:`verify_module` — the bytecode verifier;
* rewriting helpers in :mod:`repro.vm.rewriter`.
"""

from .assembler import AssemblyError, assemble
from .cfg import CFG, BasicBlock, build_cfg
from .disassembler import disassemble, disassemble_function
from .instructions import (
    CONDITIONAL_BRANCHES,
    INVERSES,
    Instruction,
    ins,
    label,
    wrap64,
)
from .interpreter import DEFAULT_MAX_STEPS, Interpreter, VMError, run_module
from .program import Function, Module, VMFormatError
from .rewriter import (
    RewriteError,
    count_conditional_branches,
    freshen_template,
    insert_at_site,
    rename_labels,
    site_index,
)
from .trace_io import TraceFormatError, dump_trace, load_trace
from .tracing import BranchEvent, RunResult, SiteKey, Trace, TracePoint
from .verifier import VerificationError, is_verifiable, verify_module

__all__ = [
    "AssemblyError",
    "BasicBlock",
    "BranchEvent",
    "CFG",
    "CONDITIONAL_BRANCHES",
    "DEFAULT_MAX_STEPS",
    "Function",
    "INVERSES",
    "Instruction",
    "Interpreter",
    "Module",
    "RewriteError",
    "RunResult",
    "SiteKey",
    "Trace",
    "TraceFormatError",
    "TracePoint",
    "VMError",
    "VMFormatError",
    "VerificationError",
    "assemble",
    "build_cfg",
    "count_conditional_branches",
    "disassemble",
    "disassemble_function",
    "dump_trace",
    "freshen_template",
    "ins",
    "insert_at_site",
    "is_verifiable",
    "label",
    "load_trace",
    "rename_labels",
    "run_module",
    "site_index",
    "verify_module",
    "wrap64",
]
