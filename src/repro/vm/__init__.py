"""WVM — the stack-based virtual machine substrate (Java-bytecode analog).

See DESIGN.md for the substitution argument. Public surface:

* :class:`Instruction`, :class:`Function`, :class:`Module` — code model;
* :func:`assemble` / :func:`disassemble` — textual form;
* :class:`Interpreter` / :func:`run_module` — execution with optional
  tracing ("branch" or "full" mode), on the precompiled fast path;
* :class:`ReferenceInterpreter` / :func:`run_module_reference` — the
  seed tree-walking engine, kept as the differential-testing oracle
  and benchmarking baseline;
* :func:`build_cfg` — control-flow graphs;
* :func:`verify_module` — the bytecode verifier;
* rewriting helpers in :mod:`repro.vm.rewriter`.
"""

from ._reference import ReferenceInterpreter, run_module_reference
from .assembler import AssemblyError, assemble
from .cfg import CFG, BasicBlock, build_cfg
from .disassembler import disassemble, disassemble_function
from .instructions import (
    CONDITIONAL_BRANCHES,
    INVERSES,
    Instruction,
    ins,
    label,
    wrap64,
)
from .interpreter import (
    DEFAULT_MAX_STEPS,
    Interpreter,
    StepLimitExceeded,
    VMError,
    run_module,
)
from .program import Function, Module, VMFormatError
from .rewriter import (
    RewriteError,
    count_conditional_branches,
    freshen_template,
    insert_at_site,
    rename_labels,
    site_index,
)
from .trace_io import (
    BinaryTraceReader,
    BinaryTraceWriter,
    TraceFormatError,
    dump_trace,
    dump_trace_binary,
    load_trace,
    load_trace_binary,
)
from .tracing import BranchEvent, RunResult, SiteKey, Trace, TracePoint
from .verifier import VerificationError, is_verifiable, verify_module

__all__ = [
    "AssemblyError",
    "BasicBlock",
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "BranchEvent",
    "CFG",
    "CONDITIONAL_BRANCHES",
    "DEFAULT_MAX_STEPS",
    "Function",
    "INVERSES",
    "Instruction",
    "Interpreter",
    "Module",
    "ReferenceInterpreter",
    "RewriteError",
    "RunResult",
    "SiteKey",
    "StepLimitExceeded",
    "Trace",
    "TraceFormatError",
    "TracePoint",
    "VMError",
    "VMFormatError",
    "VerificationError",
    "assemble",
    "build_cfg",
    "count_conditional_branches",
    "disassemble",
    "disassemble_function",
    "dump_trace",
    "dump_trace_binary",
    "freshen_template",
    "ins",
    "insert_at_site",
    "is_verifiable",
    "label",
    "load_trace",
    "load_trace_binary",
    "rename_labels",
    "run_module",
    "run_module_reference",
    "site_index",
    "verify_module",
    "wrap64",
]
