"""Bytecode rewriting helpers for WVM modules.

The label-based code representation makes rewriting structural: code
is spliced into the instruction list and branches keep working because
targets are symbolic. These helpers add the bookkeeping the embedder
and the attack suite share: fresh-label renaming of code templates,
insertion at trace sites, and safe deep-copying.

Everything here preserves verifiability when given verifiable inputs
and stack-neutral insertion sequences; the callers re-verify anyway
(`repro.vm.verifier`), mirroring how bytecode tools must keep the JVM
verifier happy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .instructions import LABEL_OPERANDS, Instruction
from .program import Function, Module
from .tracing import SiteKey


class RewriteError(Exception):
    """An edit could not be applied (missing site, bad template)."""


def rename_labels(
    code: Sequence[Instruction], mapping: Dict[str, str]
) -> List[Instruction]:
    """Copy a code template, renaming label operands via ``mapping``.

    Labels not present in the mapping are left unchanged (they are
    assumed to refer to labels that already exist at the insertion
    site).
    """
    out: List[Instruction] = []
    for instr in code:
        copy = instr.copy()
        if instr.op in LABEL_OPERANDS and instr.arg in mapping:
            copy.arg = mapping[instr.arg]
        out.append(copy)
    return out


def freshen_template(
    fn: Function, template: Sequence[Instruction], hint: str = "wm"
) -> List[Instruction]:
    """Instantiate a code template inside ``fn``.

    Every label *defined* by the template is renamed to a label that is
    fresh in ``fn``; branches within the template follow the renaming.
    """
    defined = [i.arg for i in template if i.is_label]
    fresh = fn.fresh_labels(len(defined), hint)
    mapping = dict(zip(defined, fresh))
    return rename_labels(template, mapping)


def site_index(fn: Function, site: str) -> int:
    """Code index right after a trace site.

    ``site`` is a label name or ``"<entry>"``; the returned index is
    where inserted code would execute each time the site is reached.
    """
    if site == "<entry>":
        return 0
    for idx, instr in enumerate(fn.code):
        if instr.is_label and instr.arg == site:
            return idx + 1
    raise RewriteError(f"{fn.name}: no trace site {site!r}")


def insert_at_site(
    module: Module, key: SiteKey, code: Sequence[Instruction]
) -> None:
    """Insert ``code`` so it runs on every execution of trace site ``key``.

    The code must already have fresh labels (see
    :func:`freshen_template`) and must be stack-neutral.
    """
    fn = module.function(key.function)
    idx = site_index(fn, key.site)
    fn.code[idx:idx] = list(code)


def append_code(fn: Function, code: Sequence[Instruction]) -> None:
    fn.code.extend(code)


def count_conditional_branches(module: Module) -> int:
    """Total static conditional branches (Fig. 8(c)'s 'branch increase'
    denominators are computed from this)."""
    total = 0
    for fn in module.functions.values():
        for instr in fn.real_instructions():
            if instr.is_conditional:
                total += 1
    return total
