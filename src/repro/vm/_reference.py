"""The seed WVM interpreter, kept verbatim as a reference engine.

This is the straightforward walking-the-instruction-stream engine the
repository started with (paper Sections 3.1/3.3). The fast path in
:mod:`repro.vm.interpreter` must be observably indistinguishable from
it -- same outputs, step counts, traps and traces -- so it survives
here as (a) the differential-testing oracle and (b) the "pre-PR
engine" baseline that `benchmarks/regression.py` measures speedups
against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .instructions import wrap64
from .program import Function, Module
from .tracing import BranchEvent, RunResult, SiteKey, Trace, TracePoint

from .interpreter import DEFAULT_MAX_STEPS, VMError


class _Frame:
    __slots__ = ("fn", "code", "labels", "pc", "locals", "stack")

    def __init__(self, fn: Function, labels: Dict[str, int], args: Sequence[int]):
        self.fn = fn
        self.code = fn.code
        self.labels = labels
        self.pc = 0
        self.locals: List[int] = list(args) + [0] * (fn.locals_count - len(args))
        self.stack: List[int] = []


class ReferenceInterpreter:
    """Executes a module; optionally records a trace.

    ``trace_mode``:
      * ``None`` — no tracing (fastest; cost evaluation runs);
      * ``"branch"`` — record conditional-branch events only
        (recognition);
      * ``"full"`` — branch events plus per-site variable snapshots
        (the embedding-time tracing phase).
    """

    def __init__(
        self,
        module: Module,
        max_steps: int = DEFAULT_MAX_STEPS,
        trace_mode: Optional[str] = None,
    ):
        if trace_mode not in (None, "branch", "full"):
            raise ValueError(f"bad trace_mode {trace_mode!r}")
        module.validate_structure()
        self.module = module
        self.max_steps = max_steps
        self.trace_mode = trace_mode
        self._labels: Dict[str, Dict[str, int]] = {
            name: fn.labels() for name, fn in module.functions.items()
        }

    # -- public API ---------------------------------------------------------

    def run(self, inputs: Sequence[int] = ()) -> RunResult:
        """Execute from the entry function until halt or return.

        ``inputs`` is the secret input sequence consumed by ``input``
        instructions (the watermark key at trace time).
        """
        trace = Trace() if self.trace_mode else None
        full = self.trace_mode == "full"
        module = self.module
        globals_: List[int] = [0] * module.globals_count
        output: List[int] = []
        input_pos = 0
        heap: List[List[int]] = []

        entry = module.functions[module.entry]
        frames: List[_Frame] = [_Frame(entry, self._labels[entry.name], ())]
        if full:
            self._record_site(trace, frames[-1], "<entry>", globals_)

        steps = 0
        max_steps = self.max_steps
        halted = False

        while frames:
            frame = frames[-1]
            code = frame.code
            if frame.pc >= len(code):
                raise VMError(
                    f"{frame.fn.name}: fell off the end of the code"
                )
            instr = code[frame.pc]
            op = instr.op

            if op == "label":
                frame.pc += 1
                if full:
                    self._record_site(trace, frame, instr.arg, globals_)
                continue

            steps += 1
            if steps > max_steps:
                raise VMError(f"step limit of {max_steps} exceeded")

            stack = frame.stack
            try:
                if op == "const":
                    stack.append(instr.arg)
                    frame.pc += 1
                elif op == "load":
                    stack.append(frame.locals[instr.arg])
                    frame.pc += 1
                elif op == "store":
                    frame.locals[instr.arg] = stack.pop()
                    frame.pc += 1
                elif op == "iinc":
                    frame.locals[instr.arg] = wrap64(
                        frame.locals[instr.arg] + instr.arg2
                    )
                    frame.pc += 1
                elif op in _BINARY_ARITH:
                    b = stack.pop()
                    a = stack.pop()
                    stack.append(_BINARY_ARITH[op](a, b))
                    frame.pc += 1
                elif op in _UNARY_ARITH:
                    stack.append(_UNARY_ARITH[op](stack.pop()))
                    frame.pc += 1
                elif op in _CONDITIONS:
                    if op.startswith("if_icmp"):
                        b = stack.pop()
                        a = stack.pop()
                    else:
                        b = 0
                        a = stack.pop()
                    taken = _CONDITIONS[op](a, b)
                    if taken:
                        target = frame.labels.get(instr.arg)
                        if target is None:
                            raise VMError(
                                f"{frame.fn.name}: branch to missing label "
                                f"{instr.arg!r}"
                            )
                        frame.pc = target
                    else:
                        frame.pc += 1
                    if trace is not None:
                        follower = code[frame.pc] if frame.pc < len(code) else instr
                        trace.branches.append(
                            BranchEvent(instr, follower, taken)
                        )
                elif op == "goto":
                    target = frame.labels.get(instr.arg)
                    if target is None:
                        raise VMError(
                            f"{frame.fn.name}: goto missing label {instr.arg!r}"
                        )
                    frame.pc = target
                elif op == "call":
                    callee = self.module.functions.get(instr.arg)
                    if callee is None:
                        raise VMError(f"call to unknown function {instr.arg!r}")
                    if len(stack) < callee.params:
                        raise VMError(
                            f"{frame.fn.name}: stack underflow calling "
                            f"{callee.name}"
                        )
                    if len(frames) >= 4096:
                        raise VMError("call stack overflow")
                    args = stack[len(stack) - callee.params:]
                    del stack[len(stack) - callee.params:]
                    frame.pc += 1
                    frames.append(
                        _Frame(callee, self._labels[callee.name], args)
                    )
                    if full:
                        self._record_site(trace, frames[-1], "<entry>", globals_)
                elif op == "ret":
                    value = stack.pop()
                    frames.pop()
                    if frames:
                        frames[-1].stack.append(value)
                    else:
                        halted = True
                elif op == "dup":
                    stack.append(stack[-1])
                    frame.pc += 1
                elif op == "pop":
                    stack.pop()
                    frame.pc += 1
                elif op == "swap":
                    stack[-1], stack[-2] = stack[-2], stack[-1]
                    frame.pc += 1
                elif op == "gload":
                    stack.append(globals_[instr.arg])
                    frame.pc += 1
                elif op == "gstore":
                    globals_[instr.arg] = stack.pop()
                    frame.pc += 1
                elif op == "print":
                    output.append(stack.pop())
                    frame.pc += 1
                elif op == "input":
                    if input_pos >= len(inputs):
                        raise VMError("input sequence exhausted")
                    stack.append(inputs[input_pos])
                    input_pos += 1
                    frame.pc += 1
                elif op == "newarray":
                    length = stack.pop()
                    if length < 0 or length > 10_000_000:
                        raise VMError(f"bad array length {length}")
                    heap.append([0] * length)
                    stack.append(len(heap) - 1)
                    frame.pc += 1
                elif op == "aload":
                    index = stack.pop()
                    ref = stack.pop()
                    stack.append(self._array(heap, ref, index)[index])
                    frame.pc += 1
                elif op == "astore":
                    value = stack.pop()
                    index = stack.pop()
                    ref = stack.pop()
                    self._array(heap, ref, index)[index] = value
                    frame.pc += 1
                elif op == "alen":
                    ref = stack.pop()
                    if not 0 <= ref < len(heap):
                        raise VMError(f"bad array reference {ref}")
                    stack.append(len(heap[ref]))
                    frame.pc += 1
                elif op == "nop":
                    frame.pc += 1
                elif op == "halt":
                    halted = True
                    frames.clear()
                else:  # pragma: no cover - opcode table is closed
                    raise VMError(f"unimplemented opcode {op!r}")
            except IndexError:
                raise VMError(
                    f"{frame.fn.name}@{frame.pc}: stack underflow on {op}"
                ) from None

        return RunResult(output=output, steps=steps, trace=trace, halted=halted)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _array(heap: List[List[int]], ref: int, index: int) -> List[int]:
        if not 0 <= ref < len(heap):
            raise VMError(f"bad array reference {ref}")
        arr = heap[ref]
        if not 0 <= index < len(arr):
            raise VMError(f"array index {index} out of bounds ({len(arr)})")
        return arr

    @staticmethod
    def _record_site(
        trace: Trace,
        frame: _Frame,
        site: str,
        globals_: List[int],
    ) -> None:
        trace.points.append(
            TracePoint(
                SiteKey(frame.fn.name, site),
                tuple(frame.locals),
                tuple(globals_),
            )
        )


def _div(a: int, b: int) -> int:
    if b == 0:
        raise VMError("division by zero")
    q = abs(a) // abs(b)
    return wrap64(-q if (a < 0) != (b < 0) else q)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise VMError("modulo by zero")
    return wrap64(a - _div(a, b) * b)


def _shl(a: int, b: int) -> int:
    return wrap64(a << (b & 63))


def _shr(a: int, b: int) -> int:
    return wrap64(a >> (b & 63))


_BINARY_ARITH = {
    "add": lambda a, b: wrap64(a + b),
    "sub": lambda a, b: wrap64(a - b),
    "mul": lambda a, b: wrap64(a * b),
    "div": _div,
    "mod": _mod,
    "band": lambda a, b: wrap64(a & b),
    "bor": lambda a, b: wrap64(a | b),
    "bxor": lambda a, b: wrap64(a ^ b),
    "shl": _shl,
    "shr": _shr,
}

_UNARY_ARITH = {
    "neg": lambda a: wrap64(-a),
    "bnot": lambda a: wrap64(~a),
}

_CONDITIONS = {
    "if_icmpeq": lambda a, b: a == b,
    "if_icmpne": lambda a, b: a != b,
    "if_icmplt": lambda a, b: a < b,
    "if_icmple": lambda a, b: a <= b,
    "if_icmpgt": lambda a, b: a > b,
    "if_icmpge": lambda a, b: a >= b,
    "ifeq": lambda a, b: a == b,
    "ifne": lambda a, b: a != b,
    "iflt": lambda a, b: a < b,
    "ifle": lambda a, b: a <= b,
    "ifgt": lambda a, b: a > b,
    "ifge": lambda a, b: a >= b,
}


def run_module_reference(
    module: Module,
    inputs: Sequence[int] = (),
    trace_mode: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RunResult:
    """Convenience wrapper: build an interpreter and run the module."""
    return ReferenceInterpreter(module, max_steps=max_steps, trace_mode=trace_mode).run(
        inputs
    )
