"""WVM program containers: functions and modules.

A :class:`Module` is the unit the watermarker operates on (the analog
of a jar file in the paper's SandMark implementation). It owns a set
of named functions and a global-variable table. Functions carry their
code as a flat list of :class:`Instruction` objects with symbolic
labels.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from .instructions import Instruction, LABEL_OPERANDS


class VMFormatError(Exception):
    """Structural problem in a module or function (pre-verification)."""


@dataclass
class Function:
    """A WVM function.

    ``params`` parameters arrive in local slots ``0 .. params-1``;
    ``locals_count`` is the total number of local slots (``>= params``).
    """

    name: str
    params: int
    locals_count: int
    code: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.params < 0:
            raise VMFormatError(f"{self.name}: negative params")
        if self.locals_count < self.params:
            raise VMFormatError(
                f"{self.name}: locals_count {self.locals_count} < "
                f"params {self.params}"
            )

    # -- labels ------------------------------------------------------------

    def labels(self) -> Dict[str, int]:
        """Map from label name to its index in ``code``.

        Raises :class:`VMFormatError` on duplicate labels.
        """
        out: Dict[str, int] = {}
        for idx, instr in enumerate(self.code):
            if instr.is_label:
                if instr.arg in out:
                    raise VMFormatError(
                        f"{self.name}: duplicate label {instr.arg!r}"
                    )
                out[instr.arg] = idx
        return out

    def fresh_label(self, hint: str = "wm") -> str:
        """A label name unused in this function."""
        existing = {i.arg for i in self.code if i.is_label}
        for n in itertools.count():
            candidate = f"{hint}_{n}"
            if candidate not in existing:
                return candidate
        raise AssertionError("unreachable")

    def fresh_labels(self, count: int, hint: str = "wm") -> List[str]:
        """``count`` distinct unused label names."""
        existing = {i.arg for i in self.code if i.is_label}
        out: List[str] = []
        counter = itertools.count()
        while len(out) < count:
            candidate = f"{hint}_{next(counter)}"
            if candidate not in existing:
                existing.add(candidate)
                out.append(candidate)
        return out

    def alloc_local(self) -> int:
        """Allocate a fresh local slot and return its index."""
        slot = self.locals_count
        self.locals_count += 1
        return slot

    # -- size --------------------------------------------------------------

    #: Fixed per-function container overhead (name table entry, header).
    HEADER_BYTES = 16

    def byte_size(self) -> int:
        """Encoded size of this function in bytes (labels are free)."""
        return self.HEADER_BYTES + sum(i.byte_size for i in self.code)

    def real_instructions(self) -> Iterator[Instruction]:
        """All non-label instructions, in order."""
        return (i for i in self.code if not i.is_label)

    def instruction_count(self) -> int:
        return sum(1 for _ in self.real_instructions())

    def copy(self) -> "Function":
        """Deep copy: fresh Instruction objects, same structure."""
        return Function(
            self.name,
            self.params,
            self.locals_count,
            [i.copy() for i in self.code],
        )


@dataclass
class Module:
    """A WVM module: named functions plus a global table."""

    functions: Dict[str, Function] = field(default_factory=dict)
    globals_count: int = 0
    entry: str = "main"

    #: Fixed module container overhead (magic, version, tables).
    HEADER_BYTES = 32

    def add(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise VMFormatError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise VMFormatError(f"no function named {name!r}") from None

    def alloc_global(self) -> int:
        idx = self.globals_count
        self.globals_count += 1
        return idx

    def byte_size(self) -> int:
        """Encoded size of the whole module in bytes."""
        return self.HEADER_BYTES + sum(
            f.byte_size() for f in self.functions.values()
        )

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def copy(self) -> "Module":
        """Deep copy with fresh Instruction objects throughout."""
        m = Module(
            {name: fn.copy() for name, fn in self.functions.items()},
            self.globals_count,
            self.entry,
        )
        return m

    def validate_structure(self) -> None:
        """Cheap structural checks (full checking lives in the verifier).

        * entry exists and takes no parameters,
        * every label operand refers to an existing label,
        * every call target exists,
        * local/global indices are in range.
        """
        if self.entry not in self.functions:
            raise VMFormatError(f"entry function {self.entry!r} missing")
        if self.functions[self.entry].params != 0:
            raise VMFormatError("entry function must take no parameters")
        for fn in self.functions.values():
            labels = fn.labels()
            for instr in fn.code:
                if instr.op in LABEL_OPERANDS and not instr.is_label:
                    if instr.arg not in labels:
                        raise VMFormatError(
                            f"{fn.name}: branch to unknown label {instr.arg!r}"
                        )
                elif instr.op == "call":
                    if instr.arg not in self.functions:
                        raise VMFormatError(
                            f"{fn.name}: call to unknown function {instr.arg!r}"
                        )
                elif instr.op in ("load", "store"):
                    if not 0 <= instr.arg < fn.locals_count:
                        raise VMFormatError(
                            f"{fn.name}: local slot {instr.arg} out of range"
                        )
                elif instr.op == "iinc":
                    if not 0 <= instr.arg < fn.locals_count:
                        raise VMFormatError(
                            f"{fn.name}: iinc slot {instr.arg} out of range"
                        )
                elif instr.op in ("gload", "gstore"):
                    if not 0 <= instr.arg < self.globals_count:
                        raise VMFormatError(
                            f"{fn.name}: global {instr.arg} out of range"
                        )
