"""WVM instruction set.

WVM is the stack-based virtual machine standing in for Java bytecode
(see DESIGN.md, substitution table). The design mirrors the properties
path-based watermarking actually relies on:

* values are integers; arrays are heap references;
* locals live in numbered slots, globals in a module-wide table;
* conditional branches are two-way (taken / fall-through) and binary
  in nature — the property Section 2 of the paper builds on;
* code is a list of :class:`Instruction` objects; branch targets are
  symbolic *labels* (pseudo-instructions), which makes semantics-
  preserving rewriting — both by the watermark embedder and by the
  attack suite — a matter of list splicing, exactly as convenient as
  bytecode rewriting frameworks like SandMark make it;
* every instruction has a defined encoded byte size, so program growth
  (Figures 8(b) and 9(a)) is measured in bytes, not instruction counts.

Signed 64-bit arithmetic with wraparound is used, matching Java's
``long`` semantics (division truncates toward zero and traps on zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# Opcode tables
# ---------------------------------------------------------------------------

#: opcode -> (stack pops, stack pushes, encoded byte size)
#: ``None`` pops means variable (determined by the operand, e.g. call).
OPCODES: Dict[str, Tuple[Optional[int], int, int]] = {
    # stack manipulation
    "const": (0, 1, 5),      # push immediate
    "dup": (1, 2, 1),
    "pop": (1, 0, 1),
    "swap": (2, 2, 1),
    # locals / globals
    "load": (0, 1, 2),       # push locals[arg]
    "store": (1, 0, 2),      # locals[arg] = pop
    "iinc": (0, 0, 3),       # locals[arg0] += arg1  (no stack traffic)
    "gload": (0, 1, 3),      # push globals[arg]
    "gstore": (1, 0, 3),     # globals[arg] = pop
    # arithmetic (binary ops pop b then a, push a OP b)
    "add": (2, 1, 1),
    "sub": (2, 1, 1),
    "mul": (2, 1, 1),
    "div": (2, 1, 1),
    "mod": (2, 1, 1),
    "neg": (1, 1, 1),
    # bitwise
    "band": (2, 1, 1),
    "bor": (2, 1, 1),
    "bxor": (2, 1, 1),
    "bnot": (1, 1, 1),
    "shl": (2, 1, 1),
    "shr": (2, 1, 1),        # arithmetic shift right
    # control flow: two-operand compare-and-branch (pop b, a)
    "if_icmpeq": (2, 0, 3),
    "if_icmpne": (2, 0, 3),
    "if_icmplt": (2, 0, 3),
    "if_icmple": (2, 0, 3),
    "if_icmpgt": (2, 0, 3),
    "if_icmpge": (2, 0, 3),
    # control flow: compare-with-zero (pop a)
    "ifeq": (1, 0, 3),
    "ifne": (1, 0, 3),
    "iflt": (1, 0, 3),
    "ifle": (1, 0, 3),
    "ifgt": (1, 0, 3),
    "ifge": (1, 0, 3),
    "goto": (0, 0, 3),
    # calls
    "call": (None, 1, 3),    # pops callee.params, pushes return value
    "ret": (1, 0, 1),        # return top of stack
    # arrays
    "newarray": (1, 1, 1),   # pop length, push reference
    "aload": (2, 1, 1),      # pop index, ref; push ref[index]
    "astore": (3, 0, 1),     # pop value, index, ref; ref[index] = value
    "alen": (1, 1, 1),       # pop ref, push length
    # i/o and misc
    "print": (1, 0, 1),      # pop, append to program output
    "input": (0, 1, 1),      # push next secret-input value
    "nop": (0, 0, 1),
    "halt": (0, 0, 1),
    # pseudo-instruction: branch target marker, zero encoded size
    "label": (0, 0, 0),
}

CONDITIONAL_BRANCHES = frozenset({
    "if_icmpeq", "if_icmpne", "if_icmplt",
    "if_icmple", "if_icmpgt", "if_icmpge",
    "ifeq", "ifne", "iflt", "ifle", "ifgt", "ifge",
})

#: Opposite-sense opcode for each conditional branch (used by the
#: branch-sense-inversion attack and by code generators).
INVERSES: Dict[str, str] = {
    "if_icmpeq": "if_icmpne", "if_icmpne": "if_icmpeq",
    "if_icmplt": "if_icmpge", "if_icmpge": "if_icmplt",
    "if_icmple": "if_icmpgt", "if_icmpgt": "if_icmple",
    "ifeq": "ifne", "ifne": "ifeq",
    "iflt": "ifge", "ifge": "iflt",
    "ifle": "ifgt", "ifgt": "ifle",
}

UNCONDITIONAL_TRANSFERS = frozenset({"goto", "ret", "halt"})

BRANCHING = CONDITIONAL_BRANCHES | frozenset({"goto"})

#: Opcodes whose operand is a label name.
LABEL_OPERANDS = CONDITIONAL_BRANCHES | frozenset({"goto", "label"})

#: Opcodes whose operand is a local-variable slot.
LOCAL_OPERANDS = frozenset({"load", "store"})

#: Opcodes whose operand is a global index.
GLOBAL_OPERANDS = frozenset({"gload", "gstore"})

# 64-bit signed wraparound helpers (Java long semantics).
_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def wrap64(v: int) -> int:
    """Wrap a Python int to signed 64-bit two's-complement."""
    v &= _MASK64
    return v - (1 << 64) if v & _SIGN64 else v


@dataclass(eq=False)
class Instruction:
    """A single WVM instruction.

    Identity (not value) equality is deliberate: the trace bit-string
    decoder keys on the *static instruction itself*, which is exactly
    what survives reordering and renaming attacks. ``eq=False`` keeps
    the default id-based ``__hash__``/``__eq__``.
    """

    op: str
    arg: Any = None
    arg2: Any = None

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")

    @property
    def is_conditional(self) -> bool:
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_label(self) -> bool:
        return self.op == "label"

    @property
    def byte_size(self) -> int:
        return OPCODES[self.op][2]

    def copy(self) -> "Instruction":
        """A fresh instruction with the same opcode and operands."""
        return Instruction(self.op, self.arg, self.arg2)

    def __repr__(self) -> str:
        parts = [self.op]
        if self.arg is not None:
            parts.append(str(self.arg))
        if self.arg2 is not None:
            parts.append(str(self.arg2))
        return f"<{' '.join(parts)}>"


def ins(op: str, arg: Any = None, arg2: Any = None) -> Instruction:
    """Shorthand constructor used heavily by code generators and tests."""
    return Instruction(op, arg, arg2)


def label(name: str) -> Instruction:
    """A label pseudo-instruction."""
    return Instruction("label", name)
