"""WVM bytecode verifier.

Models the Java bytecode verifier the paper leans on (footnote 1 of
Section 3 explains that verifier constraints are what rule out the
branch-function trick for bytecode). The checks:

* every branch target exists; every call target exists with an arity
  the stack can satisfy;
* stack discipline: the operand-stack depth at each instruction is a
  static constant; depths agree at control-flow joins; no underflow;
* every path ends in ``ret`` or ``halt`` (no falling off the end);
* local/global slot indices are in range.

The embedder runs the verifier after every insertion, and the attack
harness runs it after every transformation — a transformed module that
fails verification counts as a broken program, just as a mangled class
file would be rejected by the JVM.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .instructions import (
    CONDITIONAL_BRANCHES,
    OPCODES,
)
from .program import Function, Module, VMFormatError


class VerificationError(Exception):
    """The module violates WVM bytecode rules."""


def verify_module(module: Module) -> None:
    """Verify every function of ``module``; raise on the first failure."""
    try:
        module.validate_structure()
    except VMFormatError as exc:
        raise VerificationError(str(exc)) from exc
    for fn in module.functions.values():
        verify_function(fn, module)


def verify_function(fn: Function, module: Module) -> None:
    """Abstract-interpret stack depths over the function's code."""
    code = fn.code
    if not code:
        raise VerificationError(f"{fn.name}: empty function body")
    labels = fn.labels()
    depth_at: Dict[int, int] = {}
    work: List[Tuple[int, int]] = [(0, 0)]

    while work:
        pc, depth = work.pop()
        while True:
            if pc >= len(code):
                raise VerificationError(
                    f"{fn.name}: control falls off the end of the code"
                )
            known = depth_at.get(pc)
            if known is not None:
                if known != depth:
                    raise VerificationError(
                        f"{fn.name}@{pc}: stack depth mismatch at join "
                        f"({known} vs {depth})"
                    )
                break  # already explored from here with this depth
            depth_at[pc] = depth
            instr = code[pc]
            op = instr.op

            if op == "label":
                pc += 1
                continue

            pops, pushes, _size = OPCODES[op]
            if op == "call":
                callee = module.functions.get(instr.arg)
                if callee is None:
                    raise VerificationError(
                        f"{fn.name}@{pc}: call to unknown function "
                        f"{instr.arg!r}"
                    )
                pops = callee.params
            assert pops is not None
            if depth < pops:
                raise VerificationError(
                    f"{fn.name}@{pc}: stack underflow on {op} "
                    f"(depth {depth}, needs {pops})"
                )
            depth = depth - pops + pushes

            if op in CONDITIONAL_BRANCHES:
                target = labels.get(instr.arg)
                if target is None:
                    raise VerificationError(
                        f"{fn.name}@{pc}: branch to unknown label "
                        f"{instr.arg!r}"
                    )
                work.append((target, depth))
                pc += 1
                continue
            if op == "goto":
                target = labels.get(instr.arg)
                if target is None:
                    raise VerificationError(
                        f"{fn.name}@{pc}: goto unknown label {instr.arg!r}"
                    )
                pc = target
                continue
            if op in ("ret", "halt"):
                break
            pc += 1

    _check_slot_ranges(fn, module)


def _check_slot_ranges(fn: Function, module: Module) -> None:
    for pc, instr in enumerate(fn.code):
        op = instr.op
        if op in ("load", "store", "iinc"):
            if not isinstance(instr.arg, int) or not (
                0 <= instr.arg < fn.locals_count
            ):
                raise VerificationError(
                    f"{fn.name}@{pc}: bad local slot {instr.arg!r}"
                )
        elif op in ("gload", "gstore"):
            if not isinstance(instr.arg, int) or not (
                0 <= instr.arg < module.globals_count
            ):
                raise VerificationError(
                    f"{fn.name}@{pc}: bad global index {instr.arg!r}"
                )
        elif op == "const":
            if not isinstance(instr.arg, int):
                raise VerificationError(
                    f"{fn.name}@{pc}: const operand must be an int"
                )


def is_verifiable(module: Module) -> bool:
    """Boolean convenience wrapper around :func:`verify_module`."""
    try:
        verify_module(module)
    except VerificationError:
        return False
    return True
