"""Prometheus text-exposition conformance checking.

``MetricsRegistry.to_prometheus`` claims to emit scrape-valid text;
this module is the auditor that holds it to that claim without
needing ``promtool`` installed. :func:`check_exposition` parses an
exposition document and returns a list of human-readable problems —
empty means conformant. It is used three ways: by the unit tests in
``tests/test_metrics_exposition.py``, by the CI obs gate against a
live daemon's ``/metrics``, and available to operators as
``repro.obs.promcheck.check_exposition`` for scrape debugging.

Checked invariants (the subset of the exposition format this
codebase can violate):

* every sample line parses: valid metric name, well-formed label
  pairs with correctly escaped values, a numeric value;
* at most one ``# TYPE`` per metric family, declared before its
  samples, with a known type — and the type must match the
  instrument (a ``Gauge`` exposing ``counter`` is the classic
  subclassing bug this audit exists to catch);
* every sample belongs to a declared family: bare name for counters
  and gauges, ``_bucket``/``_sum``/``_count`` suffixes for
  histograms;
* histogram series are complete and coherent: bucket counts are
  cumulative (monotone non-decreasing in ``le`` order), the final
  bucket is ``le="+Inf"`` and equals ``_count``, and ``_count`` and
  ``_sum`` are present for every label set.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["check_exposition"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\.)*)"'
)
_KNOWN_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"}
)
_ESCAPES = frozenset({"\\", '"', "n"})


def _parse_labels(
    body: str, where: str, problems: List[str]
) -> Optional[Dict[str, str]]:
    """Parse a ``{...}`` label body, validating escapes; None on error."""
    labels: Dict[str, str] = {}
    position = 0
    while position < len(body):
        match = _LABEL_PAIR.match(body, position)
        if match is None:
            problems.append(f"{where}: malformed label body {body!r}")
            return None
        value = match.group("value")
        index = 0
        while index < len(value):
            if value[index] == "\\":
                if index + 1 >= len(value) or value[index + 1] not in _ESCAPES:
                    problems.append(
                        f"{where}: bad escape in label value {value!r}"
                    )
                    return None
                index += 2
            else:
                index += 1
        key = match.group("key")
        if key in labels:
            problems.append(f"{where}: duplicate label {key!r}")
            return None
        labels[key] = value
        position = match.end()
        if position < len(body):
            if body[position] != ",":
                problems.append(f"{where}: malformed label body {body!r}")
                return None
            position += 1
    return labels


def _parse_value(text: str, where: str, problems: List[str]) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        problems.append(f"{where}: non-numeric sample value {text!r}")
        return float("nan")


def _family_of(
    name: str, types: Dict[str, str]
) -> Optional[Tuple[str, str]]:
    """Resolve a sample name to its declared (family, type)."""
    if name in types:
        return name, types[name]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base, "histogram"
    return None


def check_exposition(text: str) -> List[str]:
    """Audit one exposition document; returns problems (empty = ok)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    sampled: Dict[str, bool] = {}
    # histogram series keyed by (family, labels-sans-le):
    # buckets as (le, count), plus observed _sum/_count values.
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                  List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    sums: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    for number, line in enumerate(text.splitlines(), 1):
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"{where}: malformed TYPE line {line!r}")
                continue
            _, _, name, kind = parts
            if not _METRIC_NAME.match(name):
                problems.append(f"{where}: bad metric name {name!r}")
                continue
            if kind not in _KNOWN_TYPES:
                problems.append(
                    f"{where}: unknown type {kind!r} for {name}"
                )
                continue
            if name in types:
                problems.append(
                    f"{where}: duplicate # TYPE for {name} "
                    f"(already {types[name]})"
                )
                continue
            if sampled.get(name):
                problems.append(
                    f"{where}: # TYPE for {name} after its samples"
                )
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _METRIC_NAME.match(parts[2]):
                problems.append(f"{where}: malformed HELP line {line!r}")
            continue
        if line.startswith("#"):
            continue  # free-form comment

        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"{where}: unparsable sample line {line!r}")
            continue
        name = match.group("name")
        label_body = match.group("labels")
        labels = (
            _parse_labels(label_body, where, problems)
            if label_body is not None
            else {}
        )
        if labels is None:
            continue
        value = _parse_value(match.group("value"), where, problems)

        resolved = _family_of(name, types)
        if resolved is None:
            problems.append(
                f"{where}: sample {name!r} has no preceding # TYPE"
            )
            # Remember the bare name: a # TYPE declared further down
            # gets the more precise "after its samples" diagnosis.
            sampled[name] = True
            continue
        family, kind = resolved
        sampled[family] = True
        if kind == "histogram":
            if name == family:
                problems.append(
                    f"{where}: histogram {family} exposes a bare "
                    f"sample (want _bucket/_sum/_count)"
                )
                continue
            series_labels = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            key = (family, series_labels)
            if name.endswith("_bucket"):
                le_text = labels.get("le")
                if le_text is None:
                    problems.append(
                        f"{where}: {family}_bucket without an 'le' label"
                    )
                    continue
                le = _parse_value(le_text, where, problems)
                buckets.setdefault(key, []).append((le, value))
            elif name.endswith("_count"):
                counts[key] = value
            else:
                sums[key] = value
        else:
            if name != family:
                problems.append(
                    f"{where}: sample {name!r} does not match its "
                    f"family {family!r}"
                )
            if "le" in labels:
                problems.append(
                    f"{where}: non-histogram {family} uses the "
                    f"reserved 'le' label"
                )
            if kind == "counter" and value < 0:
                problems.append(
                    f"{where}: counter {family} has negative value"
                )

    # -- cross-line histogram coherence -------------------------------------
    for key, series in buckets.items():
        family, series_labels = key
        label_text = "{" + ",".join(
            f'{k}="{v}"' for k, v in series_labels
        ) + "}"
        where = f"{family}{label_text}"
        ordered = sorted(series, key=lambda pair: pair[0])
        les = [le for le, _ in ordered]
        if len(set(les)) != len(les):
            problems.append(f"{where}: duplicate bucket bounds")
        if not ordered or ordered[-1][0] != float("inf"):
            problems.append(f"{where}: no le=\"+Inf\" bucket")
        cumulative = [count for _, count in ordered]
        if any(
            later < earlier
            for earlier, later in zip(cumulative, cumulative[1:])
        ):
            problems.append(
                f"{where}: bucket counts are not cumulative "
                f"(monotone non-decreasing)"
            )
        if key not in counts:
            problems.append(f"{where}: missing {family}_count sample")
        elif ordered and ordered[-1][0] == float("inf") and (
            ordered[-1][1] != counts[key]
        ):
            problems.append(
                f"{where}: +Inf bucket ({ordered[-1][1]:g}) disagrees "
                f"with _count ({counts[key]:g})"
            )
        if key not in sums:
            problems.append(f"{where}: missing {family}_sum sample")
    for key in counts:
        if key not in buckets:
            family, _ = key
            problems.append(
                f"{family}: _count sample without any _bucket samples"
            )
    return problems


def assert_conformant(text: str) -> None:
    """Raise ``AssertionError`` listing every problem found."""
    problems = check_exposition(text)
    if problems:
        raise AssertionError(
            "exposition is not conformant:\n" + "\n".join(problems)
        )


if __name__ == "__main__":  # pragma: no cover
    import sys

    issues = check_exposition(sys.stdin.read())
    for issue in issues:
        print(issue, file=sys.stderr)
    sys.exit(1 if issues else 0)
