"""Dispatch-count profiles of the WVM fast-path engine.

The interpreter's profiled loop specializations (see
:mod:`repro.vm.interpreter`) count how many times each dispatch slot
executed — unfused opcodes and superinstructions alike. This module
turns those raw per-opcode arrays into something a human (or the next
superinstruction-selection pass) can act on:

* every row named via :func:`repro.vm.compiler.opcode_name`;
* exact executed-instruction totals recovered through
  :func:`repro.vm.compiler.slot_width` (a fused slot covers several
  original instructions);
* the two ratios that drive fusion work: the **superinstruction hit
  rate** (fraction of executed instructions covered by fused slots)
  and the **dispatch reduction** (dispatches saved per instruction);
* optional wall-time context: steps/second and, for traced runs, the
  encoded trace-byte throughput.

Profiles merge (:meth:`DispatchProfile.merge`), so a batch run can sum
the per-copy self-check profiles with the prepare-time trace profile
into one picture of where the engine's dispatches went.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple


@dataclass
class DispatchProfile:
    """Aggregated per-opcode dispatch counts with derived ratios."""

    counts: Dict[str, int] = field(default_factory=dict)
    total_dispatches: int = 0
    total_steps: int = 0
    fused_dispatches: int = 0
    fused_steps: int = 0
    wall_seconds: float = 0.0
    trace_bytes: int = 0
    runs: int = 0

    @staticmethod
    def from_counts(
        raw: Sequence[int],
        wall_seconds: float = 0.0,
        trace_bytes: int = 0,
    ) -> "DispatchProfile":
        """Build from the interpreter's raw per-opcode array."""
        from ..vm.compiler import OP_FUSED_BASE, opcode_name, slot_width

        prof = DispatchProfile(
            wall_seconds=wall_seconds, trace_bytes=trace_bytes, runs=1
        )
        for op, n in enumerate(raw):
            if not n:
                continue
            width = slot_width(op)
            prof.counts[opcode_name(op)] = (
                prof.counts.get(opcode_name(op), 0) + n
            )
            prof.total_dispatches += n
            prof.total_steps += n * width
            if op >= OP_FUSED_BASE:
                prof.fused_dispatches += n
                prof.fused_steps += n * width
        return prof

    def merge(self, other: "DispatchProfile") -> "DispatchProfile":
        """Fold another profile into this one (in place; returns self)."""
        for name, n in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + n
        self.total_dispatches += other.total_dispatches
        self.total_steps += other.total_steps
        self.fused_dispatches += other.fused_dispatches
        self.fused_steps += other.fused_steps
        self.wall_seconds += other.wall_seconds
        self.trace_bytes += other.trace_bytes
        self.runs += other.runs
        return self

    # -- derived ratios -----------------------------------------------------

    @property
    def superinstruction_hit_rate(self) -> float:
        """Fraction of executed instructions covered by fused slots."""
        if self.total_steps == 0:
            return 0.0
        return self.fused_steps / self.total_steps

    @property
    def dispatch_reduction(self) -> float:
        """Dispatches saved per executed instruction by fusion."""
        if self.total_steps == 0:
            return 0.0
        return 1.0 - self.total_dispatches / self.total_steps

    @property
    def steps_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_steps / self.wall_seconds

    @property
    def trace_bytes_per_second(self) -> float:
        """Encoded (binary) trace bytes produced per second of run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.trace_bytes / self.wall_seconds

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest slots by dispatch count."""
        return sorted(
            self.counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counts": dict(sorted(self.counts.items())),
            "total_dispatches": self.total_dispatches,
            "total_steps": self.total_steps,
            "fused_dispatches": self.fused_dispatches,
            "fused_steps": self.fused_steps,
            "superinstruction_hit_rate": self.superinstruction_hit_rate,
            "dispatch_reduction": self.dispatch_reduction,
            "wall_seconds": self.wall_seconds,
            "trace_bytes": self.trace_bytes,
            "runs": self.runs,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "DispatchProfile":
        return DispatchProfile(
            counts={str(k): int(v) for k, v in doc.get("counts", {}).items()},
            total_dispatches=doc.get("total_dispatches", 0),
            total_steps=doc.get("total_steps", 0),
            fused_dispatches=doc.get("fused_dispatches", 0),
            fused_steps=doc.get("fused_steps", 0),
            wall_seconds=doc.get("wall_seconds", 0.0),
            trace_bytes=doc.get("trace_bytes", 0),
            runs=doc.get("runs", 0),
        )

    def write_json(self, fp: TextIO) -> None:
        json.dump(self.to_dict(), fp, indent=2, sort_keys=True)
        fp.write("\n")

    def summary(self, top: int = 10) -> str:
        """A short human-readable account for CLI stderr."""
        lines = [
            f"dispatch profile: {self.total_dispatches} dispatches over "
            f"{self.total_steps} instructions ({self.runs} run(s))",
            f"  superinstruction hit rate: "
            f"{self.superinstruction_hit_rate:.1%} of instructions, "
            f"dispatch reduction {self.dispatch_reduction:.1%}",
        ]
        if self.wall_seconds > 0.0:
            line = (
                f"  throughput: {self.steps_per_second / 1e6:.2f}M steps/s"
            )
            if self.trace_bytes:
                line += (
                    f", trace {self.trace_bytes_per_second / 1e6:.2f}MB/s "
                    f"({self.trace_bytes} bytes)"
                )
            lines.append(line)
        width = max((len(name) for name, _ in self.top(top)), default=0)
        for name, n in self.top(top):
            share = n / self.total_dispatches if self.total_dispatches else 0.0
            lines.append(f"    {name.ljust(width)}  {n:>12}  {share:6.1%}")
        return "\n".join(lines)


def profile_run(
    module: Any,
    inputs: Sequence[int] = (),
    trace_mode: Optional[str] = None,
    max_steps: Optional[int] = None,
) -> Tuple[Any, DispatchProfile]:
    """Run a module with dispatch profiling and wall-time context.

    Returns ``(RunResult, DispatchProfile)``. For traced runs the
    profile also carries the binary-encoded trace size, giving the
    trace-mode byte throughput the engine sustained.
    """
    from ..vm.interpreter import run_module
    from ..vm.trace_io import dump_trace_binary

    kwargs: Dict[str, Any] = {"trace_mode": trace_mode, "profile": True}
    if max_steps is not None:
        kwargs["max_steps"] = max_steps
    start = time.perf_counter()
    result = run_module(module, inputs, **kwargs)
    elapsed = time.perf_counter() - start
    trace_bytes = 0
    if result.trace is not None:
        buf = io.BytesIO()
        dump_trace_binary(result.trace, module, buf)
        trace_bytes = len(buf.getvalue())
    assert result.dispatch_counts is not None
    return result, DispatchProfile.from_counts(
        result.dispatch_counts, wall_seconds=elapsed, trace_bytes=trace_bytes
    )
