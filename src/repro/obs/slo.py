"""Service-level objectives evaluated over the telemetry journal.

The paper measures the watermark with explicit, numeric criteria —
recovery probability per attack cell, slowdown per benchmark — and
this module applies the same discipline to the service around it. An
:class:`Objective` is a declarative statement of acceptable behavior
("p95 embed latency under 30 s", "recognition recovery at least
99%"), an :class:`SLOStatus` is that statement judged against a
window of journal events, and :class:`SLOEngine` runs a whole set of
objectives — in the daemon (``/v1/obs/slo`` and ``/healthz``), in the
``repro obs slo`` CLI gate, and in CI, where an injected fault plan
must flip the gate to failing.

Objective kinds
---------------

``latency_p95``
    p95 of ``http.request`` event durations (optionally filtered to
    one route) must be **at most** ``target`` seconds. The burn rate
    is the fraction of requests over target divided by a 5% allowance
    — burn 1.0 means the tail budget is exactly spent.
``error_rate``
    The fraction of ``http.request`` events with status >= 500 must
    be **at most** ``target``. Burn is observed rate over target.
``recovery_rate``
    The fraction of ``recognize`` events with ``complete=true`` must
    be **at least** ``target``. Burn is observed miss rate over the
    allowed miss rate.
``retry_budget``
    The summed ``count`` of ``batch.retry`` events in the window must
    be **at most** ``target``. Burn is spend over budget.
``dispatch_p95``
    p95 of ``fleet.dispatch`` send durations (optionally filtered to
    one route) must be **at most** ``target`` seconds — the fleet
    dispatcher's tail, measured from hand-off to a worker until its
    response, requeues included as separate samples. Same 5% tail
    allowance as ``latency_p95``.
``fleet_error_rate``
    The fraction of *terminal* ``fleet.dispatch`` outcomes that are
    not ``ok`` must be **at most** ``target``. Intermediate outcomes
    (``requeued``, ``superseded`` — the self-healing machinery doing
    its job) are excluded: only what the caller actually saw counts
    against the budget. Burn is observed rate over target.

An objective with no events in its window reports ``no data`` and
counts as met — absence of traffic is not an outage — but carries
``samples == 0`` so dashboards can tell the two apart.

Specs are JSON documents (``{"objectives": [{...}, ...]}``) so a
deployment can pin its own targets; :func:`default_objectives` is the
set the daemon and CI gate use out of the box.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .journal import Event

__all__ = [
    "Objective",
    "SLOStatus",
    "SLOEngine",
    "default_objectives",
    "evaluate_objectives",
    "load_objectives",
    "percentile",
]

#: Valid objective kinds; anything else is a spec error.
OBJECTIVE_KINDS = ("latency_p95", "error_rate", "recovery_rate",
                   "retry_budget", "dispatch_p95", "fleet_error_rate")

#: Tail allowance for latency objectives: up to this fraction of
#: requests may exceed the p95 target before the burn rate passes 1.
_LATENCY_ALLOWANCE = 0.05


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective."""

    name: str
    kind: str
    target: float
    route: Optional[str] = None
    window_seconds: float = 3600.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r} "
                f"(have: {', '.join(OBJECTIVE_KINDS)})"
            )
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.kind in ("error_rate", "recovery_rate", "fleet_error_rate"):
            if not 0.0 <= self.target <= 1.0:
                raise ValueError(f"{self.kind} target must be in [0, 1]")
        elif self.target <= 0:
            raise ValueError(f"{self.kind} target must be positive")

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "window_seconds": self.window_seconds,
        }
        if self.route is not None:
            doc["route"] = self.route
        if self.description:
            doc["description"] = self.description
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "Objective":
        return Objective(
            name=doc["name"],
            kind=doc["kind"],
            target=float(doc["target"]),
            route=doc.get("route"),
            window_seconds=float(doc.get("window_seconds", 3600.0)),
            description=doc.get("description", ""),
        )


@dataclass
class SLOStatus:
    """One objective judged against a window of events."""

    objective: Objective
    met: bool
    value: Optional[float]
    samples: int
    burn_rate: float
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.objective.to_dict(),
            "met": self.met,
            "value": self.value,
            "samples": self.samples,
            "burn_rate": self.burn_rate,
            "detail": self.detail,
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of no values")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _http_events(
    events: Sequence[Event], route: Optional[str]
) -> List[Event]:
    return [
        e for e in events
        if e.kind == "http.request"
        and (route is None or str(e.attrs.get("route", e.name)) == route)
    ]


def _no_data(objective: Objective) -> SLOStatus:
    return SLOStatus(
        objective=objective, met=True, value=None, samples=0,
        burn_rate=0.0, detail="no data in window",
    )


def _evaluate_one(
    objective: Objective, events: Sequence[Event]
) -> SLOStatus:
    if objective.kind == "latency_p95":
        hits = _http_events(events, objective.route)
        values = [
            float(e.attrs["seconds"]) for e in hits
            if isinstance(e.attrs.get("seconds"), (int, float))
        ]
        if not values:
            return _no_data(objective)
        p95 = percentile(values, 0.95)
        over = sum(1 for v in values if v > objective.target)
        burn = (over / len(values)) / _LATENCY_ALLOWANCE
        return SLOStatus(
            objective=objective,
            met=p95 <= objective.target,
            value=p95,
            samples=len(values),
            burn_rate=burn,
            detail=(
                f"p95 {p95:.3f}s vs {objective.target:g}s over "
                f"{len(values)} request(s)"
            ),
        )

    if objective.kind == "error_rate":
        hits = _http_events(events, objective.route)
        if not hits:
            return _no_data(objective)
        bad = sum(
            1 for e in hits if int(e.attrs.get("status", 0)) >= 500
        )
        rate = bad / len(hits)
        burn = rate / objective.target if objective.target > 0 else (
            0.0 if bad == 0 else math.inf
        )
        return SLOStatus(
            objective=objective,
            met=rate <= objective.target,
            value=rate,
            samples=len(hits),
            burn_rate=burn,
            detail=(
                f"{bad}/{len(hits)} request(s) failed "
                f"({rate:.1%} vs {objective.target:.1%} budget)"
            ),
        )

    if objective.kind == "recovery_rate":
        hits = [e for e in events if e.kind == "recognize"]
        if not hits:
            return _no_data(objective)
        recovered = sum(1 for e in hits if bool(e.attrs.get("complete")))
        rate = recovered / len(hits)
        allowed_miss = 1.0 - objective.target
        miss = 1.0 - rate
        burn = miss / allowed_miss if allowed_miss > 0 else (
            0.0 if miss == 0 else math.inf
        )
        return SLOStatus(
            objective=objective,
            met=rate >= objective.target,
            value=rate,
            samples=len(hits),
            burn_rate=burn,
            detail=(
                f"{recovered}/{len(hits)} recognition(s) complete "
                f"({rate:.1%} vs {objective.target:.1%} floor)"
            ),
        )

    if objective.kind == "dispatch_p95":
        hits = [
            e for e in events
            if e.kind == "fleet.dispatch"
            and (
                objective.route is None
                or str(e.attrs.get("route")) == objective.route
            )
        ]
        values = [
            float(e.attrs["seconds"]) for e in hits
            if isinstance(e.attrs.get("seconds"), (int, float))
        ]
        if not values:
            return _no_data(objective)
        p95 = percentile(values, 0.95)
        over = sum(1 for v in values if v > objective.target)
        burn = (over / len(values)) / _LATENCY_ALLOWANCE
        return SLOStatus(
            objective=objective,
            met=p95 <= objective.target,
            value=p95,
            samples=len(values),
            burn_rate=burn,
            detail=(
                f"dispatch p95 {p95:.3f}s vs {objective.target:g}s over "
                f"{len(values)} send(s)"
            ),
        )

    if objective.kind == "fleet_error_rate":
        terminal = [
            e for e in events
            if e.kind == "fleet.dispatch"
            and str(e.attrs.get("outcome")) not in ("requeued", "superseded")
            and (
                objective.route is None
                or str(e.attrs.get("route")) == objective.route
            )
        ]
        if not terminal:
            return _no_data(objective)
        bad = sum(
            1 for e in terminal if str(e.attrs.get("outcome")) != "ok"
        )
        rate = bad / len(terminal)
        burn = rate / objective.target if objective.target > 0 else (
            0.0 if bad == 0 else math.inf
        )
        return SLOStatus(
            objective=objective,
            met=rate <= objective.target,
            value=rate,
            samples=len(terminal),
            burn_rate=burn,
            detail=(
                f"{bad}/{len(terminal)} terminal dispatch(es) failed "
                f"({rate:.1%} vs {objective.target:.1%} budget)"
            ),
        )

    # retry_budget
    hits = [e for e in events if e.kind == "batch.retry"]
    spent = float(sum(float(e.attrs.get("count", 1)) for e in hits))
    if not hits:
        return _no_data(objective)
    return SLOStatus(
        objective=objective,
        met=spent <= objective.target,
        value=spent,
        samples=len(hits),
        burn_rate=spent / objective.target,
        detail=(
            f"{spent:g} retried cop(ies) vs budget "
            f"{objective.target:g}"
        ),
    )


def evaluate_objectives(
    objectives: Sequence[Objective],
    events: Sequence[Event],
    now: Optional[float] = None,
) -> List[SLOStatus]:
    """Judge every objective over its own window ending at ``now``.

    ``now`` defaults to the newest event's timestamp, so evaluating a
    historical journal does not see every window empty.
    """
    if now is None:
        now = max((e.unix for e in events), default=0.0)
    statuses: List[SLOStatus] = []
    for objective in objectives:
        cutoff = now - objective.window_seconds
        window = [e for e in events if e.unix >= cutoff]
        statuses.append(_evaluate_one(objective, window))
    return statuses


def default_objectives() -> List[Objective]:
    """The out-of-the-box objective set for the serving daemon."""
    return [
        Objective(
            name="embed-latency-p95",
            kind="latency_p95",
            target=30.0,
            route="/v1/embed",
            description="p95 embed request latency stays under 30s",
        ),
        Objective(
            name="embed-error-rate",
            kind="error_rate",
            target=0.02,
            route="/v1/embed",
            description="at most 2% of embed requests may fail (5xx)",
        ),
        Objective(
            name="recognize-error-rate",
            kind="error_rate",
            target=0.02,
            route="/v1/recognize",
            description="at most 2% of recognize requests may fail (5xx)",
        ),
        Objective(
            name="recognition-recovery",
            kind="recovery_rate",
            target=0.99,
            description="at least 99% of recognitions recover a mark",
        ),
        Objective(
            name="batch-retry-budget",
            kind="retry_budget",
            target=25.0,
            description="at most 25 copies resubmitted per window",
        ),
        Objective(
            name="fleet-dispatch-p95",
            kind="dispatch_p95",
            target=30.0,
            description="p95 fleet send latency stays under 30s",
        ),
        Objective(
            name="fleet-error-rate",
            kind="fleet_error_rate",
            target=0.02,
            description=(
                "at most 2% of terminal fleet dispatches may fail"
            ),
        ),
    ]


def load_objectives(path: str) -> List[Objective]:
    """Parse a declarative SLO spec file.

    The format is ``{"objectives": [{...}, ...]}``; each entry feeds
    :meth:`Objective.from_dict`. Raises ``ValueError`` on a malformed
    document so a bad spec fails loudly at startup, not at scrape
    time.
    """
    with open(path) as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or not isinstance(
        doc.get("objectives"), list
    ):
        raise ValueError(
            f"{path}: SLO spec must be {{'objectives': [...]}}"
        )
    objectives: List[Objective] = []
    for entry in doc["objectives"]:
        try:
            objectives.append(Objective.from_dict(entry))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: bad objective {entry!r}: {exc}")
    if not objectives:
        raise ValueError(f"{path}: spec declares no objectives")
    return objectives


class SLOEngine:
    """A set of objectives plus the machinery to report on them."""

    def __init__(self, objectives: Optional[Sequence[Objective]] = None):
        self.objectives = list(
            objectives if objectives is not None else default_objectives()
        )
        if not self.objectives:
            raise ValueError("SLOEngine needs at least one objective")

    def evaluate(
        self, events: Sequence[Event], now: Optional[float] = None
    ) -> List[SLOStatus]:
        return evaluate_objectives(self.objectives, events, now=now)

    def report(
        self, events: Sequence[Event], now: Optional[float] = None
    ) -> Dict[str, Any]:
        """The JSON document ``/v1/obs/slo`` serves: every status plus
        the overall verdict and the worst burn rate."""
        statuses = self.evaluate(events, now=now)
        return {
            "met": all(s.met for s in statuses),
            "breached": [s.objective.name for s in statuses if not s.met],
            "max_burn_rate": max(
                (s.burn_rate for s in statuses), default=0.0
            ),
            "objectives": [s.to_dict() for s in statuses],
        }

    @staticmethod
    def summary(statuses: Sequence[SLOStatus]) -> str:
        """Aligned human-readable table for the CLI."""
        lines: List[str] = []
        width = max((len(s.objective.name) for s in statuses), default=4)
        for status in statuses:
            flag = "ok " if status.met else "FAIL"
            lines.append(
                f"{flag} {status.objective.name:<{width}}  "
                f"burn={status.burn_rate:5.2f}  {status.detail}"
            )
        return "\n".join(lines)
