"""End-to-end observability for the watermarking pipeline.

Zero-dependency spans, metrics and profiling threaded through every
layer of the system — the instrumentation that turns "the batch took
41s" into "the prepare trace took 28s, copy 0413's self-check run
dominated its worker, and 61% of executed instructions went through
superinstructions". Seven pieces:

* :mod:`~repro.obs.spans` — a span/trace API with ambient context
  propagation (:func:`span`, :func:`current_context`, :func:`attach`)
  that survives ``ProcessPoolExecutor`` hops: workers record spans
  locally and the parent grafts them back into one tree;
* :mod:`~repro.obs.metrics` — a Prometheus-shaped metrics registry
  (counters, gauges, histograms) with JSON-lines and Prometheus-text
  exporters;
* :mod:`~repro.obs.journal` — the operational telemetry hub: every
  layer emits structured events (:func:`emit`) and finished spans
  into bounded in-memory rings plus an append-only, size-rotated
  JSONL journal that the daemon's ``/v1/obs/*`` routes and the
  ``repro obs`` CLI read;
* :mod:`~repro.obs.slo` — declarative service-level objectives
  (latency p95, error rate, recovery rate, retry budget) evaluated
  with burn rates over journal windows; the daemon's ``/healthz``
  verdict and the CI gate;
* :mod:`~repro.obs.promcheck` — a Prometheus text-exposition
  conformance auditor (:func:`check_exposition`) used by tests and
  the CI obs gate against a live ``/metrics``;
* :mod:`~repro.obs.vmprofile` — per-opcode dispatch profiles of the
  WVM fast-path engine (superinstruction hit rates, trace byte
  throughput) built from the interpreter's opt-in profiled loops;
* :mod:`~repro.obs.recognition` — structured
  :class:`~repro.obs.recognition.RecognitionReport` diagnostics for
  both recognizers (window/voting/CRT funnel, native chain linkage).

Everything is **pay-for-use**: with tracing disabled, :func:`span` is
a no-op context manager; the interpreter's profiled loops are separate
generated specializations that plain runs never touch; the ambient
metrics registry is a handful of dict updates per pipeline *stage*
(never per instruction).

Typical use::

    from repro import obs

    tracer = obs.enable_tracing()
    with obs.span("batch", copies=100):
        ...
    tracer.write_jsonl(fp)                  # spans, one JSON per line
    print(obs.get_registry().to_prometheus())
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from typing import Any, Optional, Union

from .journal import (
    Event,
    HubConfig,
    TelemetryHub,
    emit,
    get_hub,
    read_events,
    read_journal,
    read_spans,
    set_hub,
)
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .promcheck import check_exposition
from .recognition import RecognitionReport
from .slo import Objective, SLOEngine, SLOStatus, default_objectives
from .spans import (
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    attach,
    current_context,
    render_span_tree,
)
from .timing import StageAccumulator, Stopwatch
from .vmprofile import DispatchProfile, profile_run

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DispatchProfile",
    "Event",
    "Gauge",
    "Histogram",
    "HubConfig",
    "MetricsRegistry",
    "NullTracer",
    "Objective",
    "RecognitionReport",
    "SLOEngine",
    "SLOStatus",
    "Span",
    "SpanContext",
    "StageAccumulator",
    "Stopwatch",
    "TelemetryHub",
    "Tracer",
    "attach",
    "check_exposition",
    "current_context",
    "default_objectives",
    "disable_tracing",
    "emit",
    "enable_tracing",
    "get_hub",
    "get_registry",
    "get_tracer",
    "profile_run",
    "read_events",
    "read_journal",
    "read_spans",
    "render_span_tree",
    "set_hub",
    "set_registry",
    "span",
]

#: The ambient tracer. A ``NullTracer`` until :func:`enable_tracing`
#: swaps a recording one in — library code calls :func:`span`
#: unconditionally and pays nothing while disabled.
_ACTIVE: Union[Tracer, NullTracer] = NullTracer()


def get_tracer() -> Union[Tracer, NullTracer]:
    """The ambient tracer (check ``.enabled`` to see which kind)."""
    return _ACTIVE


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) a recording tracer as the ambient one."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable_tracing() -> None:
    """Restore the no-op ambient tracer."""
    global _ACTIVE
    _ACTIVE = NullTracer()


def span(
    name: str,
    parent: Optional[SpanContext] = None,
    **attributes: Any,
) -> AbstractContextManager:
    """Open a span on the ambient tracer (no-op while disabled)."""
    return _ACTIVE.span(name, parent=parent, **attributes)
