"""Structured recognition diagnostics: *where* a recovery failed.

A failed ``recognize`` used to return nothing actionable — "no
watermark recovered" with the whole funnel invisible. Robustness work
(and the SandMark line of recovery studies) needs the funnel itself:
how many trace windows were decrypted, how many survived the
enumeration range check, what the per-modulus votes looked like, which
moduli the surviving statements covered and which the Generalized CRT
was still missing. :class:`RecognitionReport` carries exactly that,
for both schemes:

* the **bytecode** recognizer fills the window / voting / CRT funnel
  (built from :class:`repro.core.recovery.RecoveryResult` by
  :func:`repro.bytecode_wm.recognizer.recognition_report`);
* the **native** extractor fills the chain diagnostics — observed
  branch-function passes, linked-run structure, selected chain length
  (built by :func:`repro.native_wm.extractor.native_recognition_report`).

The report is plain data: ``to_dict``/``from_dict`` round-trip through
JSON, and :meth:`summary` renders the funnel for CLI stderr.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RecognitionReport:
    """Diagnostic account of one recognition / extraction attempt."""

    scheme: str
    complete: bool
    value: Optional[int] = None

    # -- bytecode funnel: windows -> candidates -> votes -> CRT ------------
    windows_inspected: int = 0
    window_hits: int = 0
    candidates_after_voting: int = 0
    statements_accepted: int = 0
    voting: Dict[int, Dict[int, int]] = field(default_factory=dict)
    clear_winners: Dict[int, int] = field(default_factory=dict)
    moduli: List[int] = field(default_factory=list)
    moduli_covered: List[int] = field(default_factory=list)
    moduli_missing: List[int] = field(default_factory=list)
    recovered_modulus: Optional[int] = None

    # -- native chain diagnostics ------------------------------------------
    events_observed: int = 0
    runs_found: int = 0
    run_lengths: List[int] = field(default_factory=list)
    chain_length: int = 0
    bf_entry: Optional[int] = None
    width: Optional[int] = None

    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "complete": self.complete,
            "value": self.value,
            "windows_inspected": self.windows_inspected,
            "window_hits": self.window_hits,
            "candidates_after_voting": self.candidates_after_voting,
            "statements_accepted": self.statements_accepted,
            "voting": {
                str(i): {str(r): n for r, n in tally.items()}
                for i, tally in self.voting.items()
            },
            "clear_winners": {
                str(i): w for i, w in self.clear_winners.items()
            },
            "moduli": list(self.moduli),
            "moduli_covered": list(self.moduli_covered),
            "moduli_missing": list(self.moduli_missing),
            "recovered_modulus": self.recovered_modulus,
            "events_observed": self.events_observed,
            "runs_found": self.runs_found,
            "run_lengths": list(self.run_lengths),
            "chain_length": self.chain_length,
            "bf_entry": self.bf_entry,
            "width": self.width,
            "notes": list(self.notes),
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "RecognitionReport":
        return RecognitionReport(
            scheme=doc["scheme"],
            complete=doc["complete"],
            value=doc.get("value"),
            windows_inspected=doc.get("windows_inspected", 0),
            window_hits=doc.get("window_hits", 0),
            candidates_after_voting=doc.get("candidates_after_voting", 0),
            statements_accepted=doc.get("statements_accepted", 0),
            voting={
                int(i): {int(r): int(n) for r, n in tally.items()}
                for i, tally in doc.get("voting", {}).items()
            },
            clear_winners={
                int(i): int(w)
                for i, w in doc.get("clear_winners", {}).items()
            },
            moduli=[int(m) for m in doc.get("moduli", [])],
            moduli_covered=[int(m) for m in doc.get("moduli_covered", [])],
            moduli_missing=[int(m) for m in doc.get("moduli_missing", [])],
            recovered_modulus=doc.get("recovered_modulus"),
            events_observed=doc.get("events_observed", 0),
            runs_found=doc.get("runs_found", 0),
            run_lengths=[int(n) for n in doc.get("run_lengths", [])],
            chain_length=doc.get("chain_length", 0),
            bf_entry=doc.get("bf_entry"),
            width=doc.get("width"),
            notes=[str(n) for n in doc.get("notes", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """The funnel, one stage per line, for CLI stderr."""
        head = "recovered" if self.complete else "NOT recovered"
        value = f" {self.value:#x}" if self.value is not None else ""
        lines = [f"{self.scheme} recognition: watermark{value} {head}"]
        if self.scheme == "bytecode":
            lines.append(
                f"  windows: {self.windows_inspected} decrypt attempts, "
                f"{self.window_hits} in-range hits"
            )
            lines.append(
                f"  voting: {len(self.clear_winners)}/{len(self.moduli)} "
                f"moduli with clear winners, "
                f"{self.candidates_after_voting} candidates survive"
            )
            lines.append(
                f"  CRT: {self.statements_accepted} statements accepted, "
                f"covering {len(self.moduli_covered)}/{len(self.moduli)} "
                f"moduli"
            )
            if self.moduli_missing:
                missing = ", ".join(
                    f"p_{i}={self.moduli[i]}" for i in self.moduli_missing
                )
                lines.append(f"  missing moduli: {missing}")
        else:
            lines.append(
                f"  branch function: "
                f"{'entry ' + hex(self.bf_entry) if self.bf_entry is not None else 'not identified'}, "
                f"{self.events_observed} passes observed"
            )
            longest = max(self.run_lengths) if self.run_lengths else 0
            lines.append(
                f"  chains: {self.runs_found} linked runs "
                f"(longest {longest}), selected chain of "
                f"{self.chain_length} (want width+1 = "
                f"{(self.width or 0) + 1})"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
