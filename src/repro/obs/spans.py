"""Spans: hierarchical wall-time intervals with cross-process lineage.

A *span* is one named interval of work ("prepare.trace", "copy.embed")
with a start time, a duration, free-form attributes and a position in
a tree. The tree is what makes a batch run legible: one root span per
CLI invocation, a ``prepare`` subtree for the shared work, and one
``copy`` subtree per fingerprinted copy — including copies embedded in
``ProcessPoolExecutor`` workers, whose spans are recorded in the
worker process and grafted back under the batch span by the parent.

The design is deliberately minimal and dependency-free:

* the *ambient* current span lives in a :mod:`contextvars` variable,
  so nesting works across threads and ``async`` alike;
* a :class:`SpanContext` is a picklable ``(trace_id, span_id)`` pair —
  the only thing that must travel to another process. The receiving
  side either parents new spans under it (:func:`attach`) or passes it
  to :meth:`Tracer.span` explicitly;
* finished spans are plain data (:meth:`Span.to_dict` /
  :meth:`Span.from_dict`), exported as JSON lines and re-importable,
  which is how worker spans return home (:meth:`Tracer.adopt`).

When tracing is disabled the module-level :func:`span` goes through a
:class:`NullTracer` whose context manager touches no clocks and
allocates nothing per call beyond the singleton no-op span.
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    TextIO,
    Union,
)


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


#: Module-level fan-out for finished spans. The telemetry hub
#: (:mod:`repro.obs.journal`) installs its journal writer here so
#: every span any tracer finishes — or adopts from a worker — also
#: lands in the event journal. ``None`` (the default) costs one load
#: and one test per finished span.
_SPAN_SINK: Optional[Callable[["Span"], None]] = None


def set_span_sink(
    sink: Optional[Callable[["Span"], None]],
) -> Optional[Callable[["Span"], None]]:
    """Install (or clear) the finished-span sink; returns the old one."""
    global _SPAN_SINK
    previous = _SPAN_SINK
    _SPAN_SINK = sink
    return previous


@dataclass(frozen=True)
class SpanContext:
    """Picklable lineage of a span: enough to parent work elsewhere."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished (or in-flight) interval of named work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_unix: float
    duration: float = 0.0
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "Span":
        return Span(
            name=doc["name"],
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            parent_id=doc.get("parent_id"),
            start_unix=doc.get("start_unix", 0.0),
            duration=doc.get("duration", 0.0),
            status=doc.get("status", "ok"),
            attributes=dict(doc.get("attributes", {})),
        )


#: The ambient current span context. Module-level so every tracer (and
#: :func:`attach`) agrees on what "the current span" means.
_CURRENT: contextvars.ContextVar[Optional[SpanContext]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_context() -> Optional[SpanContext]:
    """The ambient span context, if any (picklable; ship it to workers)."""
    return _CURRENT.get()


@contextmanager
def attach(parent: Optional[SpanContext]) -> Iterator[None]:
    """Make ``parent`` the ambient context without opening a span.

    The worker-process half of cross-process propagation: the pool
    initializer attaches the batch span's context so every span the
    worker opens parents under it.
    """
    token = _CURRENT.set(parent)
    try:
        yield
    finally:
        _CURRENT.reset(token)


class _NoopSpan:
    """Singleton stand-in yielded by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NullTracer:
    """Tracing disabled: spans cost two attribute loads and no clock."""

    enabled = False

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        **attributes: Any,
    ) -> Iterator[_NoopSpan]:
        yield _NOOP_SPAN

    def drain(self) -> List[Span]:
        return []


class Tracer:
    """Records finished spans of one trace tree.

    Spans parent under the ambient context by default; pass ``parent``
    to graft under an explicit :class:`SpanContext` (e.g. one received
    from another process).
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or _new_id()
        self.finished: List[Span] = []

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        if parent is None:
            parent = _CURRENT.get()
        sp = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else self.trace_id,
            span_id=_new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_unix=time.time(),
            attributes=dict(attributes),
        )
        token = _CURRENT.set(sp.context)
        start = time.perf_counter()
        try:
            yield sp
        except BaseException:
            sp.status = "error"
            raise
        finally:
            sp.duration = time.perf_counter() - start
            _CURRENT.reset(token)
            self.finished.append(sp)
            if _SPAN_SINK is not None:
                _SPAN_SINK(sp)

    # -- collection plumbing ------------------------------------------------

    def adopt(self, spans: Iterable[Union[Span, Dict[str, Any]]]) -> None:
        """Graft spans recorded elsewhere (e.g. a pool worker) into
        this tracer's record. Dicts are accepted as they travel."""
        for sp in spans:
            span = sp if isinstance(sp, Span) else Span.from_dict(sp)
            self.finished.append(span)
            if _SPAN_SINK is not None:
                _SPAN_SINK(span)

    def drain(self) -> List[Span]:
        """Remove and return every finished span (worker hand-off)."""
        out = self.finished
        self.finished = []
        return out

    # -- export -------------------------------------------------------------

    def write_jsonl(self, fp: TextIO) -> None:
        """One ``{"kind": "span", ...}`` JSON object per line."""
        for sp in self.finished:
            doc = {"kind": "span"}
            doc.update(sp.to_dict())
            fp.write(json.dumps(doc, sort_keys=True))
            fp.write("\n")

    def render_tree(self) -> str:
        """Human-readable span tree, children indented under parents.

        Spans whose parent never reported (a worker died, or the
        parent is still open) render as roots rather than vanishing.
        """
        return render_span_tree(self.finished)


def render_span_tree(spans: List[Span]) -> str:
    by_id = {sp.span_id: sp for sp in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in by_id else None
        children.setdefault(parent, []).append(sp)
    for sibs in children.values():
        sibs.sort(key=lambda s: s.start_unix)

    lines: List[str] = []

    def walk(sp: Span, depth: int) -> None:
        status = "" if sp.status == "ok" else f"  !{sp.status}"
        attrs = ""
        if sp.attributes:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(sp.attributes.items())
            )
        lines.append(
            f"{'  ' * depth}{sp.name}  {sp.duration * 1000:.1f}ms"
            f"{status}{attrs}"
        )
        for child in children.get(sp.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
