"""The telemetry hub: one journal for events, spans and snapshots.

Spans answer "where did the time go inside one request"; metrics
answer "how much, in aggregate, since the process started". Neither
answers the operational questions a long-lived daemon gets asked —
*what happened in the last ten minutes*, *which requests failed*,
*did any worker hit a fault* — because spans are drained per batch
and metrics forget individual outcomes the moment they are summed.

The :class:`TelemetryHub` closes that gap. Every layer of the system
(HTTP daemon, batch workers, the fault injector, the artifact store,
the campaign runner) emits small structured :class:`Event` records
through it; finished spans fan in through a module-level sink on the
tracer; and optional whole-registry metric snapshots ride along. The
hub keeps the recent past in bounded in-memory ring buffers (what the
daemon's ``/v1/obs/*`` routes serve) and appends everything to an
**append-only JSONL journal** with size-based rotation (what
``repro obs`` and the SLO engine read after the fact).

Journal layout — one JSON object per line, discriminated by ``rec``::

    {"rec": "event", "kind": "http.request", "name": "/v1/embed", ...}
    {"rec": "span",  "name": "copy.embed", "trace_id": ..., ...}
    {"rec": "metrics", "unix": ..., "samples": [...]}

Rotation renames ``journal.jsonl`` to ``journal.jsonl.1`` (shifting
older segments up, dropping the oldest beyond ``max_segments``) once
the active segment passes ``max_bytes``. Only the hub that owns the
journal rotates (``rotate=True``); pool workers receive a
``worker_config()`` copy that appends to the same active segment
without ever rotating it, so a rename never races a writer that could
truncate data. Single-line ``O_APPEND`` writes keep concurrent
appends from interleaving.

Everything is pay-for-use: with no hub installed the module-level
:func:`emit` is one ``None`` test, exactly like disabled tracing.
"""

from __future__ import annotations

import fnmatch
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from .metrics import MetricsRegistry
from .spans import Span, current_context, set_span_sink

__all__ = [
    "Event",
    "HubConfig",
    "TelemetryHub",
    "emit",
    "get_hub",
    "journal_segments",
    "read_events",
    "read_journal",
    "read_spans",
    "set_hub",
]

#: Event kinds the layers emit today. Emission is not restricted to
#: this set (a new layer may mint its own kind), but the documented
#: vocabulary keeps filters and SLO specs from guessing.
KNOWN_KINDS: Tuple[str, ...] = (
    "http.request",   # one served HTTP request: route, method, status
    "embed",          # one daemon embed outcome: ok, verified
    "recognize",      # one recognition outcome: complete
    "copy",           # one batch copy result: ok, verified, attempts
    "batch.retry",    # a retry round resubmitted `count` copies
    "fault",          # the fault injector fired at a site
    "circuit",        # a circuit breaker changed state
    "store.quarantine",  # the store quarantined a corrupt blob
    "campaign.cell",  # one campaign cell finished
    "fleet.dispatch",  # one fleet send: worker, route, outcome, seconds
    "fleet.worker",   # a worker health state change: state, previous
    "store.rebalance",  # an online shard add/remove: action, moved
)


@dataclass
class Event:
    """One structured telemetry record: something happened, once.

    ``kind`` is the coarse category (see :data:`KNOWN_KINDS`);
    ``name`` the specific subject (a route, a fault site, a copy id);
    ``attrs`` free-form JSON-able detail. Events emitted inside an
    active span inherit its ``trace_id``/``span_id`` so the journal
    can be joined against the span tree.
    """

    kind: str
    name: str = ""
    unix: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "rec": "event",
            "kind": self.kind,
            "name": self.name,
            "unix": self.unix,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        if self.span_id is not None:
            doc["span_id"] = self.span_id
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "Event":
        return Event(
            kind=doc["kind"],
            name=doc.get("name", ""),
            unix=float(doc.get("unix", 0.0)),
            attrs=dict(doc.get("attrs", {})),
            trace_id=doc.get("trace_id"),
            span_id=doc.get("span_id"),
        )

    def matches(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        route: Optional[str] = None,
    ) -> bool:
        """Filter predicate shared by the ring tail and the CLI.

        ``kind`` matches exactly, ``name`` as an ``fnmatch`` glob, and
        ``route`` against the ``route`` attribute (falling back to the
        event name, which is the route for ``http.request`` events).
        """
        if kind is not None and self.kind != kind:
            return False
        if name is not None and not fnmatch.fnmatchcase(self.name, name):
            return False
        if route is not None:
            candidate = str(self.attrs.get("route", self.name))
            if candidate != route:
                return False
        return True


@dataclass(frozen=True)
class HubConfig:
    """Picklable recipe for a :class:`TelemetryHub`.

    This is what travels through a pool initializer: the parent calls
    :meth:`TelemetryHub.worker_config` and each worker builds its own
    hub appending to the same journal. ``rotate=False`` marks a
    non-owning writer; ``record_spans=False`` keeps workers from
    journaling spans that will be journaled again when the parent
    adopts them off the returned results.
    """

    journal_path: Optional[str] = None
    ring_events: int = 2048
    ring_spans: int = 1024
    max_bytes: int = 8 * 1024 * 1024
    max_segments: int = 4
    rotate: bool = True
    record_spans: bool = True

    def __post_init__(self) -> None:
        if self.ring_events < 1 or self.ring_spans < 1:
            raise ValueError("ring sizes must be positive")
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if self.max_segments < 1:
            raise ValueError("max_segments must be positive")

    def create(self) -> "TelemetryHub":
        return TelemetryHub(self)


class TelemetryHub:
    """Fan events, spans and metric snapshots into one journal.

    Thread-safe: the daemon's event loop, worker threads and the
    span sink all emit through one lock. All journal writes are one
    line each, flushed immediately — a crash loses at most the line
    being written, and :func:`read_journal` tolerates that torn tail.
    """

    def __init__(
        self,
        config: Optional[HubConfig] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.config = config or HubConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=self.config.ring_events)
        self._spans: Deque[Span] = deque(maxlen=self.config.ring_spans)
        self._fp: Optional[Any] = None
        self._written = 0
        self._emitted = 0
        path = self.config.journal_path
        if path:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, name: str = "", **attrs: Any) -> Event:
        """Record one event: ring buffer plus one journal line."""
        context = current_context()
        event = Event(
            kind=kind,
            name=name,
            unix=self._clock(),
            attrs=attrs,
            trace_id=context.trace_id if context is not None else None,
            span_id=context.span_id if context is not None else None,
        )
        with self._lock:
            self._events.append(event)
            self._emitted += 1
            self._write_line(event.to_dict())
        return event

    def record_span(self, span: Span) -> None:
        """Fan one finished span into the ring and the journal."""
        doc = {"rec": "span"}
        doc.update(span.to_dict())
        with self._lock:
            self._spans.append(span)
            self._write_line(doc)

    def snapshot_metrics(self, registry: MetricsRegistry) -> None:
        """Journal the whole registry as one ``metrics`` record."""
        doc = {
            "rec": "metrics",
            "unix": self._clock(),
            "samples": list(registry.samples()),
        }
        with self._lock:
            self._write_line(doc)

    # -- introspection -------------------------------------------------------

    def tail(
        self,
        limit: int = 100,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        route: Optional[str] = None,
    ) -> List[Event]:
        """The newest matching events, oldest-first, at most ``limit``."""
        with self._lock:
            events = list(self._events)
        matched = [e for e in events if e.matches(kind, name, route)]
        return matched[-max(0, limit):]

    def recent_spans(self, limit: int = 200) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        return spans[-max(0, limit):]

    def recent_traces(
        self, limit: int = 10
    ) -> List[Tuple[str, List[Span]]]:
        """The most recently touched traces, newest last.

        Spans group by ``trace_id``; a trace's recency is the position
        of its newest span in the ring.
        """
        with self._lock:
            spans = list(self._spans)
        grouped: Dict[str, List[Span]] = {}
        for span in spans:  # ring order == arrival order
            grouped.setdefault(span.trace_id, []).append(span)
        traces = list(grouped.items())
        return traces[-max(0, limit):]

    @property
    def emitted(self) -> int:
        """Events emitted through this hub (ring may hold fewer)."""
        return self._emitted

    @property
    def journal_path(self) -> Optional[str]:
        return self.config.journal_path

    def journal_bytes(self) -> int:
        """Size of the active journal segment, 0 when journaling is off."""
        path = self.config.journal_path
        if not path:
            return 0
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def worker_config(self) -> HubConfig:
        """The config a pool worker should build its hub from:
        same journal, no rotation, no span journaling (the parent
        journals worker spans when it adopts them)."""
        return HubConfig(
            journal_path=self.config.journal_path,
            ring_events=self.config.ring_events,
            ring_spans=self.config.ring_spans,
            max_bytes=self.config.max_bytes,
            max_segments=self.config.max_segments,
            rotate=False,
            record_spans=False,
        )

    # -- journal writing -----------------------------------------------------

    def _write_line(self, doc: Dict[str, Any]) -> None:
        """Append one record; caller holds the lock."""
        path = self.config.journal_path
        if not path:
            return
        if self._fp is None:
            try:
                self._fp = open(path, "a")
                self._written = self._fp.tell()
            except OSError:
                return  # journaling is best-effort; the ring still has it
        line = json.dumps(doc, sort_keys=True) + "\n"
        try:
            self._fp.write(line)
            self._fp.flush()
        except (OSError, ValueError):
            return
        self._written += len(line)
        if self.config.rotate and self._written >= self.config.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Shift rotated segments up and start a fresh active one."""
        path = self.config.journal_path
        assert path is not None
        if self._fp is not None:
            try:
                self._fp.close()
            except OSError:
                pass
            self._fp = None
        oldest = f"{path}.{self.config.max_segments - 1}"
        try:
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.config.max_segments - 2, 0, -1):
                src = f"{path}.{index}"
                if os.path.exists(src):
                    os.replace(src, f"{path}.{index + 1}")
            if self.config.max_segments > 1:
                os.replace(path, f"{path}.1")
            else:
                os.remove(path)
        except OSError:
            pass  # a failed rotation just grows the active segment
        self._written = 0

    def close(self) -> None:
        with self._lock:
            if self._fp is not None:
                try:
                    self._fp.close()
                except OSError:
                    pass
                self._fp = None


# -- the ambient hub ---------------------------------------------------------

_HUB: Optional[TelemetryHub] = None


def get_hub() -> Optional[TelemetryHub]:
    """The ambient hub, or ``None`` when telemetry is off."""
    return _HUB


def set_hub(hub: Optional[TelemetryHub]) -> Optional[TelemetryHub]:
    """Install (or clear, with ``None``) the ambient hub.

    Installing a span-recording hub also wires the tracer's span sink
    so every finished or adopted span fans into the journal; clearing
    the hub unwires it. Returns the previous hub.
    """
    global _HUB
    previous = _HUB
    _HUB = hub
    if hub is not None and hub.config.record_spans:
        set_span_sink(hub.record_span)
    else:
        set_span_sink(None)
    return previous


def emit(kind: str, name: str = "", **attrs: Any) -> Optional[Event]:
    """Emit through the ambient hub; a single ``None`` test when off."""
    hub = _HUB
    if hub is None:
        return None
    return hub.emit(kind, name, **attrs)


# -- journal reading ---------------------------------------------------------


def journal_segments(path: str) -> List[str]:
    """Every segment of a journal, oldest first.

    ``path`` may be the active journal file or the directory holding
    it (in which case ``journal.jsonl`` is assumed). Rotated siblings
    (``journal.jsonl.3`` ... ``journal.jsonl.1``) come before the
    active segment, so concatenating reads is chronological.
    """
    if os.path.isdir(path):
        path = os.path.join(path, "journal.jsonl")
    rotated: List[Tuple[int, str]] = []
    parent = os.path.dirname(path) or "."
    base = os.path.basename(path)
    try:
        names = os.listdir(parent)
    except OSError:
        names = []
    for name in names:
        if not name.startswith(base + "."):
            continue
        suffix = name[len(base) + 1:]
        if suffix.isdigit():
            rotated.append((int(suffix), os.path.join(parent, name)))
    segments = [p for _, p in sorted(rotated, reverse=True)]
    if os.path.exists(path):
        segments.append(path)
    return segments


def read_journal(path: str) -> Iterator[Dict[str, Any]]:
    """Every parsable record across all segments, oldest first.

    Mirrors the checkpoint-journal contract: a torn final line (the
    writer died mid-append) or any other unparsable line is skipped,
    never fatal.
    """
    for segment in journal_segments(path):
        try:
            with open(segment) as fp:
                lines = fp.read().splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn write
            if isinstance(doc, dict):
                yield doc


def read_events(path: str) -> List[Event]:
    """All event records in a journal, oldest first."""
    events: List[Event] = []
    for doc in read_journal(path):
        if doc.get("rec") != "event":
            continue
        try:
            events.append(Event.from_dict(doc))
        except (KeyError, TypeError, ValueError):
            continue
    return events


def read_spans(path: str) -> List[Span]:
    """All span records in a journal, oldest first."""
    spans: List[Span] = []
    for doc in read_journal(path):
        if doc.get("rec") != "span":
            continue
        try:
            spans.append(Span.from_dict(doc))
        except (KeyError, TypeError, ValueError):
            continue
    return spans
