"""A small metrics registry: counters, gauges, histograms, exporters.

Prometheus-shaped but dependency-free. Metrics are created through a
:class:`MetricsRegistry` (creation is idempotent: asking twice for the
same name returns the same instrument; asking with a different type is
an error). Every instrument supports labels passed as keyword
arguments at observation time::

    reg = MetricsRegistry()
    copies = reg.counter("repro_copies_total", "Copies embedded")
    copies.inc(status="ok")
    stage = reg.histogram("repro_stage_seconds", "Stage wall time")
    stage.observe(0.125, stage="trace")

Two exporters:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP``/``# TYPE`` headers, cumulative
  histogram buckets with ``+Inf``, escaped label values), suitable for
  a scrape endpoint or a textfile collector;
* :meth:`MetricsRegistry.write_jsonl` / :meth:`samples` — one JSON
  object per sample, for the ``--obs-out`` JSON-lines stream.

The module-level :func:`get_registry` registry is the ambient default
that library code (pipeline stage timings, recognizers) records into;
processes that want isolation construct their own registry.
"""

from __future__ import annotations

import json
import re
import time
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds: spans four orders of
#: magnitude around the pipeline's stage times (sub-ms site mining up
#: to multi-second traces).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Request-latency buckets, in seconds: tighter at the low end than
#: :data:`DEFAULT_BUCKETS` (an admission rejection is microseconds, a
#: queued embed can be seconds) and topping out at a serving timeout.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_labels(labels: LabelSet, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def samples(self) -> Iterator[Dict[str, Any]]:
        for labels, value in sorted(self._values.items()):
            yield {
                "kind": "metric",
                "type": self.kind,
                "name": self.name,
                "labels": dict(labels),
                "value": value,
            }

    def expose(self) -> List[str]:
        return [
            f"{self.name}{_fmt_labels(labels)} {_fmt_value(value)}"
            for labels, value in sorted(self._values.items())
        ]


class Gauge(Counter):
    """A value that can go anywhere (pool sizes, cache occupancy)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        self._values[_labelset(labels)] = float(value)


class Histogram:
    """Bucketed distribution with sum and count, per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.help = help
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per label set: (bucket counts parallel to bounds, sum, count)
        self._series: Dict[LabelSet, Tuple[List[int], List[float]]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _labelset(labels)
        series = self._series.get(key)
        if series is None:
            series = ([0] * len(self.bounds), [0.0, 0.0])
            self._series[key] = series
        counts, agg = series
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        agg[0] += value
        agg[1] += 1.0

    @contextmanager
    def time(self, **labels: Any) -> Iterator[None]:
        """Observe the wall time of a ``with`` block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start, **labels)

    def count(self, **labels: Any) -> int:
        series = self._series.get(_labelset(labels))
        return int(series[1][1]) if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_labelset(labels))
        return series[1][0] if series else 0.0

    def _cumulative(self, counts: List[int], total: int) -> List[int]:
        out: List[int] = []
        acc = 0
        for c in counts:
            acc += c
            out.append(acc)
        out.append(total)  # +Inf bucket == count
        return out

    def samples(self) -> Iterator[Dict[str, Any]]:
        for labels, (counts, agg) in sorted(self._series.items()):
            cum = self._cumulative(counts, int(agg[1]))
            yield {
                "kind": "metric",
                "type": self.kind,
                "name": self.name,
                "labels": dict(labels),
                "sum": agg[0],
                "count": int(agg[1]),
                "buckets": {
                    _fmt_value(b): c for b, c in zip(self.bounds, cum)
                },
            }

    def expose(self) -> List[str]:
        lines: List[str] = []
        for labels, (counts, agg) in sorted(self._series.items()):
            cum = self._cumulative(counts, int(agg[1]))
            for bound, c in zip(self.bounds, cum[:-1]):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_fmt_labels(labels, ('le', _fmt_value(bound)))} {c}"
                )
            lines.append(
                f"{self.name}_bucket{_fmt_labels(labels, ('le', '+Inf'))} "
                f"{cum[-1]}"
            )
            lines.append(
                f"{self.name}_sum{_fmt_labels(labels)} {_fmt_value(agg[0])}"
            )
            lines.append(
                f"{self.name}_count{_fmt_labels(labels)} {int(agg[1])}"
            )
        return lines


class MetricsRegistry:
    """Owns a namespace of instruments and renders them for export."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        metric = self._get(Histogram, name, help, buckets=buckets)
        if buckets is not None and tuple(sorted(buckets)) != metric.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return metric

    # -- export -------------------------------------------------------------

    def samples(self) -> Iterator[Dict[str, Any]]:
        for name in sorted(self._metrics):
            yield from self._metrics[name].samples()

    def write_jsonl(self, fp: TextIO) -> None:
        for sample in self.samples():
            fp.write(json.dumps(sample, sort_keys=True))
            fp.write("\n")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, scrape-valid."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")


#: The ambient registry library code records into by default.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the ambient registry (returns the previous one)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
