"""Wall-time primitives shared by the pipeline and the CLI.

These used to live ad hoc in ``repro.pipeline.metrics``; they are the
timing *internals* now, with the pipeline module keeping its public
names (``Stopwatch``, ``StageTimings``) as thin wrappers so existing
reports and pickled artifacts keep working.

:class:`StageAccumulator` fixes a long-standing double-count: the old
``measure`` accumulated elapsed time on *every* exit, so a stage
re-entered recursively (e.g. a prepare step that recursively prepares
a sub-module) counted the inner interval twice — once for the inner
exit and again inside the outer exit's elapsed. Accumulation now
happens once per outermost entry: the reported total is the real wall
time the stage was active, never more.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import Histogram


class Stopwatch:
    """Context manager measuring one wall-clock interval."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._start


class StageAccumulator:
    """Accumulated wall time per named stage, reentrancy-safe.

    A stage re-entered while already being measured does not start a
    second clock: only the outermost ``measure`` accumulates, so
    recursive stages report their true wall time instead of double
    (or N times) the inner intervals.

    Each completed outermost interval is also observed into
    ``histogram`` (labelled by stage) when one is attached — that is
    how the pipeline's stage timings reach the metrics registry
    without the call sites knowing about it.
    """

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self.stages: Dict[str, float] = {}
        self._depth: Dict[str, int] = {}
        self._starts: Dict[str, float] = {}
        self._histogram = histogram

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        depth = self._depth.get(stage, 0)
        self._depth[stage] = depth + 1
        if depth == 0:
            self._starts[stage] = time.perf_counter()
        try:
            yield
        finally:
            self._depth[stage] -= 1
            if self._depth[stage] == 0:
                elapsed = time.perf_counter() - self._starts.pop(stage)
                self._accumulate(stage, elapsed)

    def record(self, stage: str, seconds: float) -> None:
        """Credit an externally measured interval to a stage."""
        self._accumulate(stage, seconds)

    def _accumulate(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds
        if self._histogram is not None:
            self._histogram.observe(seconds, stage=stage)

    def total(self) -> float:
        return sum(self.stages.values())

    # -- pickling -----------------------------------------------------------
    # Only the accumulated totals travel (to pool workers, or inside a
    # persisted PreparedProgram); open measurements and the histogram
    # hook are process-local. Old artifacts that pickled just a
    # ``stages`` dict restore cleanly through the same path.

    def __getstate__(self) -> Dict[str, Any]:
        return {"stages": dict(self.stages)}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.stages = dict(state.get("stages", {}))
        self._depth = {}
        self._starts = {}
        self._histogram = None
