"""Deterministic fault injection + recovery policy for the pipeline.

The paper's whole argument is behaviour under hostility: a watermark
is only as good as its survival rate once an adversary starts
distorting the program. This package applies the same standard to the
infrastructure *around* the watermarks — the batch pipeline, the
artifact store and the serving daemon all claim to degrade gracefully,
and those claims are only worth anything if faults can be injected on
demand and the recovery measured. Two halves:

* :mod:`~repro.faults.injector` — the fault model. A
  :class:`FaultPlan` is a seeded, picklable list of
  :class:`FaultRule`\\ s ("kill the worker on its 2nd task", "return
  ``ENOSPC`` from the 1st manifest write", "flip a byte in every blob
  read"). Library code declares *injection sites* by calling
  :func:`check` / :func:`filter_bytes` at the points where reality
  fails: the pool worker task loop, the store's write/read paths, the
  daemon's dispatch path. With no plan installed both calls are a
  single ``is None`` test — the hooks are free in production.
* :mod:`~repro.faults.retry` — the recovery policy. One
  :class:`RetryPolicy` (capped exponential backoff with deterministic,
  seeded jitter) shared by the batch executor's transient-failure
  retries and the HTTP client's 429/503 backoff.

Determinism is the design constraint throughout: rules fire on exact
hit counts (``after``/``times``), probabilistic rules draw from the
plan's own seeded RNG, and one-shot cross-process faults are anchored
to filesystem marker files (``once_token``), so a test that kills a
worker kills it on the same task every run — and only once, even
though the rebuilt pool re-installs the plan in fresh processes.

Typical test use::

    from repro import faults

    plan = faults.FaultPlan(rules=[
        faults.FaultRule(site="batch.worker.task", action="kill", after=2,
                         once_token="kill-once", state_dir=str(tmp_path)),
    ])
    with faults.injected(plan):
        report = run_batch(prepared, specs, workers=2)   # survives
"""

from .injector import (
    FaultError,
    FaultPlan,
    FaultRule,
    check,
    clear,
    filter_bytes,
    get_plan,
    injected,
    install,
)
from .retry import RetryPolicy

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "check",
    "clear",
    "filter_bytes",
    "get_plan",
    "injected",
    "install",
]
