"""The fault model: seeded, picklable, cross-process fault plans.

An injection *site* is a dotted name a piece of library code claims as
its failure point (``"batch.worker.task"``, ``"store.write.blob"``,
``"daemon.job"``). A :class:`FaultRule` matches sites by exact name or
``fnmatch`` glob and fires an *action* once its counting conditions
are met. The ambient plan is installed per process
(:func:`install` / :func:`injected`); the batch pipeline ships the
parent's plan to pool workers through the pool initializer, so a test
that arms a plan and calls :func:`~repro.pipeline.batch.run_batch`
sees its faults fire inside real worker processes.

Actions
-------

========== ==============================================================
``raise``  raise ``rule.exception(rule.message)`` at the site
``kill``   ``os._exit(KILL_EXIT_CODE)`` — an uncatchable process death,
           the moral equivalent of an OOM-kill or operator ``kill -9``
``delay``  sleep ``rule.delay_seconds`` then continue
``disk_full`` raise ``OSError(ENOSPC)`` — for write sites
``io_error``  raise ``OSError(EIO)`` — unreadable sector / torn device
``corrupt``   (byte sites) flip one seeded byte of the payload
``truncate``  (byte sites) drop the payload's second half
========== ==============================================================

Byte-stream actions only apply at sites routed through
:func:`filter_bytes`; control actions only at :func:`check` sites. A
rule whose action does not fit the hook kind is ignored at that hook,
so one plan can safely target globs spanning both kinds.

Counting is per rule *per process* (a fresh worker starts at zero).
For faults that must fire once *globally* — "kill one worker, then let
the retry succeed" — give the rule a ``once_token``: before firing,
the rule atomically creates ``<state_dir>/fault-<token>.fired`` and
never fires again anywhere that marker is visible.
"""

from __future__ import annotations

import errno
import fnmatch
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..obs.journal import emit as emit_event
from ..obs.metrics import get_registry

#: Exit status used by ``action="kill"``; distinctive enough that a
#: test inspecting a dead child can tell an injected death from a real
#: crash.
KILL_EXIT_CODE = 77

#: Actions that make sense at a :func:`check` site.
CONTROL_ACTIONS = frozenset({"raise", "kill", "delay", "disk_full", "io_error"})
#: Actions that make sense at a :func:`filter_bytes` site.
BYTE_ACTIONS = frozenset({"corrupt", "truncate"})


class FaultError(RuntimeError):
    """Default exception type raised by ``action="raise"`` rules."""


@dataclass
class FaultRule:
    """One match-and-fire rule inside a :class:`FaultPlan`.

    ``site`` is an exact dotted name or an ``fnmatch`` glob
    (``"store.write.*"``). The rule fires on matching hits number
    ``after``, ``after+1``, ... for at most ``times`` firings
    (``None`` = unlimited), each gated by ``probability`` drawn from
    the plan's seeded RNG. ``once_token`` adds a filesystem-backed
    global once-guard (see module docstring).
    """

    site: str
    action: str
    after: int = 1
    times: Optional[int] = 1
    probability: float = 1.0
    delay_seconds: float = 0.0
    message: str = "injected fault"
    exception: Type[BaseException] = FaultError
    once_token: Optional[str] = None
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        known = CONTROL_ACTIONS | BYTE_ACTIONS
        if self.action not in known:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(have: {', '.join(sorted(known))})"
            )
        if self.after < 1:
            raise ValueError("'after' counts hits from 1")
        if self.times is not None and self.times < 1:
            raise ValueError("'times' must be positive (or None)")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.once_token is not None and self.state_dir is None:
            raise ValueError("once_token requires a state_dir")

    def matches(self, site: str) -> bool:
        return site == self.site or fnmatch.fnmatchcase(site, self.site)

    def _marker_path(self) -> str:
        assert self.state_dir is not None and self.once_token is not None
        return os.path.join(self.state_dir, f"fault-{self.once_token}.fired")

    def claim_once_marker(self) -> bool:
        """Atomically claim the cross-process once-guard.

        Returns True when this call created the marker (the rule may
        fire), False when another process/firing already owns it.
        """
        if self.once_token is None:
            return True
        try:
            fd = os.open(
                self._marker_path(), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True


@dataclass
class _Firing:
    """One recorded fault firing (for test assertions)."""

    site: str
    action: str
    rule_index: int


class FaultPlan:
    """A seeded set of :class:`FaultRule` s plus per-process counters.

    Picklable: rules and seed travel (e.g. through a pool
    initializer); hit counters and the RNG restart fresh in the
    receiving process, which is exactly the per-process counting
    semantics documented on the rules.
    """

    def __init__(
        self, rules: Sequence[FaultRule] = (), seed: int = 0
    ) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self._hits: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self.firings: List[_Firing] = []

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(tuple(state["rules"]), state["seed"])

    # -- matching ----------------------------------------------------------

    def _due(self, site: str, kinds: frozenset) -> Iterator[Tuple[int, FaultRule]]:
        """Yield (index, rule) for every rule due to fire at this hit."""
        for index, rule in enumerate(self.rules):
            if rule.action not in kinds or not rule.matches(site):
                continue
            hits = self._hits.get(index, 0) + 1
            self._hits[index] = hits
            if hits < rule.after:
                continue
            fired = self._fired.get(index, 0)
            if rule.times is not None and fired >= rule.times:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            if not rule.claim_once_marker():
                continue
            self._fired[index] = fired + 1
            self.firings.append(_Firing(site, rule.action, index))
            get_registry().counter(
                "repro_faults_injected_total", "Faults fired by the injector"
            ).inc(site=site, action=rule.action)
            emit_event("fault", site, site=site, action=rule.action,
                       rule=index)
            yield index, rule

    def hit(self, site: str) -> None:
        """Count a control-site hit and fire any due control actions."""
        for _index, rule in self._due(site, CONTROL_ACTIONS):
            _fire_control(rule)

    def pipe(self, site: str, data: bytes) -> bytes:
        """Count a byte-site hit; return the (possibly mangled) payload."""
        for _index, rule in self._due(site, BYTE_ACTIONS):
            data = _mangle(rule, data, self._rng)
        return data


def _fire_control(rule: FaultRule) -> None:
    if rule.action == "delay":
        time.sleep(rule.delay_seconds)
        return
    if rule.action == "kill":
        os._exit(KILL_EXIT_CODE)
    if rule.action == "disk_full":
        raise OSError(errno.ENOSPC, f"injected: {rule.message}")
    if rule.action == "io_error":
        raise OSError(errno.EIO, f"injected: {rule.message}")
    raise rule.exception(rule.message)


def _mangle(rule: FaultRule, data: bytes, rng: random.Random) -> bytes:
    if not data:
        return data
    if rule.action == "truncate":
        return data[: len(data) // 2]
    position = rng.randrange(len(data))
    mutated = bytearray(data)
    mutated[position] ^= 0xFF
    return bytes(mutated)


# -- the ambient plan --------------------------------------------------------

#: Per-process active plan. ``None`` (the overwhelmingly common case)
#: makes every hook a single attribute load + ``is None`` test.
_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as this process's ambient fault plan."""
    global _PLAN
    _PLAN = plan
    return plan


def clear() -> None:
    """Remove the ambient plan (hooks go back to no-ops)."""
    global _PLAN
    _PLAN = None


def get_plan() -> Optional[FaultPlan]:
    """The ambient plan, or ``None`` when injection is disabled."""
    return _PLAN


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope an ambient plan to a ``with`` block (tests)."""
    global _PLAN
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        _PLAN = previous


def check(site: str, **context: Any) -> None:
    """Declare a control injection site. Free when no plan is armed.

    ``context`` is accepted (and ignored) so call sites can document
    what was in flight without paying for string formatting.
    """
    if _PLAN is None:
        return
    _PLAN.hit(site)


def filter_bytes(site: str, data: bytes) -> bytes:
    """Declare a byte-stream injection site; may corrupt or truncate.

    Returns ``data`` itself (same object) when no plan is armed.
    """
    if _PLAN is None:
        return data
    return _PLAN.pipe(site, data)
