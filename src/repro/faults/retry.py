"""Retry policy: capped exponential backoff with deterministic jitter.

One policy object serves every retry loop in the system — the batch
executor resubmitting work lost to a dead worker, and the HTTP client
backing off a 429/503. Delays grow ``base_delay * 2**(attempt-1)`` up
to ``max_delay``, then shrink by a seeded jitter fraction so a fleet
of clients (or a pool of workers) does not retry in lockstep. The
jitter draws from the policy's own :class:`random.Random`, so a given
``(seed, attempt)`` pair always yields the same delay — tests can
assert on schedules instead of sleeping through them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List


@dataclass
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    ``max_attempts`` counts *total* attempts including the first
    (``max_attempts=1`` means never retry). ``jitter`` is the fraction
    of each delay that is randomized away: ``0.0`` keeps the raw
    exponential schedule, ``0.5`` uniformly shaves up to half off.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def retries_left(self, attempt: int) -> bool:
        """May another attempt follow attempt number ``attempt``?"""
        return attempt < self.max_attempts

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts count from 1")
        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def schedule(self) -> List[float]:
        """Every backoff delay the policy would produce, in order.

        Consumes the same RNG stream as :meth:`delay`, so call it on a
        fresh policy (tests) rather than one mid-flight.
        """
        return [self.delay(n) for n in range(1, self.max_attempts)]
