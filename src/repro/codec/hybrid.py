"""Hybrid codec: GCRT residue statements rescued by RS parity symbols.

The GCRT channel degrades *gracefully* — even when voting and the
consistency graphs cannot cover every modulus, the surviving
statements pin the watermark to ``W = v (mod M)``, leaving only
``ceil(2**bits / M)`` candidates. The RS channel carries an
independent, position-addressed signal. The hybrid embeds both:

* a GCRT share — residue statements exactly as the ``gcrt`` codec
  (same splitter, same enumeration, same encryption), and
* a parity share — the ``ec_bytes`` Reed-Solomon parity symbols of the
  packed watermark, sealed under a hybrid-specific tag so the channels
  cannot cross-talk.

Decoding runs the full GCRT pipeline first. A complete in-range
recovery wins outright (parity agreement folds into ``confidence``).
Otherwise the candidate set of the partial congruence — or, for mark
spaces up to ``MAX_CANDIDATES``, the whole space — is scored against
the collected parity symbols; only a *unique* candidate matching
*every* collected symbol is accepted. Parity symbols are individually
MAC-sealed (forging one requires the key), and the uniqueness rule
fails safe: an ambiguous match reports nothing rather than guessing.
This is the regime where pure GCRT voting fails and the hybrid still
answers — the fig5/fig8c codec sweeps exercise exactly that window.

Unlike the pure ``rs`` codec the parity word carries no embedded MAC
bytes: candidate scoring recomputes the parity of every candidate
(cheap GF(256) work), and a keyed MAC inside the codeword would make
that loop two orders of magnitude more expensive for no extra safety —
acceptance already requires full agreement with key-sealed symbols.

The piece budget is split deterministically: half to parity, capped at
two copies per parity symbol, with GCRT coverage restored first.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cipher import BlockCipher
from ..core.crt import Congruence
from ..core.enumeration import StatementEnumeration
from ..core.primes import choose_moduli
from ..core.recovery import RecoveryResult, recover
from ..core.splitting import split
from .base import EncodedPiece, WatermarkCodec, seal_symbol, validate_recovery
from .gf256 import rs_encode
from .rs import elect_symbols, symbol_votes

HYBRID_PARITY_TAG = 0x4859  # "HY"
DEFAULT_EC_BYTES = 4
MAX_CANDIDATES = 1 << 16
MIN_PARITY_MATCHES = 2
MIN_BLIND_MATCHES = 3


class HybridCodec(WatermarkCodec):
    """GCRT statements plus RS parity over the packed watermark."""

    name = "hybrid"

    def __init__(self, ec_bytes: int = DEFAULT_EC_BYTES):
        if ec_bytes < MIN_PARITY_MATCHES:
            raise ValueError(
                f"ec_bytes must be at least {MIN_PARITY_MATCHES} for the "
                "parity channel to discriminate candidates"
            )
        self.ec_bytes = ec_bytes

    @property
    def spec(self) -> str:
        return f"hybrid-{self.ec_bytes}"

    def layout(self, watermark_bits: int) -> Tuple[int, int]:
        """``(data_bytes, n)``: codeword is ``data | parity(ec_bytes)``."""
        data_bytes = max(1, (watermark_bits + 7) // 8)
        n = data_bytes + self.ec_bytes
        if n > 255:
            raise ValueError(
                f"{watermark_bits}-bit marks with ec_bytes={self.ec_bytes} "
                f"need a {n}-symbol codeword; GF(256) caps at 255"
            )
        return data_bytes, n

    def parity_of(self, value: int, watermark_bits: int) -> List[int]:
        data_bytes, _ = self.layout(watermark_bits)
        data = list(value.to_bytes(data_bytes, "big"))
        return rs_encode(data, self.ec_bytes)[data_bytes:]

    def split_budget(self, watermark_bits: int, piece_count: int) -> Tuple[int, int]:
        """``(gcrt_pieces, parity_pieces)`` for a total budget.

        Half the budget goes to parity, capped at two copies per parity
        symbol; GCRT minimum coverage is restored first if the split
        would starve it.
        """
        r = len(choose_moduli(watermark_bits))
        parity = min(2 * self.ec_bytes, piece_count // 2)
        gcrt = piece_count - parity
        if gcrt < r - 1:
            gcrt = min(piece_count, r - 1)
            parity = piece_count - gcrt
        return gcrt, parity

    def encode(
        self,
        value: int,
        watermark_bits: int,
        piece_count: int,
        cipher: BlockCipher,
        rng: Optional[random.Random] = None,
    ) -> List[EncodedPiece]:
        moduli = choose_moduli(watermark_bits)
        gcrt_count, parity_count = self.split_budget(watermark_bits, piece_count)
        statements = split(value, moduli, gcrt_count, rng)
        enumeration = StatementEnumeration(moduli)
        pieces = [
            EncodedPiece(
                block=cipher.encrypt_block(enumeration.encode(stmt)),
                statement=stmt,
                label=f"gcrt[{stmt.i},{stmt.j}]",
            )
            for stmt in statements
        ]
        data_bytes, _ = self.layout(watermark_bits)
        parity = self.parity_of(value, watermark_bits)
        for k in range(parity_count):
            slot = k % self.ec_bytes
            pos = data_bytes + slot
            pieces.append(
                EncodedPiece(
                    block=seal_symbol(cipher, HYBRID_PARITY_TAG, pos, parity[slot]),
                    statement=None,
                    label=f"parity[{pos}]",
                )
            )
        return pieces

    def _parity_symbols(
        self, bits: Sequence[int], watermark_bits: int, cipher: BlockCipher
    ) -> Tuple[Dict[int, int], int]:
        """Collected ``parity slot -> symbol`` map plus window hits."""
        data_bytes, n = self.layout(watermark_bits)
        votes, _, hits = symbol_votes(bits, cipher, HYBRID_PARITY_TAG, n)
        elected = elect_symbols(votes)
        return {
            pos - data_bytes: sym
            for pos, sym in elected.items()
            if pos >= data_bytes
        }, hits

    def _candidates(
        self, congruence: Optional[Congruence], watermark_bits: int
    ) -> Optional[range]:
        """Values under ``2**bits`` satisfying the partial congruence."""
        limit = 1 << watermark_bits
        if congruence is None or congruence.modulus <= 1:
            return None
        modulus = congruence.modulus
        if -(-limit // modulus) > MAX_CANDIDATES:
            return None
        return range(congruence.value % modulus, limit, modulus)

    def _score_candidates(
        self,
        candidates: Sequence[int],
        parity: Dict[int, int],
        watermark_bits: int,
    ) -> Optional[int]:
        """The unique candidate matching every collected parity symbol."""
        match: Optional[int] = None
        for value in candidates:
            word = self.parity_of(value, watermark_bits)
            if all(word[slot] == sym for slot, sym in parity.items()):
                if match is not None:
                    return None
                match = value
        return match

    def decode(
        self,
        bits: Sequence[int],
        watermark_bits: int,
        cipher: BlockCipher,
        use_voting: bool = True,
    ) -> RecoveryResult:
        moduli = choose_moduli(watermark_bits)
        result = recover(bits, cipher, StatementEnumeration(moduli),
                         use_voting, max_value=1 << watermark_bits)
        result.codec = self.spec
        parity, parity_hits = self._parity_symbols(bits, watermark_bits, cipher)
        result.candidates_found += parity_hits
        # Demote a phantom "complete" (junk statements can cover every
        # modulus) before deciding which channel answers.
        validate_recovery(result, watermark_bits)

        if result.complete:
            assert result.value is not None
            if parity:
                word = self.parity_of(result.value, watermark_bits)
                matched = sum(
                    1 for slot, sym in parity.items() if word[slot] == sym
                )
                result.confidence = (1.0 + matched / len(parity)) / 2.0
            return result

        # Partial GCRT information: enumerate the congruence's candidate
        # set and let the parity symbols pick the mark.
        rescued: Optional[int] = None
        if len(parity) >= MIN_PARITY_MATCHES:
            candidates = self._candidates(result.congruence, watermark_bits)
            if candidates is not None:
                rescued = self._score_candidates(candidates, parity, watermark_bits)
        # No usable congruence (all statements lost, or a junk one): for
        # small mark spaces, scan the whole space — the stricter match
        # minimum keeps the false-accept expectation below 1e-2 even at
        # the full 2**16 candidate cap.
        if (
            rescued is None
            and len(parity) >= MIN_BLIND_MATCHES
            and (1 << watermark_bits) <= MAX_CANDIDATES
        ):
            rescued = self._score_candidates(
                range(1 << watermark_bits), parity, watermark_bits
            )
        if rescued is not None:
            result.complete = True
            result.value = rescued
            result.confidence = len(parity) / self.ec_bytes
        return validate_recovery(result, watermark_bits)

    def default_piece_count(self, watermark_bits: int) -> int:
        # The full GCRT default plus two copies of every parity symbol,
        # so the GCRT channel is never weaker than a default pure-GCRT
        # embed of the same mark.
        r = len(choose_moduli(watermark_bits))
        return 2 * r + 2 * self.ec_bytes

    def min_piece_count(self, watermark_bits: int) -> int:
        return len(choose_moduli(watermark_bits)) - 1

    def success_probability(
        self, watermark_bits: int, pieces: int, piece_loss: float
    ) -> float:
        """Conservative bound: the GCRT channel alone, on its share.

        The parity-rescue channel only adds success mass on top of
        this, so plans sized from the bound are safe (never too few
        pieces); modelling the rescue exactly would couple the two
        channels' loss patterns.
        """
        from ..core.planner import success_probability_for_pieces

        gcrt_count, _ = self.split_budget(watermark_bits, pieces)
        n = len(choose_moduli(watermark_bits))
        return success_probability_for_pieces(n, gcrt_count, piece_loss)
