"""Pure-python GF(256) arithmetic and Reed-Solomon primitives.

The zero-dependency rule of this repo (no numpy, no ``reedsolo``) means
the classic RS machinery is implemented here from scratch: log/antilog
tables over the AES field polynomial ``x^8 + x^4 + x^3 + x + 1``
(0x11d), systematic encoding by polynomial division, and
errors-and-erasures decoding via Forney syndromes, Berlekamp-Massey,
Chien search and the Forney algorithm. The shapes follow the standard
textbook presentation (polynomials as coefficient lists, index 0 =
highest degree); everything is exercised by the hypothesis round-trip
and corruption suites in ``tests/test_codec_properties.py``.

A codeword of ``n = data + nsym`` symbols corrects any pattern of
``e`` errors and ``f`` erasures with ``2e + f <= nsym``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_PRIMITIVE_POLY = 0x11D
_GF_EXP: List[int] = [0] * 512
_GF_LOG: List[int] = [0] * 256


def _init_tables() -> None:
    x = 1
    for i in range(255):
        _GF_EXP[i] = x
        _GF_LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    for i in range(255, 512):
        _GF_EXP[i] = _GF_EXP[i - 255]


_init_tables()


class RSDecodeError(Exception):
    """The received word is beyond the code's correction capability."""


def gf_mul(x: int, y: int) -> int:
    if x == 0 or y == 0:
        return 0
    return _GF_EXP[_GF_LOG[x] + _GF_LOG[y]]


def gf_div(x: int, y: int) -> int:
    if y == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if x == 0:
        return 0
    return _GF_EXP[(_GF_LOG[x] - _GF_LOG[y]) % 255]


def gf_pow(x: int, power: int) -> int:
    return _GF_EXP[(_GF_LOG[x] * power) % 255]


def gf_inverse(x: int) -> int:
    return _GF_EXP[255 - _GF_LOG[x]]


def gf_poly_scale(p: Sequence[int], x: int) -> List[int]:
    return [gf_mul(c, x) for c in p]


def gf_poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    out = [0] * max(len(p), len(q))
    for i, c in enumerate(p):
        out[i + len(out) - len(p)] = c
    for i, c in enumerate(q):
        out[i + len(out) - len(q)] ^= c
    return out


def gf_poly_mul(p: Sequence[int], q: Sequence[int]) -> List[int]:
    out = [0] * (len(p) + len(q) - 1)
    for j, qj in enumerate(q):
        if qj == 0:
            continue
        for i, pi in enumerate(p):
            if pi:
                out[i + j] ^= gf_mul(pi, qj)
    return out


def gf_poly_eval(poly: Sequence[int], x: int) -> int:
    """Horner evaluation; ``poly[0]`` is the highest-degree coefficient."""
    y = poly[0]
    for coef in poly[1:]:
        y = gf_mul(y, x) ^ coef
    return y


def rs_generator_poly(nsym: int) -> List[int]:
    g = [1]
    for i in range(nsym):
        g = gf_poly_mul(g, [1, gf_pow(2, i)])
    return g


def rs_encode(data: Sequence[int], nsym: int) -> List[int]:
    """Systematic encode: returns ``list(data) + nsym`` parity symbols."""
    if len(data) + nsym > 255:
        raise ValueError(
            f"codeword of {len(data)}+{nsym} symbols exceeds GF(256) limit"
        )
    gen = rs_generator_poly(nsym)
    buf = list(data) + [0] * nsym
    for i in range(len(data)):
        coef = buf[i]
        if coef != 0:
            for j in range(1, len(gen)):
                buf[i + j] ^= gf_mul(gen[j], coef)
    return list(data) + buf[len(data):]


def rs_calc_syndromes(msg: Sequence[int], nsym: int) -> List[int]:
    return [0] + [gf_poly_eval(msg, gf_pow(2, i)) for i in range(nsym)]


def _errata_locator(coef_pos: Sequence[int]) -> List[int]:
    e_loc = [1]
    for i in coef_pos:
        e_loc = gf_poly_mul(e_loc, gf_poly_add([1], [gf_pow(2, i), 0]))
    return e_loc


def _error_evaluator(
    synd: Sequence[int], err_loc: Sequence[int], nsym: int
) -> List[int]:
    product = gf_poly_mul(synd, err_loc)
    # Remainder of product / x^(nsym+1).
    divisor = [1] + [0] * (nsym + 1)
    buf = list(product)
    for i in range(len(buf) - (len(divisor) - 1)):
        coef = buf[i]
        if coef != 0:
            for j in range(1, len(divisor)):
                if divisor[j] != 0:
                    buf[i + j] ^= gf_mul(divisor[j], coef)
    separator = -(len(divisor) - 1)
    return buf[separator:]


def _correct_errata(
    msg_in: List[int], synd: Sequence[int], err_pos: Sequence[int]
) -> List[int]:
    """Forney algorithm: compute and subtract error magnitudes."""
    coef_pos = [len(msg_in) - 1 - p for p in err_pos]
    err_loc = _errata_locator(coef_pos)
    err_eval = _error_evaluator(
        list(synd)[::-1], err_loc, len(err_loc) - 1
    )[::-1]
    x_terms = [gf_pow(2, -(255 - c)) for c in coef_pos]
    magnitudes = [0] * len(msg_in)
    for i, xi in enumerate(x_terms):
        xi_inv = gf_inverse(xi)
        loc_prime = 1
        for j, xj in enumerate(x_terms):
            if j != i:
                loc_prime = gf_mul(loc_prime, 1 ^ gf_mul(xi_inv, xj))
        if loc_prime == 0:
            raise RSDecodeError("could not find error magnitude")
        y = gf_mul(xi, gf_poly_eval(err_eval[::-1], xi_inv))
        magnitudes[err_pos[i]] = gf_div(y, loc_prime)
    return [c ^ e for c, e in zip(msg_in, magnitudes)]


def _error_locator(
    synd: Sequence[int], nsym: int, erase_count: int = 0
) -> List[int]:
    """Berlekamp-Massey over the (Forney) syndromes."""
    err_loc = [1]
    old_loc = [1]
    synd_shift = len(synd) - nsym
    for i in range(nsym - erase_count):
        k = i + synd_shift
        delta = synd[k]
        for j in range(1, len(err_loc)):
            delta ^= gf_mul(err_loc[-(j + 1)], synd[k - j])
        old_loc = old_loc + [0]
        if delta != 0:
            if len(old_loc) > len(err_loc):
                new_loc = gf_poly_scale(old_loc, delta)
                old_loc = gf_poly_scale(err_loc, gf_inverse(delta))
                err_loc = new_loc
            err_loc = gf_poly_add(err_loc, gf_poly_scale(old_loc, delta))
    while len(err_loc) and err_loc[0] == 0:
        del err_loc[0]
    errs = len(err_loc) - 1
    if errs * 2 + erase_count > nsym:
        raise RSDecodeError("too many errors to correct")
    return err_loc


def _find_errors(err_loc: Sequence[int], nmess: int) -> List[int]:
    """Chien search (brute force over positions)."""
    errs = len(err_loc) - 1
    err_pos = [
        nmess - 1 - i
        for i in range(nmess)
        if gf_poly_eval(list(err_loc), gf_pow(2, i)) == 0
    ]
    if len(err_pos) != errs:
        raise RSDecodeError("error locator degree does not match its roots")
    return err_pos


def _forney_syndromes(
    synd: Sequence[int], erase_pos: Sequence[int], nmess: int
) -> List[int]:
    fsynd = list(synd[1:])
    for pos in erase_pos:
        x = gf_pow(2, nmess - 1 - pos)
        for j in range(len(fsynd) - 1):
            fsynd[j] = gf_mul(fsynd[j], x) ^ fsynd[j + 1]
    return fsynd


def rs_correct(
    codeword: Sequence[int],
    nsym: int,
    erase_pos: Optional[Sequence[int]] = None,
) -> Tuple[List[int], List[int]]:
    """Errors-and-erasures decode of a full ``n``-symbol codeword.

    Returns ``(corrected_codeword, errata_positions)``; raises
    :class:`RSDecodeError` when ``2*errors + erasures > nsym`` or the
    corrected word still fails the syndrome check.
    """
    if len(codeword) > 255:
        raise ValueError("codeword longer than 255 symbols")
    erasures = sorted(erase_pos) if erase_pos else []
    if len(erasures) > nsym:
        raise RSDecodeError(
            f"{len(erasures)} erasures exceed the {nsym}-symbol budget"
        )
    msg = list(codeword)
    for pos in erasures:
        msg[pos] = 0
    synd = rs_calc_syndromes(msg, nsym)
    if max(synd) == 0:
        return msg, list(erasures)
    fsynd = _forney_syndromes(synd, erasures, len(msg))
    err_loc = _error_locator(fsynd, nsym, erase_count=len(erasures))
    err_pos = _find_errors(err_loc[::-1], len(msg))
    corrected = _correct_errata(msg, synd, erasures + err_pos)
    if max(rs_calc_syndromes(corrected, nsym)) > 0:
        raise RSDecodeError("could not correct message")
    return corrected, erasures + err_pos
