"""The paper's Generalized-CRT + voting scheme behind the codec protocol.

This is a thin, byte-for-byte-compatible wrapper: ``encode`` performs
exactly the embedder's historical Phase 2 (split into residue
statements consuming the caller's RNG stream identically, enumerate,
block-encrypt), and ``decode`` is exactly the Section 3.3 pipeline of
:mod:`repro.core.recovery` plus the protocol's phantom-mark guard.
``tests/test_codec.py`` pins embed output hashes captured before the
refactor to hold the compatibility line.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.cipher import BlockCipher
from ..core.enumeration import StatementEnumeration
from ..core.primes import choose_moduli
from ..core.recovery import RecoveryResult, recover
from ..core.splitting import split
from .base import EncodedPiece, WatermarkCodec, validate_recovery


class GcrtCodec(WatermarkCodec):
    """Residue statements over pairwise moduli, majority-voted back."""

    name = "gcrt"

    @property
    def spec(self) -> str:
        return "gcrt"

    def encode(
        self,
        value: int,
        watermark_bits: int,
        piece_count: int,
        cipher: BlockCipher,
        rng: Optional[random.Random] = None,
    ) -> List[EncodedPiece]:
        moduli = choose_moduli(watermark_bits)
        statements = split(value, moduli, piece_count, rng)
        enumeration = StatementEnumeration(moduli)
        return [
            EncodedPiece(
                block=cipher.encrypt_block(enumeration.encode(stmt)),
                statement=stmt,
                label=f"gcrt[{stmt.i},{stmt.j}]",
            )
            for stmt in statements
        ]

    def decode(
        self,
        bits: Sequence[int],
        watermark_bits: int,
        cipher: BlockCipher,
        use_voting: bool = True,
    ) -> RecoveryResult:
        moduli = choose_moduli(watermark_bits)
        result = recover(bits, cipher, StatementEnumeration(moduli),
                         use_voting, max_value=1 << watermark_bits)
        result.codec = self.spec
        return validate_recovery(result, watermark_bits)

    def default_piece_count(self, watermark_bits: int) -> int:
        # Twice the modulus count: full coverage with headroom (the
        # pre-codec default of ``embedder.default_piece_count``).
        return 2 * len(choose_moduli(watermark_bits))

    def min_piece_count(self, watermark_bits: int) -> int:
        # A Hamiltonian path over the moduli graph: r - 1 edges.
        return len(choose_moduli(watermark_bits)) - 1

    def success_probability(
        self, watermark_bits: int, pieces: int, piece_loss: float
    ) -> float:
        from ..core.planner import success_probability_for_pieces

        n = len(choose_moduli(watermark_bits))
        return success_probability_for_pieces(n, pieces, piece_loss)
