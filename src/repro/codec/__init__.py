"""Watermark codecs: pluggable encodings between the mark and the trace.

The codec layer decouples *what redundancy scheme encodes the
watermark* from *how pieces are embedded into programs*. Every codec
turns a watermark integer into opaque 64-bit ciphertext blocks (which
the bytecode/native embedders plant unchanged) and decodes a candidate
trace bit-string back into a :class:`~repro.core.recovery.RecoveryResult`.

Codecs are addressed by spec strings::

    "gcrt"        the paper's GCRT residues + voting (the default)
    "rs"          Reed-Solomon, default parity budget (ec_bytes=8)
    "rs-16"       Reed-Solomon with ec_bytes=16
    "hybrid"      GCRT + RS parity, default budget (ec_bytes=4)
    "hybrid-8"    GCRT + RS parity with ec_bytes=8

``resolve_codec`` parses a spec (or passes through a ready instance,
or defaults ``None`` to GCRT) and caches instances — codecs are
stateless, so sharing is safe. ``DEFAULT_CODEC`` names the scheme all
pre-codec artifacts, pickles and service requests decode with.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple, Union

from ..core.errors import WatermarkError
from .base import EncodedPiece, WatermarkCodec, validate_recovery
from .gcrt import GcrtCodec
from .hybrid import HybridCodec
from .rs import ReedSolomonCodec

DEFAULT_CODEC = "gcrt"


class CodecError(WatermarkError):
    """Unknown or malformed codec spec."""


def available_codecs() -> Tuple[str, ...]:
    """Base codec family names, for CLI choices and docs."""
    return ("gcrt", "rs", "hybrid")


@lru_cache(maxsize=64)
def _build(spec: str) -> WatermarkCodec:
    name, _, arg = spec.partition("-")
    ec_bytes: Optional[int] = None
    if arg:
        try:
            ec_bytes = int(arg)
        except ValueError:
            raise CodecError(f"bad codec parameter in {spec!r}") from None
    try:
        if name == "gcrt":
            if ec_bytes is not None:
                raise CodecError("the gcrt codec takes no parameter")
            return GcrtCodec()
        if name == "rs":
            return (
                ReedSolomonCodec() if ec_bytes is None
                else ReedSolomonCodec(ec_bytes=ec_bytes)
            )
        if name == "hybrid":
            return (
                HybridCodec() if ec_bytes is None
                else HybridCodec(ec_bytes=ec_bytes)
            )
    except ValueError as exc:
        raise CodecError(f"bad codec spec {spec!r}: {exc}") from None
    raise CodecError(
        f"unknown codec {spec!r}; available: {', '.join(available_codecs())}"
    )


def resolve_codec(
    spec: Union[str, WatermarkCodec, None] = None,
) -> WatermarkCodec:
    """Spec string / instance / ``None`` (default) to a codec instance."""
    if spec is None:
        spec = DEFAULT_CODEC
    if isinstance(spec, WatermarkCodec):
        return spec
    if not isinstance(spec, str):
        raise CodecError(f"codec spec must be a string, got {type(spec).__name__}")
    return _build(spec.strip().lower())


__all__ = [
    "CodecError",
    "DEFAULT_CODEC",
    "EncodedPiece",
    "GcrtCodec",
    "HybridCodec",
    "ReedSolomonCodec",
    "WatermarkCodec",
    "available_codecs",
    "resolve_codec",
    "validate_recovery",
]
