"""Reed-Solomon watermark codec (position-addressed codeword symbols).

Layout: the watermark is packed big-endian into ``data_bytes =
ceil(bits / 8)`` symbols, extended with a 4-byte keyed MAC (so a decode
that lands on a wrong-but-valid codeword is flagged, not mis-reported),
and RS-encoded with ``ec_bytes`` parity symbols:

    codeword = [ data | mac(4) | parity(ec_bytes) ]      n <= 255

Each embedded piece carries one ``(position, symbol)`` pair sealed by
:func:`~repro.codec.base.seal_symbol` — a 48-bit keyed check inside the
encrypted block gives junk windows an acceptance probability around
``n / 2**56``, matching the GCRT enumeration range check's role.
``piece_count`` pieces cycle round-robin over the ``n`` positions, so
extra budget becomes extra copies per symbol (majority-voted at
decode; a tied vote erases the position rather than guessing).

Decoding collects per-position votes from every 64-bit trace window,
erases missing/ambiguous positions, runs errors-and-erasures RS
correction, and accepts only if the MAC re-verifies. ``confidence`` is
the fraction of codeword symbols recovered clean (no erasure, no
correction).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bitstring import sliding_windows
from ..core.cipher import BlockCipher
from ..core.recovery import RecoveryResult
from .base import (
    PIECE_BITS,
    EncodedPiece,
    WatermarkCodec,
    keyed_mac,
    open_symbol,
    seal_symbol,
    validate_recovery,
)
from .gf256 import RSDecodeError, rs_correct, rs_encode

RS_SYMBOL_TAG = 0x5253  # "RS"
MAC_BYTES = 4
DEFAULT_EC_BYTES = 8


def symbol_votes(
    bits: Sequence[int], cipher: BlockCipher, tag: int, positions: int
) -> Tuple[Dict[int, Counter], int, int]:
    """Tally ``(position -> symbol votes)`` over every 64-bit window.

    Returns ``(votes, windows_inspected, hits)``. Shared with the
    hybrid codec, which seals its parity symbols under a different tag.
    """
    votes: Dict[int, Counter] = {}
    inspected = 0
    hits = 0
    for _, packed in sliding_windows(list(bits), PIECE_BITS):
        inspected += 1
        opened = open_symbol(cipher, tag, packed, positions)
        if opened is not None:
            pos, sym = opened
            votes.setdefault(pos, Counter())[sym] += 1
            hits += 1
    return votes, inspected, hits


def elect_symbols(votes: Dict[int, Counter]) -> Dict[int, int]:
    """Plurality winner per position; tied positions are dropped.

    A tie means the trace contains equal support for two symbol values
    at one position (only possible under active forgery or extreme
    corruption) — treating it as an erasure keeps RS honest instead of
    letting dict ordering pick a winner.
    """
    elected: Dict[int, int] = {}
    for pos, tally in votes.items():
        ranked = tally.most_common(2)
        if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
            continue
        elected[pos] = ranked[0][0]
    return elected


class ReedSolomonCodec(WatermarkCodec):
    """RS(n, data+mac) over GF(256) with a tunable parity budget."""

    name = "rs"

    def __init__(self, ec_bytes: int = DEFAULT_EC_BYTES):
        if ec_bytes < 2:
            raise ValueError("ec_bytes must be at least 2")
        self.ec_bytes = ec_bytes

    @property
    def spec(self) -> str:
        return f"rs-{self.ec_bytes}"

    def layout(self, watermark_bits: int) -> Tuple[int, int]:
        """``(data_bytes, n)`` for a given mark width."""
        data_bytes = max(1, (watermark_bits + 7) // 8)
        n = data_bytes + MAC_BYTES + self.ec_bytes
        if n > 255:
            raise ValueError(
                f"{watermark_bits}-bit marks with ec_bytes={self.ec_bytes} "
                f"need a {n}-symbol codeword; GF(256) caps at 255"
            )
        return data_bytes, n

    def codeword(self, value: int, watermark_bits: int, cipher: BlockCipher) -> List[int]:
        data_bytes, _ = self.layout(watermark_bits)
        data = value.to_bytes(data_bytes, "big")
        mac = keyed_mac(cipher, data, MAC_BYTES)
        return rs_encode(list(data + mac), self.ec_bytes)

    def encode(
        self,
        value: int,
        watermark_bits: int,
        piece_count: int,
        cipher: BlockCipher,
        rng: Optional[random.Random] = None,
    ) -> List[EncodedPiece]:
        if piece_count < self.min_piece_count(watermark_bits):
            raise ValueError(
                f"{piece_count} pieces cannot reach the RS erasure bound; "
                f"need at least {self.min_piece_count(watermark_bits)}"
            )
        _, n = self.layout(watermark_bits)
        word = self.codeword(value, watermark_bits, cipher)
        return [
            EncodedPiece(
                block=seal_symbol(cipher, RS_SYMBOL_TAG, k % n, word[k % n]),
                statement=None,
                label=f"rs[{k % n}]",
            )
            for k in range(piece_count)
        ]

    def decode(
        self,
        bits: Sequence[int],
        watermark_bits: int,
        cipher: BlockCipher,
        use_voting: bool = True,
    ) -> RecoveryResult:
        data_bytes, n = self.layout(watermark_bits)
        votes, inspected, hits = symbol_votes(bits, cipher, RS_SYMBOL_TAG, n)
        elected = elect_symbols(votes)
        result = RecoveryResult(
            complete=False,
            value=None,
            congruence=None,
            windows_inspected=inspected,
            candidates_found=hits,
            candidates_after_voting=sum(
                votes[pos].most_common(1)[0][1] for pos in elected
            ),
            votes={pos: Counter(t) for pos, t in votes.items()},
            clear_winners=dict(elected),
            codec=self.spec,
        )
        erasures = [pos for pos in range(n) if pos not in elected]
        if len(erasures) > self.ec_bytes:
            return result
        word = [elected.get(pos, 0) for pos in range(n)]
        try:
            corrected, errata = rs_correct(word, self.ec_bytes, erase_pos=erasures)
        except RSDecodeError:
            return result
        data = bytes(corrected[:data_bytes])
        mac = bytes(corrected[data_bytes:data_bytes + MAC_BYTES])
        if keyed_mac(cipher, data, MAC_BYTES) != mac:
            return result
        result.complete = True
        result.value = int.from_bytes(data, "big")
        result.confidence = (n - len(errata)) / n
        return validate_recovery(result, watermark_bits)

    def default_piece_count(self, watermark_bits: int) -> int:
        # Two copies of every codeword symbol, mirroring the GCRT
        # default of twice the minimum-coverage budget.
        _, n = self.layout(watermark_bits)
        return 2 * n

    def min_piece_count(self, watermark_bits: int) -> int:
        # Round-robin assignment reaches ``pieces`` distinct positions,
        # and RS tolerates at most ``ec_bytes`` erased positions.
        _, n = self.layout(watermark_bits)
        return n - self.ec_bytes

    def success_probability(
        self, watermark_bits: int, pieces: int, piece_loss: float
    ) -> float:
        """P(at most ``ec_bytes`` positions lose every copy).

        Pieces cycle round-robin, so positions split into two classes
        (``base + 1`` vs ``base`` copies); position survival is
        independent and the erasure count is a sum of two binomials.
        Symbol *corruption* is neglected: the 48-bit sealed check makes
        a wrong accepted symbol astronomically unlikely, so loss — not
        corruption — is the operative threat model (ties that erase a
        position are already covered by treating it as lost).
        """
        from math import comb

        _, n = self.layout(watermark_bits)
        if pieces <= 0:
            return 0.0
        base, extra = divmod(pieces, n)
        q_extra = piece_loss ** (base + 1)
        q_base = piece_loss ** base if base else 1.0
        total = 0.0
        for a in range(extra + 1):
            if a > self.ec_bytes:
                break
            p_a = comb(extra, a) * q_extra ** a * (1 - q_extra) ** (extra - a)
            for b in range(n - extra + 1):
                if a + b > self.ec_bytes:
                    break
                p_b = (
                    comb(n - extra, b)
                    * q_base ** b
                    * (1 - q_base) ** (n - extra - b)
                )
                total += p_a * p_b
        return total
