"""The watermark codec protocol.

A codec sits between the watermark integer and the 64-bit blocks the
embedder plants in the trace bit-string. ``encode`` turns a value into
encrypted pieces; ``decode`` turns a candidate trace bit-string back
into a :class:`~repro.core.recovery.RecoveryResult` with a confidence
score. The embedding substrate (site picking, codegen, insertion) is
codec-agnostic: every codec emits opaque 64-bit ciphertext blocks.

Three implementations are registered (see :mod:`repro.codec`):

``gcrt``
    The paper's scheme — Generalized-CRT residue statements with
    majority voting — refactored behind the protocol byte-for-byte
    compatibly with pre-codec embeds. Stays the default.
``rs``
    Reed-Solomon over GF(256) with a tunable ``ec_bytes`` parity
    budget: the watermark is packed into a systematic codeword and
    embedded as position-addressed symbols, surviving loss of up to
    ``ec_bytes`` whole symbols (erasures) or ``ec_bytes // 2``
    corruptions.
``hybrid``
    GCRT residue statements plus RS parity symbols over the packed
    watermark: the GCRT channel narrows the candidate space even when
    coverage is partial, and the parity channel selects among the
    remaining candidates.

Junk-window validation is part of the protocol: every decode is passed
through :func:`validate_recovery`, which demotes any "complete"
recovery whose value falls outside ``[0, 2**watermark_bits)`` — the
phantom-mark guard that previously lived only in the GCRT recognizer
path.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.cipher import BlockCipher
from ..core.enumeration import Statement
from ..core.recovery import RecoveryResult

PIECE_BITS = 64
_MASK48 = (1 << 48) - 1


@dataclass(frozen=True)
class EncodedPiece:
    """One embeddable piece: a 64-bit ciphertext block plus provenance.

    ``statement`` is set for GCRT-channel pieces (the residue statement
    the block encrypts) and ``None`` for position-addressed symbol
    pieces; ``label`` names the piece for placement reports either way.
    """

    block: int
    statement: Optional[Statement]
    label: str


class WatermarkCodec(ABC):
    """Encode a watermark integer into pieces and decode it back."""

    name: str = "abstract"

    @property
    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string (``resolve_codec(spec)`` round-trips)."""

    @abstractmethod
    def encode(
        self,
        value: int,
        watermark_bits: int,
        piece_count: int,
        cipher: BlockCipher,
        rng: Optional[random.Random] = None,
    ) -> List[EncodedPiece]:
        """Split ``value`` into ``piece_count`` encrypted pieces.

        ``rng`` drives any randomized redundancy layout (the GCRT
        splitter's pair shuffle); codecs that do not randomize must
        leave it untouched so RNG-stream contracts stay stable.
        """

    @abstractmethod
    def decode(
        self,
        bits: Sequence[int],
        watermark_bits: int,
        cipher: BlockCipher,
        use_voting: bool = True,
    ) -> RecoveryResult:
        """Recover the watermark from a candidate trace bit-string.

        ``use_voting`` toggles the GCRT vote prefilter for the ablation
        benches; codecs without a voting stage ignore it. Every decode
        must finish through :func:`validate_recovery`.
        """

    @abstractmethod
    def default_piece_count(self, watermark_bits: int) -> int:
        """Piece count used when the caller does not pass one."""

    @abstractmethod
    def min_piece_count(self, watermark_bits: int) -> int:
        """Smallest piece count from which recovery is possible at all."""

    @abstractmethod
    def success_probability(
        self, watermark_bits: int, pieces: int, piece_loss: float
    ) -> float:
        """P(recovery) when each piece independently dies w.p. ``piece_loss``.

        Must be monotone non-decreasing in ``pieces`` (the redundancy
        planner binary-searches on it).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.spec!r}>"


def validate_recovery(result: RecoveryResult, watermark_bits: int) -> RecoveryResult:
    """Demote phantom recoveries whose value exceeds the mark space.

    A legitimate mark is always below ``2**watermark_bits``, but junk
    windows decrypted under the wrong key occasionally form a mutually
    consistent statement set (or a decodable symbol set) whose combined
    value lands uniformly in a much larger space. Such a "recovery" is
    demoted to incomplete; partial diagnostics (congruence, votes) are
    kept. Idempotent, and applied by every codec's ``decode``.
    """
    if result.complete:
        assert result.value is not None
        if not 0 <= result.value < (1 << watermark_bits):
            result.complete = False
            result.value = None
            result.confidence = 0.0
    return result


def seal_symbol(cipher: BlockCipher, tag: int, pos: int, sym: int) -> int:
    """Encrypt one position-addressed codeword symbol into a 64-bit block.

    Layout of the plaintext block: ``check(48) | pos(8) | sym(8)`` where
    ``check`` is a keyed MAC of ``(tag, pos, sym)``. A random 64-bit
    window survives :func:`open_symbol` with probability about
    ``n / 256 * 2**-48`` — the junk-rejection bar the GCRT enumeration
    range check provides for residue pieces.
    """
    if not 0 <= pos < 256 or not 0 <= sym < 256:
        raise ValueError(f"symbol ({pos}, {sym}) outside GF(256) layout")
    inner = (tag << 16) | (pos << 8) | sym
    check = cipher.encrypt_block(inner) & _MASK48
    return cipher.encrypt_block((check << 16) | (pos << 8) | sym)


def open_symbol(
    cipher: BlockCipher, tag: int, block: int, positions: int
) -> Optional[tuple]:
    """Inverse of :func:`seal_symbol`; ``None`` for junk windows.

    ``positions`` bounds the valid position range (the codeword length
    ``n``), tightening junk rejection beyond the MAC check.
    """
    plain = cipher.decrypt_block(block)
    sym = plain & 0xFF
    pos = (plain >> 8) & 0xFF
    if pos >= positions:
        return None
    inner = (tag << 16) | (pos << 8) | sym
    if cipher.encrypt_block(inner) & _MASK48 != plain >> 16:
        return None
    return pos, sym


def keyed_mac(cipher: BlockCipher, data: bytes, out_bytes: int) -> bytes:
    """Length-prefixed CBC-MAC over ``data`` with the embedding cipher.

    Binds the decoded payload to the key so an RS decode that lands on
    a wrong-but-valid codeword (possible beyond the error budget) is
    flagged instead of mis-reported.
    """
    state = cipher.encrypt_block(len(data) & ((1 << 64) - 1))
    for k in range(0, len(data), 8):
        chunk = data[k:k + 8].ljust(8, b"\x00")
        state = cipher.encrypt_block(state ^ int.from_bytes(chunk, "big"))
    return state.to_bytes(8, "big")[:out_bytes]
