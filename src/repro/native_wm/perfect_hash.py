"""Perfect hashing for branch functions (paper Section 4.1).

    "We address the second problem using perfect hashing [12]. Given
    the control flow mapping phi = {a_1 -> b_1, ..., a_n -> b_n} we
    want the branch function to implement, we create a perfect hash
    function h_phi : {a_1, ..., a_n} -> {1, ..., n}."

The construction is a two-level displacement scheme in the FKS/CHD
family, chosen so that its *evaluation* compiles to the same shape as
the paper's Figure 7 hash code (multiply, shift, displacement-table
lookup, xor, mask):

    h(k) = (((k * MUL) mod 2^32) >> SHIFT) ^ g[k & (G-1)]) & (M-1)

where ``g`` is a table of G displacement words and M (a power of two,
at most 4n) is the hash range. Keys are bucketed by their low bits;
buckets are assigned xor-displacements greedily, largest first, until
all slots are distinct — the classic CHD search, which succeeds with
overwhelming probability at load factor <= 1/2 (we retry with a new
multiplier otherwise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.errors import EmbeddingError


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


@dataclass
class PerfectHash:
    """A collision-free map from the key set into ``[0, size)``."""

    mul: int
    shift: int
    g: List[int]
    size: int  # M, a power of two

    @property
    def g_mask(self) -> int:
        return len(self.g) - 1

    @property
    def slot_mask(self) -> int:
        return self.size - 1

    def mix(self, key: int) -> int:
        return ((key * self.mul) & 0xFFFFFFFF) >> self.shift

    def evaluate(self, key: int) -> int:
        return (self.mix(key) ^ self.g[key & self.g_mask]) & self.slot_mask


def hash_geometry(n: int) -> tuple:
    """(hash range M, displacement table size G) for n keys.

    Deterministic in n so the embedder can reserve data-section space
    before the keys (call-site addresses) are known. M is the smallest
    power of two giving a load factor of at most 2/3 — comfortably
    inside the region where the greedy displacement search succeeds,
    without doubling the table cost the way a fixed 2x rule would for
    key counts just above a power of two.
    """
    m = max(2, _next_pow2((3 * n + 1) // 2))
    return m, max(2, m // 4)


def build_perfect_hash(
    keys: Sequence[int],
    rng: random.Random,
    max_attempts: int = 64,
) -> PerfectHash:
    """Construct a perfect hash for ``keys`` (distinct 32-bit values)."""
    keys = list(keys)
    if len(set(keys)) != len(keys):
        raise EmbeddingError("perfect hash keys must be distinct")
    if not keys:
        raise EmbeddingError("need at least one key")
    n = len(keys)
    size, g_size = hash_geometry(n)

    for _attempt in range(max_attempts):
        mul = rng.randrange(1, 1 << 32) | 1  # odd multiplier
        shift = max(0, 32 - size.bit_length() - 3)
        ph = PerfectHash(mul, shift, [0] * g_size, size)

        buckets: Dict[int, List[int]] = {}
        for k in keys:
            buckets.setdefault(k & (g_size - 1), []).append(k)
        # Distinct keys may still collide within a bucket after mixing;
        # a displacement cannot separate equal mixed values.
        ok = True
        for bucket in buckets.values():
            mixed = [ph.mix(k) & ph.slot_mask for k in bucket]
            if len(set(mixed)) != len(mixed):
                ok = False
                break
        if not ok:
            continue

        used = [False] * size
        order = sorted(buckets, key=lambda b: -len(buckets[b]))
        for b in order:
            bucket = buckets[b]
            placed = False
            for d in range(size):
                slots = [(ph.mix(k) ^ d) & ph.slot_mask for k in bucket]
                if len(set(slots)) == len(slots) and not any(
                    used[s] for s in slots
                ):
                    ph.g[b] = d
                    for s in slots:
                        used[s] = True
                    placed = True
                    break
            if not placed:
                ok = False
                break
        if ok:
            _validate(ph, keys)
            return ph
    raise EmbeddingError(
        f"could not build a perfect hash for {n} keys in "
        f"{max_attempts} attempts"
    )


def _validate(ph: PerfectHash, keys: Sequence[int]) -> None:
    slots = [ph.evaluate(k) for k in keys]
    if len(set(slots)) != len(slots):  # pragma: no cover - defensive
        raise EmbeddingError("perfect hash validation failed")
    if any(not 0 <= s < ph.size for s in slots):  # pragma: no cover
        raise EmbeddingError("perfect hash slot out of range")
