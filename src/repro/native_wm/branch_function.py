"""Branch-function code generation (paper Sections 4.1 and 4.3, Figure 7).

The generated routine chain:

* ``bf_entry`` — saves flags and registers, delegates to a helper;
* ``bf_helper1`` — a dummy frame of random size (the paper's "stack
  frame sizes can be chosen randomly by the implementation");
* ``bf_helper2`` — the Figure 7 core: reads the hash input (the
  original return address) from a known stack depth, computes the
  perfect hash (multiply / shift / displacement-table lookup / xor /
  mask), xors ``T[h(k)]`` into the saved return address, and performs
  the tamper-proofing update of the lockdown record for this slot.

The helper-chain indirection is the paper's answer to "an observant
attacker can detect when the location containing the return address
happens to be the destination of an arithmetic (or move) instruction":
the function that is *called* never touches its own return address —
a helper reaches ``D`` words deep into the stack instead, where ``D``
depends on the randomly chosen helper frame size.

All numeric parameters are operands of fixed-length instructions, so
the routine can be emitted with placeholders first (to fix the text
layout) and re-emitted with final values without moving a byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..native.assembler import TextItem
from ..native.isa import Imm, Label, Mem, Reg, ni

EAX, ECX, EDX = Reg("eax"), Reg("ecx"), Reg("edx")
ESP = Reg("esp")


@dataclass
class BranchFunctionSpec:
    """Everything the emitted code embeds as immediates."""

    mul: int = 1
    shift: int = 0
    g_mask: int = 0
    slot_mask: int = 0
    g_base: int = 0
    t_base: int = 0
    lock_base: int = 0
    helper_pad: int = 16  # PAD1; random multiple of 4

    @property
    def hash_input_depth(self) -> int:
        """Stack offset of the original return address inside helper2,
        after helper2's own three register saves.

        Layout (from esp up): eax ecx edx | ret_h1 | pad | ret_bf |
        eax ecx edx flags | k.
        """
        return 12 + 4 + self.helper_pad + 4 + 16


ENTRY_LABEL = "bf_entry"
_H1_LABEL = "bf_helper1"
_H2_LABEL = "bf_helper2"
_SKIP_LABEL = "bf_lock_skip"


def emit_branch_function(spec: BranchFunctionSpec) -> List[TextItem]:
    """The branch function and helpers as layout items.

    Re-emitting with a different spec (same ``helper_pad``) produces a
    byte-length-identical sequence.
    """
    d = spec.hash_input_depth
    items: List[TextItem] = [
        ("label", ENTRY_LABEL),
        ni("pushf"),
        ni("push", EDX),
        ni("push", ECX),
        ni("push", EAX),
        ni("call", Label(_H1_LABEL)),
        ni("pop", EAX),
        ni("pop", ECX),
        ni("pop", EDX),
        ni("popf"),
        ni("ret"),

        ("label", _H1_LABEL),
        ni("sub_ri", ESP, Imm(spec.helper_pad)),
        ni("call", Label(_H2_LABEL)),
        ni("add_ri", ESP, Imm(spec.helper_pad)),
        ni("ret"),

        ("label", _H2_LABEL),
        ni("push", EDX),
        ni("push", ECX),
        ni("push", EAX),
        # --- perfect hash of the return address (Fig. 7 core) ---
        ni("mov_rm", EAX, Mem(base="esp", disp=d)),
        ni("mov_rr", EDX, EAX),
        ni("and_ri", EDX, Imm(spec.g_mask)),
        ni("mov_rx", ECX, Mem(disp=spec.g_base, index="edx")),
        ni("imul_rri", EAX, EAX, Imm(spec.mul)),
        ni("shr_ri", EAX, Imm(spec.shift)),
        ni("xor_rr", EAX, ECX),
        ni("and_ri", EAX, Imm(spec.slot_mask)),
        # --- return address fix ---
        ni("mov_rr", EDX, EAX),
        ni("mov_rx", ECX, Mem(disp=spec.t_base, index="eax")),
        ni("xor_mr", Mem(base="esp", disp=d), ECX),
        # --- tamper-proofing: update this slot's lockdown record ---
        ni("shl_ri", EDX, Imm(3)),
        ni("mov_ri", ECX, Imm(spec.lock_base)),
        ni("add_rr", ECX, EDX),
        ni("mov_rm", EAX, Mem(base="ecx", disp=0)),
        ni("cmp_ri", EAX, Imm(0)),
        ni("je", Label(_SKIP_LABEL)),
        ni("mov_rm", EDX, Mem(base="ecx", disp=4)),
        ni("xor_rr", EAX, EDX),
        ni("mov_mr", Mem(base="ecx", disp=0), EAX),
        ni("mov_mi", Mem(base="ecx", disp=4), Imm(0)),
        ("label", _SKIP_LABEL),
        ni("pop", EAX),
        ni("pop", ECX),
        ni("pop", EDX),
        ni("ret"),
    ]
    return items


def branch_function_byte_size(spec: BranchFunctionSpec) -> int:
    """Encoded size of the emitted routine chain."""
    return sum(
        item.length for item in emit_branch_function(spec)
        if not isinstance(item, tuple)
    )
