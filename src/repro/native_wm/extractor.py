"""Native watermark extraction (paper Section 4.2.3).

    "We use a tracer tool that uses hardware single-stepping to obtain
    a dynamic trace of the instructions executed between the time
    control reaches `begin` and when it subsequently reaches `end`.
    This trace is then analyzed to identify the branch function f_w,
    by observing functions that do not return to the instruction
    following the call instruction."

Two tracers are provided, mirroring the discussion of attack 5
(Section 5.2.2):

* :class:`SimpleTracer` — identifies each ``a_i`` as the address of
  the instruction that transferred control *into* the branch
  function's entry. Defeated by the rerouting attack (a trampoline
  ``Y: jmp bf`` makes every transfer-in come from ``Y``).
* :class:`SmartTracer` — reads the branch function's *hash input*
  (the return address at the top of the stack on entry) instead:
  ``a_i = k - 5``. "By constructing a tracer that tracks the value of
  the hash input to the branch function each time it executes [...]
  the original mapping can be easily retrieved."

Both then pair each entry with the address control resumes at when
the branch function's own frame unwinds (``b_i``), and decode bits by
comparing consecutive chain addresses: forward = 1, backward = 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from ..obs.recognition import RecognitionReport

from ..native.image import BinaryImage
from ..native.machine import Machine, MachineFault
from .embedder import CALL_LENGTH


@dataclass
class BranchFunctionEvent:
    """One observed pass through the branch function."""

    source: int          # a_i as deduced by the tracer
    resumed_at: int      # b_i: where control resumed after the return


@dataclass
class ExtractionResult:
    """Outcome of one extraction attempt.

    ``events`` holds the *selected chain* (not the full event stream);
    the diagnostic counters describe the stream it was selected from:
    ``events_observed`` passes through the branch function overall,
    split into ``runs_found`` maximal linked runs of the recorded
    ``run_lengths``. A healthy watermark shows one run of length
    ``width + 1`` towering over length-1 obfuscation noise.
    """

    watermark: Optional[int]
    width: int
    events: List[BranchFunctionEvent] = field(default_factory=list)
    bf_entry: Optional[int] = None
    events_observed: int = 0
    runs_found: int = 0
    run_lengths: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.watermark is not None


class _TracerBase:
    """Single-steps a machine, watching entries into a target routine."""

    def __init__(self, image: BinaryImage, bf_entry: int):
        self.image = image
        self.bf_entry = bf_entry
        self.events: List[BranchFunctionEvent] = []
        self._prev_addr: Optional[int] = None
        self._entry_stack: List[Tuple[int, int]] = []  # (esp at entry, source)

    def _source_of_entry(self, machine: Machine, prev_addr: Optional[int]) -> int:
        raise NotImplementedError

    def run(self, inputs: Sequence[int], max_steps: Optional[int] = None):
        machine = Machine(self.image) if max_steps is None else Machine(
            self.image, max_steps
        )

        def hook(m: Machine, addr: int, instr) -> None:
            if addr == self.bf_entry:
                source = self._source_of_entry(m, self._prev_addr)
                self._entry_stack.append((m.regs[4], source))
            elif instr.mnemonic == "ret" and self._entry_stack:
                esp_entry, source = self._entry_stack[-1]
                if m.regs[4] == esp_entry:
                    # The branch function's own ret: control resumes at
                    # the (possibly rewritten) word at [esp].
                    resumed = m.read32(m.regs[4])
                    self._entry_stack.pop()
                    self.events.append(BranchFunctionEvent(source, resumed))
            self._prev_addr = addr

        machine.run(inputs, hook)
        return machine


class SimpleTracer(_TracerBase):
    """a_i := address of the instruction that jumped/called into bf."""

    def _source_of_entry(self, machine: Machine, prev_addr: Optional[int]) -> int:
        return prev_addr if prev_addr is not None else 0


class SmartTracer(_TracerBase):
    """a_i := hash input - 5 (the return address the bf will consume)."""

    def _source_of_entry(self, machine: Machine, prev_addr: Optional[int]) -> int:
        return machine.read32(machine.regs[4]) - CALL_LENGTH


def identify_branch_function(
    image: BinaryImage,
    inputs: Sequence[int],
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """First pass: find the routine whose calls do not return normally.

    Maintains a shadow stack of (expected return, call target); a ret
    that pops a *different* address exposes its callee as a branch
    function. Returns the most frequently exposed call target.
    """
    machine = Machine(image) if max_steps is None else Machine(
        image, max_steps
    )
    shadow: List[Tuple[int, int, int]] = []  # (esp_after_call, expected, target)
    exposed: Dict[int, int] = {}
    state = {"pending_ret": None}

    def hook(m: Machine, addr: int, instr) -> None:
        pending = state["pending_ret"]
        if pending is not None:
            expected, target = pending
            if addr != expected:
                exposed[target] = exposed.get(target, 0) + 1
            state["pending_ret"] = None
        mn = instr.mnemonic
        if mn == "call":
            shadow.append(
                (m.regs[4] - 4, addr + instr.length, instr.operands[0].value)
            )
        elif mn == "call_a":
            dest = m.read32(instr.operands[0].disp)
            shadow.append((m.regs[4] - 4, addr + instr.length, dest))
        elif mn == "ret" and shadow:
            esp_after_call, expected, target = shadow[-1]
            if m.regs[4] == esp_after_call:
                shadow.pop()
                # Verify on the *next* step where control actually went.
                state["pending_ret"] = (expected, target)

    try:
        machine.run(inputs, hook)
    except MachineFault:
        pass
    if not exposed:
        return None
    return max(exposed.items(), key=lambda kv: kv[1])[0]


def _linked_runs(
    events: List[BranchFunctionEvent],
) -> List[List[BranchFunctionEvent]]:
    """Split events into maximal chains where each pass resumes exactly
    at the next pass's source — the linkage property of a watermark
    chain (``b_i = a_{i+1}``). Obfuscated non-watermark transfers
    through the branch function resume at ordinary code, so they fall
    into runs of length 1."""
    runs: List[List[BranchFunctionEvent]] = []
    current: List[BranchFunctionEvent] = []
    for ev in events:
        if current and current[-1].resumed_at != ev.source:
            runs.append(current)
            current = []
        current.append(ev)
    if current:
        runs.append(current)
    return runs


def extract_native_auto(
    image: BinaryImage,
    inputs: Sequence[int] = (),
    width: Optional[int] = None,
    tracer: str = "smart",
    bf_entry: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> ExtractionResult:
    """Extraction with automatic framing (the paper's future work).

    Section 4.2.3 notes the begin/end bracket is "currently supplied
    manually; however, we expect to augment the implementation in the
    near future to use a framing scheme that would allow these
    addresses to be identified automatically". The watermark chain
    identifies *itself*: it is the unique maximal run of branch-
    function passes in which every pass resumes exactly at the next
    pass's call site. We trace, split the event stream into such
    linked runs, and decode the longest (or the one of the expected
    ``width + 1`` length when ``width`` is given).
    """
    if tracer not in ("simple", "smart"):
        raise ValueError(f"unknown tracer {tracer!r}")
    if bf_entry is None:
        bf_entry = identify_branch_function(image, inputs, max_steps)
        if bf_entry is None:
            return ExtractionResult(None, width or 0)
    cls = SimpleTracer if tracer == "simple" else SmartTracer
    t = cls(image, bf_entry)
    try:
        t.run(inputs, max_steps)
    except MachineFault:
        pass
    runs = _linked_runs(t.events)
    if not runs:
        return ExtractionResult(
            None, width or 0, [], bf_entry,
            events_observed=len(t.events),
        )
    if width is not None:
        candidates = [r for r in runs if len(r) == width + 1]
        chain = candidates[0] if candidates else max(runs, key=len)
    else:
        chain = max(runs, key=len)
    found_width = len(chain) - 1
    result = ExtractionResult(
        None, width or found_width, chain, bf_entry,
        events_observed=len(t.events),
        runs_found=len(runs),
        run_lengths=[len(r) for r in runs],
    )
    if found_width < 1 or (width is not None and found_width != width):
        return result
    bits = [1 if chain[i + 1].source > chain[i].source else 0
            for i in range(found_width)]
    result.watermark = sum(b << k for k, b in enumerate(bits))
    return result


def extract_native(
    image: BinaryImage,
    width: int,
    begin: int,
    end: int,
    inputs: Sequence[int] = (),
    tracer: str = "smart",
    bf_entry: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> ExtractionResult:
    """Extract a ``width``-bit watermark.

    ``begin``/``end`` bracket the watermark region ("currently, these
    are supplied manually" — Section 4.2.3). ``bf_entry`` may be given
    or is discovered with :func:`identify_branch_function`.
    """
    if tracer not in ("simple", "smart"):
        raise ValueError(f"unknown tracer {tracer!r}")
    if bf_entry is None:
        bf_entry = identify_branch_function(image, inputs, max_steps)
        if bf_entry is None:
            return ExtractionResult(None, width)
    cls = SimpleTracer if tracer == "simple" else SmartTracer
    t = cls(image, bf_entry)
    try:
        t.run(inputs, max_steps)
    except MachineFault:
        # A broken (attacked) program may still have yielded events.
        pass

    # Select the chain: events from the one starting at `begin` until
    # control resumes at `end`.
    chain: List[BranchFunctionEvent] = []
    collecting = False
    for ev in t.events:
        if not collecting and ev.source == begin:
            collecting = True
        if collecting:
            chain.append(ev)
            if ev.resumed_at == end:
                break
    runs = _linked_runs(t.events)
    result = ExtractionResult(
        None, width, chain, bf_entry,
        events_observed=len(t.events),
        runs_found=len(runs),
        run_lengths=[len(r) for r in runs],
    )
    if len(chain) != width + 1 or not chain or chain[-1].resumed_at != end:
        return result
    bits = []
    for i in range(width):
        bits.append(1 if chain[i + 1].source > chain[i].source else 0)
    # Consistency: each event must resume at the next call site.
    for i in range(width):
        if chain[i].resumed_at != chain[i + 1].source:
            return result
    result.watermark = sum(b << k for k, b in enumerate(bits))
    return result


def native_recognition_report(result: ExtractionResult) -> "RecognitionReport":
    """Structured diagnostics for a native extraction attempt."""
    from ..obs.recognition import RecognitionReport

    report = RecognitionReport(
        scheme="native",
        complete=result.complete,
        value=result.watermark,
        events_observed=result.events_observed,
        runs_found=result.runs_found,
        run_lengths=list(result.run_lengths),
        chain_length=len(result.events),
        bf_entry=result.bf_entry,
        width=result.width,
    )
    if result.bf_entry is None:
        report.notes.append(
            "branch function not identified - no call was observed "
            "returning somewhere other than its fall-through"
        )
    elif not result.events_observed:
        report.notes.append(
            "branch function identified but never passed through on "
            "this input"
        )
    elif not result.complete and result.events:
        want = result.width + 1
        report.notes.append(
            f"selected chain has {len(result.events)} passes but "
            f"{want} are needed for a {result.width}-bit watermark"
        )
    return report
