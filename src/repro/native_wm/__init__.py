"""Branch-function watermarking for N32 native code (paper Section 4).

The dynamic blind fingerprinting pipeline for native executables::

    from repro.native_wm import embed_native, extract_native

    emb = embed_native(image, watermark=W, width=64, inputs=key_inputs)
    got = extract_native(emb.image, emb.width, emb.begin, emb.end,
                         key_inputs, tracer="smart")
    assert got.watermark == W
"""

from .branch_function import (
    BranchFunctionSpec,
    ENTRY_LABEL,
    branch_function_byte_size,
    emit_branch_function,
)
from .embedder import CALL_LENGTH, NativeEmbedding, embed_native
from .extractor import (
    BranchFunctionEvent,
    ExtractionResult,
    SimpleTracer,
    SmartTracer,
    extract_native,
    extract_native_auto,
    identify_branch_function,
    native_recognition_report,
)
from .perfect_hash import PerfectHash, build_perfect_hash, hash_geometry

__all__ = [
    "BranchFunctionEvent",
    "BranchFunctionSpec",
    "CALL_LENGTH",
    "ENTRY_LABEL",
    "ExtractionResult",
    "NativeEmbedding",
    "PerfectHash",
    "SimpleTracer",
    "SmartTracer",
    "branch_function_byte_size",
    "build_perfect_hash",
    "embed_native",
    "emit_branch_function",
    "extract_native",
    "extract_native_auto",
    "hash_geometry",
    "identify_branch_function",
    "native_recognition_report",
]
