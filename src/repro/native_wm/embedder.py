"""Native watermark embedding (paper Section 4.2.2 + 4.3).

Pipeline:

1. **Profile** the binary on the key input (PLTO instrumentation mode)
   to find a cold, executed, unconditional edge ``begin -> end``.
2. **Chain construction**: replace the ``begin`` jump with ``call
   bf_entry`` (= ``a_0``), then for each watermark bit scan forward
   (bit 1) or backward (bit 0) for the nearest unused *no-fall-through
   slot* — a position whose preceding instruction is an unconditional
   transfer — and insert the next call there, so that
   ``addr(a_i) < addr(a_{i+1})`` iff ``w_i = 1``.
3. **Branch function**: append the Figure 7 routine chain; lay the
   program out once with placeholder parameters (lengths are final),
   read back the call addresses, build the perfect hash over the
   return addresses ``k_i = a_i + 5``, then re-emit with real
   parameters and lay out again (byte-for-byte same addresses).
4. **Tables**: extend the data section with the displacement table
   ``g``, the XOR table ``T[h(k_i)] = k_i ^ b_i`` (so the data section
   never contains raw text addresses — footnote 2), and the lockdown
   records.
5. **Tamper-proofing**: up to ``k`` cold, loop-free, post-``begin``
   direct jumps become indirect jumps through lockdown records that
   only the corresponding branch-function call initializes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.bitstring import int_to_bits_lsb_first
from ..core.errors import EmbeddingError
from ..native.image import BinaryImage
from ..native.isa import (
    Label,
    Mem,
    NInstruction,
    UNCONDITIONAL_FLOW,
    ni,
)
from ..native.cfg import build_native_cfg
from ..native.profiler import Profile, profile_image
from ..native.rewriter import LiftedProgram, RewriteError, lift, lower
from .branch_function import (
    BranchFunctionSpec,
    ENTRY_LABEL,
    emit_branch_function,
)
from .perfect_hash import build_perfect_hash, hash_geometry

CALL_LENGTH = 5  # bytes; k_i = a_i + CALL_LENGTH


@dataclass
class NativeEmbedding:
    """A watermarked binary plus the recognizer-relevant bracket."""

    image: BinaryImage
    watermark: int
    width: int
    begin: int                      # address of a_0
    end: int                        # address execution reaches after a_k
    bf_entry: int
    call_addresses: List[int] = field(default_factory=list)
    tamper_jumps: List[int] = field(default_factory=list)
    #: addresses of non-watermark transfers routed through the branch
    #: function for stealth (Section 4.2.1's "can also be used to
    #: obfuscate other control transfers")
    obfuscated_calls: List[int] = field(default_factory=list)
    original_size: int = 0

    @property
    def size_increase(self) -> int:
        return self.image.total_size() - self.original_size


def _item_addresses(prog: LiftedProgram) -> Tuple[Dict[int, int], Dict[str, int]]:
    """(id(item) -> address, label -> address) matching lower()'s layout."""
    instr_addr: Dict[int, int] = {}
    label_addr: Dict[str, int] = {}
    addr = prog.image.text_base
    for item in prog.items:
        if isinstance(item, tuple):
            label_addr[item[1]] = addr
        else:
            instr_addr[id(item)] = addr
            addr += item.length
    return instr_addr, label_addr


def _slot_positions(prog: LiftedProgram, used: Set[int]) -> List[int]:
    """Item indices where a call can be inserted without ever executing.

    A slot is the position *immediately* after an unconditional
    transfer, before any label: a label in between would make the
    position reachable (branches land on labels), and so would a
    fall-through from any non-transfer instruction. One slot per
    transfer; ``used`` holds the transfers already consumed.
    """
    slots: List[int] = []
    pending: Optional[NInstruction] = None
    for idx, item in enumerate(prog.items):
        if pending is not None and id(pending) not in used:
            slots.append(idx)
        if isinstance(item, tuple):
            pending = None  # a label makes the next position reachable
        elif item.mnemonic in UNCONDITIONAL_FLOW:
            pending = item
        else:
            pending = None
    if pending is not None and id(pending) not in used:
        slots.append(len(prog.items))
    return slots


def _preceding_instr(prog: LiftedProgram, index: int) -> Optional[NInstruction]:
    for item in reversed(prog.items[:index]):
        if not isinstance(item, tuple):
            return item
    return None


def _begin_candidates(
    prog: LiftedProgram, profile: Profile
) -> List[Tuple[int, int]]:
    """(address, item index) of cold executed direct jumps, best first.

    Cold jumps (a handful of executions) are bucketed together and
    ordered by *earliest first execution*: an early begin edge keeps
    the chain's runtime cost low AND leaves the most later-executing
    cold jumps available as tamper-proofing candidates.
    """
    out = []
    for addr, idx in prog.index_of_addr.items():
        item = prog.items[idx]
        if isinstance(item, tuple) or item.mnemonic != "jmp":
            continue
        if not isinstance(item.operands[0], Label):
            continue
        count = profile.count(addr)
        if count == 0:
            continue
        bucket = count if count > 4 else 1
        out.append((bucket, profile.first_seen.get(addr, 0), addr, idx))
    out.sort()
    return [(addr, idx) for _b, _f, addr, idx in out]


def embed_native(
    image: BinaryImage,
    watermark: int,
    width: int,
    inputs: Sequence[int] = (),
    rng_seed: int = 2004,
    tamper_proof: bool = True,
    max_tamper_count: int = 16,
    obfuscate_extra: int = 0,
) -> NativeEmbedding:
    """Embed a ``width``-bit watermark into a copy of ``image``.

    ``inputs`` is the secret input the binary is profiled (and later
    traced) with. ``obfuscate_extra`` additionally routes up to that
    many ordinary (non-watermark) jumps through the branch function,
    so that watermark call sites are not the only callers — a stealth
    measure the paper inherits from Linn & Debray [15]. Raises
    :class:`EmbeddingError` when no suitable begin edge or not enough
    slots exist.
    """
    if watermark < 0 or watermark >= (1 << width):
        raise EmbeddingError(f"watermark does not fit in {width} bits")
    bits = int_to_bits_lsb_first(watermark, width)
    profile = profile_image(image, inputs)
    # Static loop membership for the paper's tamper-proofing criterion
    # ("... and is not part of a loop", Section 4.3).
    loop_addresses = build_native_cfg(image).loop_instruction_addresses()
    base_prog = lift(image)
    candidates = _begin_candidates(base_prog, profile)
    if not candidates:
        raise EmbeddingError("no executed direct jmp available as begin edge")

    last_error: Optional[Exception] = None
    fallback: Optional[NativeEmbedding] = None
    for begin_addr, _idx in candidates[:8]:
        try:
            result = _embed_at(
                image, watermark, width, bits, begin_addr, profile,
                random.Random(rng_seed), tamper_proof, max_tamper_count,
                inputs, obfuscate_extra, loop_addresses,
            )
        except (EmbeddingError, RewriteError) as exc:
            last_error = exc
            continue
        if not tamper_proof or result.tamper_jumps:
            return result
        # Embedding worked but found no lockdown candidates from this
        # begin edge; remember it and try a begin that leaves some cold
        # jumps executing after it.
        if fallback is None:
            fallback = result
    if fallback is not None:
        return fallback
    raise EmbeddingError(f"embedding failed at every begin edge: {last_error}")


def _embed_at(
    image: BinaryImage,
    watermark: int,
    width: int,
    bits: List[int],
    begin_addr: int,
    profile: Profile,
    rng: random.Random,
    tamper_proof: bool,
    max_tamper_count: int,
    inputs: Sequence[int],
    obfuscate_extra: int = 0,
    loop_addresses: Optional[Set[int]] = None,
) -> NativeEmbedding:
    loop_addresses = loop_addresses if loop_addresses is not None else set()
    prog = lift(image)
    begin_idx = prog.find(begin_addr)
    begin_jmp = prog.items[begin_idx]
    assert isinstance(begin_jmp, NInstruction) and begin_jmp.mnemonic == "jmp"
    end_label = begin_jmp.operands[0].name

    # a_0 replaces the begin jump (both are 5 bytes).
    a0 = ni("call", Label(ENTRY_LABEL))
    prog.items[begin_idx] = a0
    calls: List[NInstruction] = [a0]
    used: Set[int] = set()
    cur = begin_idx
    for bit in bits:
        slots = _slot_positions(prog, used)
        if bit:
            choices = [s for s in slots if s > cur]
            if not choices:
                # Extend the text with a dead halt to mint a new slot.
                prog.items.append(ni("halt"))
                choices = [len(prog.items)]
            target_idx = choices[0]
        else:
            choices = [s for s in slots if s <= cur]
            if not choices:
                # Mint a dead slot at the very top of the text: a halt
                # nothing falls into, with the call right after it.
                prog.insert(0, [ni("halt")])
                cur += 1
                choices = [1]
            target_idx = choices[-1]
        call = ni("call", Label(ENTRY_LABEL))
        prog.insert(target_idx, [call])
        marker = _preceding_instr(prog, target_idx)
        if marker is not None:
            used.add(id(marker))
        calls.append(call)
        cur = prog.items.index(call)  # identity equality: finds this call

    # Extra obfuscated transfers: ordinary executed jumps rerouted
    # through the branch function. Same 5-byte size, so this is a
    # plain item replacement; the end target itself is excluded so
    # auto-framing's chain-linkage never absorbs an extra.
    extra_calls: List[Tuple[NInstruction, str]] = []
    if obfuscate_extra > 0:
        for addr in sorted(prog.index_of_addr):
            if len(extra_calls) >= obfuscate_extra:
                break
            idx = prog.index_of_addr[addr]
            item = prog.items[idx]
            if not isinstance(item, NInstruction) or item.mnemonic != "jmp":
                continue
            if item is begin_jmp or not isinstance(item.operands[0], Label):
                continue
            if item.operands[0].name == end_label:
                continue
            if profile.count(addr) == 0:
                continue
            call = ni("call", Label(ENTRY_LABEL))
            prog.items[idx] = call
            extra_calls.append((call, item.operands[0].name))

    # Data-extension layout (absolute addresses known up front).
    data_cursor = image.data_base + len(image.data)
    # Phase A cannot know table sizes precisely (they depend on the
    # perfect hash size, which depends only on the key count). The
    # hash range M is deterministic in len(keys): compute it now.
    n_keys = len(calls) + len(extra_calls)
    m, g_size = hash_geometry(n_keys)
    g_base = data_cursor
    t_base = g_base + 4 * g_size
    lock_base = t_base + 4 * m

    pad = 4 * rng.randrange(2, 10)
    spec = BranchFunctionSpec(
        g_base=g_base, t_base=t_base, lock_base=lock_base, helper_pad=pad
    )
    bf_start = len(prog.items)
    prog.items.extend(emit_branch_function(spec))

    # Tamper-proofing: convert cold post-begin jumps to indirect jumps.
    # The paper's candidate rule - "infrequently executed portion of
    # the code and not part of a loop" (Section 4.3) - is applied as a
    # preference: loop-free candidates first, then (for tight kernels
    # that keep every cold jump inside some loop) cold in-loop ones,
    # whose execution counts the max_tamper_count cap already bounds.
    tamper_items: List[Tuple[NInstruction, str]] = []
    if tamper_proof:
        t0 = profile.first_seen.get(begin_addr, 0)
        candidates: List[Tuple[bool, int, int]] = []
        for addr in sorted(prog.index_of_addr):
            idx = prog.index_of_addr[addr]
            item = prog.items[idx]
            if not isinstance(item, NInstruction) or item.mnemonic != "jmp":
                continue
            if item is begin_jmp or not isinstance(item.operands[0], Label):
                continue
            count = profile.count(addr)
            if count == 0 or count > max_tamper_count:
                continue
            if profile.first_seen.get(addr, -1) <= t0:
                continue
            candidates.append((addr in loop_addresses, addr, idx))
        candidates.sort()  # loop-free (False) first, then by address
        for _in_loop, addr, idx in candidates[:len(calls)]:
            item = prog.items[idx]
            target_label = item.operands[0].name
            indirect = ni("jmp_a", Mem(disp=0))  # rec address filled later
            prog.items[idx] = indirect
            tamper_items.append((indirect, target_label))

    # Phase B: first layout, compute addresses and the perfect hash.
    instr_addr, label_addr = _item_addresses(prog)
    call_addrs = [instr_addr[id(c)] for c in calls]
    extra_addrs = [instr_addr[id(c)] for c, _t in extra_calls]
    keys = [a + CALL_LENGTH for a in call_addrs + extra_addrs]
    ph = build_perfect_hash(keys, rng)
    if ph.size != m or len(ph.g) != g_size:
        raise EmbeddingError(
            "perfect hash geometry diverged from reserved layout"
        )
    end_addr = label_addr[end_label]
    slots = [ph.evaluate(k) for k in keys]

    # Phase C: re-emit with final parameters; lengths are unchanged.
    spec = BranchFunctionSpec(
        mul=ph.mul, shift=ph.shift, g_mask=ph.g_mask,
        slot_mask=ph.slot_mask, g_base=g_base, t_base=t_base,
        lock_base=lock_base, helper_pad=pad,
    )
    prog.items[bf_start:] = emit_branch_function(spec)
    tamper_slots: List[Tuple[int, str, int]] = []
    for j, (indirect, target_label) in enumerate(tamper_items):
        rec_addr = lock_base + slots[j] * 8
        indirect.operands = (Mem(disp=rec_addr),)
        tamper_slots.append((slots[j], target_label, rec_addr))

    final = lower(prog)
    # Sanity: layout must not have moved between phases.
    instr_addr2, label_addr2 = _item_addresses(prog)
    if [instr_addr2[id(c)] for c in calls] != call_addrs:
        raise EmbeddingError("layout shifted between phases")

    # Phase D: write the tables into the extended data section.
    extension = bytearray(4 * g_size + 4 * m + 8 * m)
    def put(addr: int, value: int) -> None:
        off = addr - data_cursor
        extension[off:off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    for b, disp in enumerate(ph.g):
        put(g_base + 4 * b, disp)
    junk_slots = set(range(m)) - set(slots)
    for s in junk_slots:
        put(t_base + 4 * s, rng.randrange(1 << 32))
    # Re-resolve targets against the final layout (identical to the
    # first: lengths did not change).
    final_targets = (
        call_addrs[1:] + [label_addr2[end_label]]
        + [label_addr2[t] for _c, t in extra_calls]
    )
    for k, t, s in zip(keys, final_targets, slots):
        put(t_base + 4 * s, k ^ t)
    for slot, target_label, rec_addr in tamper_slots:
        correct = label_addr2[target_label]
        patch = rng.randrange(1, 1 << 32)
        while patch == correct:
            patch = rng.randrange(1, 1 << 32)
        put(rec_addr, correct ^ patch)
        put(rec_addr + 4, patch)
    final.data.extend(extension)

    final.symbols["__wm_begin"] = call_addrs[0]
    final.symbols["__wm_end"] = end_addr
    return NativeEmbedding(
        image=final,
        watermark=watermark,
        width=width,
        begin=call_addrs[0],
        end=end_addr,
        bf_entry=label_addr2[ENTRY_LABEL],
        call_addresses=call_addrs,
        tamper_jumps=[rec for _s, _t, rec in tamper_slots],
        obfuscated_calls=extra_addrs,
        original_size=image.total_size(),
    )
