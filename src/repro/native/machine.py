"""The N32 machine simulator, with single-step tracing hooks.

Faithful to the properties Section 4 uses:

* ``call`` pushes the return address; ``ret`` pops the word at
  ``[esp]`` into ``eip`` *whatever it is* — a branch function that
  xors the stack slot redirects control, exactly like on IA-32;
* execution faults (bad opcode, out-of-range eip, wild memory access,
  division by zero) raise :class:`MachineFault` — the simulator's
  SIGSEGV/SIGILL. The attack harness equates a faulting program with
  a broken one;
* the ``step_hook`` callback observes every instruction with full
  machine state before it executes — the "tracer tool that uses
  hardware single-stepping" of Section 4.2.3.

Time is measured in executed instructions (see DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .encoding import EncodingError
from .image import BinaryImage, STACK_SIZE, STACK_TOP
from .isa import Mem, NInstruction, Reg, signed32, wrap32

DEFAULT_MAX_STEPS = 80_000_000

#: Sentinel return address for the entry frame; `ret` to it ends the run.
EXIT_ADDRESS = 0x0000DEAD


class MachineFault(Exception):
    """A hardware-level fault (the program is broken)."""

    def __init__(self, reason: str, eip: int = 0):
        super().__init__(f"fault at {eip:#x}: {reason}")
        self.reason = reason
        self.eip = eip


class NRunResult:
    """Output and instruction count of a completed run."""

    def __init__(self, output: List[int], steps: int):
        self.output = output
        self.steps = steps

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"NRunResult(steps={self.steps}, output={self.output!r})"


StepHook = Callable[["Machine", int, NInstruction], None]


class Machine:
    """One execution context over a binary image."""

    def __init__(
        self,
        image: BinaryImage,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.image = image
        self.max_steps = max_steps
        self.regs: List[int] = [0] * 8
        self.flags_val = 0
        self.eip = image.entry
        self.output: List[int] = []
        self.steps = 0
        self._stack = bytearray(STACK_SIZE)
        self._stack_base = STACK_TOP - STACK_SIZE
        # Private copy of the data section: running a program must not
        # mutate the image (heap pointers, lockdown records) - each run
        # is a fresh process.
        self._data = bytearray(image.data)
        self._data_base = image.data_base
        self._inputs: Sequence[int] = ()
        self._input_pos = 0
        self._decode_cache: Dict[int, Tuple[NInstruction, int]] = {}
        self.regs[4] = STACK_TOP - 64  # esp

    # -- memory -----------------------------------------------------------

    def read32(self, addr: int) -> int:
        addr = wrap32(addr)
        image = self.image
        off = addr - self._data_base
        if 0 <= off <= len(self._data) - 4:
            return int.from_bytes(self._data[off:off + 4], "little")
        if self._stack_base <= addr <= STACK_TOP - 4:
            off = addr - self._stack_base
            return int.from_bytes(self._stack[off:off + 4], "little")
        if image.in_text(addr):
            off = addr - image.text_base
            return int.from_bytes(image.text[off:off + 4], "little")
        raise MachineFault(f"bad read at {addr:#x}", self.eip)

    def write32(self, addr: int, value: int) -> None:
        addr = wrap32(addr)
        image = self.image
        off = addr - self._data_base
        if 0 <= off <= len(self._data) - 4:
            self._data[off:off + 4] = wrap32(value).to_bytes(4, "little")
            return
        if self._stack_base <= addr <= STACK_TOP - 4:
            off = addr - self._stack_base
            self._stack[off:off + 4] = wrap32(value).to_bytes(4, "little")
            return
        if image.in_text(addr):
            raise MachineFault(f"write to text at {addr:#x}", self.eip)
        raise MachineFault(f"bad write at {addr:#x}", self.eip)

    def push(self, value: int) -> None:
        self.regs[4] = wrap32(self.regs[4] - 4)
        self.write32(self.regs[4], value)

    def pop(self) -> int:
        value = self.read32(self.regs[4])
        self.regs[4] = wrap32(self.regs[4] + 4)
        return value

    # -- operand helpers ----------------------------------------------------

    def _mem_addr(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.regs[Reg(mem.base).code]
        if mem.index is not None:
            addr += self.regs[Reg(mem.index).code] * 4
        return wrap32(addr)

    def _set_flags(self, result: int) -> None:
        self.flags_val = result

    # -- execution ---------------------------------------------------------

    def run(
        self,
        inputs: Sequence[int] = (),
        step_hook: Optional[StepHook] = None,
    ) -> NRunResult:
        """Execute until halt/exit; returns output + instruction count."""
        self._inputs = inputs
        self._input_pos = 0
        self.push(EXIT_ADDRESS)
        running = True
        while running:
            running = self.step(step_hook)
        return NRunResult(self.output, self.steps)

    def step(self, step_hook: Optional[StepHook] = None) -> bool:
        """Execute one instruction; False when the program has ended."""
        eip = self.eip
        image = self.image
        if eip == EXIT_ADDRESS:
            return False
        if not image.in_text(eip):
            raise MachineFault(f"eip outside text: {eip:#x}", eip)
        cached = self._decode_cache.get(eip)
        if cached is None:
            try:
                cached = image.decode_at(eip)
            except EncodingError as exc:
                raise MachineFault(f"undecodable instruction: {exc}", eip)
            self._decode_cache[eip] = cached
        instr, length = cached

        self.steps += 1
        if self.steps > self.max_steps:
            raise MachineFault("instruction budget exceeded", eip)
        if step_hook is not None:
            step_hook(self, eip, instr)

        regs = self.regs
        m = instr.mnemonic
        ops = instr.operands
        next_eip = eip + length

        if m == "mov_ri":
            regs[ops[0].code] = wrap32(ops[1].value)
        elif m == "mov_rr":
            regs[ops[0].code] = regs[ops[1].code]
        elif m == "mov_rm":
            regs[ops[0].code] = self.read32(self._mem_addr(ops[1]))
        elif m == "mov_mr":
            self.write32(self._mem_addr(ops[0]), regs[ops[1].code])
        elif m == "mov_ra":
            regs[ops[0].code] = self.read32(ops[1].disp)
        elif m == "mov_ar":
            self.write32(ops[0].disp, regs[ops[1].code])
        elif m == "mov_mi":
            self.write32(self._mem_addr(ops[0]), ops[1].value)
        elif m == "mov_rx":
            regs[ops[0].code] = self.read32(self._mem_addr(ops[1]))
        elif m == "lea":
            regs[ops[0].code] = self._mem_addr(ops[1])
        elif m == "xchg_rm":
            addr = self._mem_addr(ops[1])
            tmp = self.read32(addr)
            self.write32(addr, regs[ops[0].code])
            regs[ops[0].code] = tmp
        elif m == "xchg_rr":
            a, b = ops[0].code, ops[1].code
            regs[a], regs[b] = regs[b], regs[a]
        elif m == "push":
            self.push(regs[ops[0].code])
        elif m == "pop":
            regs[ops[0].code] = self.pop()
        elif m == "pushi":
            self.push(ops[0].value)
        elif m == "pushf":
            zf = 1 if self.flags_val == 0 else 0
            sf = 1 if self.flags_val < 0 else 0
            self.push(zf | (sf << 1))
        elif m == "popf":
            packed = self.pop()
            if packed & 1:
                self.flags_val = 0
            else:
                self.flags_val = -1 if packed & 2 else 1
        elif m in _ALU_RR:
            a = regs[ops[0].code]
            b = regs[ops[1].code]
            result = _ALU_RR[m](signed32(a), signed32(b))
            if m not in ("cmp_rr", "test_rr"):
                regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m in _ALU_RI:
            a = regs[ops[0].code]
            b = ops[1].value
            result = _ALU_RI[m](signed32(a), signed32(wrap32(b)))
            if m != "cmp_ri":
                regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m in ("add_mr", "sub_mr", "xor_mr"):
            addr = self._mem_addr(ops[0])
            a = signed32(self.read32(addr))
            b = signed32(regs[ops[1].code])
            result = {"add_mr": a + b, "sub_mr": a - b,
                      "xor_mr": a ^ b}[m]
            self.write32(addr, result)
            self._set_flags(result)
        elif m in ("add_rm", "xor_rm", "cmp_rm"):
            a = signed32(regs[ops[0].code])
            b = signed32(self.read32(self._mem_addr(ops[1])))
            result = {"add_rm": a + b, "xor_rm": a ^ b,
                      "cmp_rm": a - b}[m]
            if m != "cmp_rm":
                regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m == "cmp_mi":
            a = signed32(self.read32(self._mem_addr(ops[0])))
            self._set_flags(a - signed32(wrap32(ops[1].value)))
        elif m == "shl_ri":
            result = regs[ops[0].code] << (ops[1].value & 31)
            regs[ops[0].code] = wrap32(result)
            self._set_flags(signed32(result))
        elif m == "shr_ri":
            result = regs[ops[0].code] >> (ops[1].value & 31)
            regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m == "sar_ri":
            result = signed32(regs[ops[0].code]) >> (ops[1].value & 31)
            regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m == "shl_rr":
            result = regs[ops[0].code] << (regs[ops[1].code] & 31)
            regs[ops[0].code] = wrap32(result)
            self._set_flags(signed32(result))
        elif m == "shr_rr":
            result = regs[ops[0].code] >> (regs[ops[1].code] & 31)
            regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m == "sar_rr":
            result = signed32(regs[ops[0].code]) >> (regs[ops[1].code] & 31)
            regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m == "neg":
            result = -signed32(regs[ops[0].code])
            regs[ops[0].code] = wrap32(result)
            self._set_flags(result)
        elif m == "not":
            regs[ops[0].code] = wrap32(~regs[ops[0].code])
        elif m == "imul_rr":
            result = signed32(regs[ops[0].code]) * signed32(regs[ops[1].code])
            regs[ops[0].code] = wrap32(result)
            self._set_flags(signed32(wrap32(result)))
        elif m == "imul_rri":
            result = signed32(regs[ops[1].code]) * signed32(wrap32(ops[2].value))
            regs[ops[0].code] = wrap32(result)
            self._set_flags(signed32(wrap32(result)))
        elif m == "idiv":
            divisor = signed32(regs[ops[0].code])
            if divisor == 0:
                raise MachineFault("division by zero", eip)
            dividend = signed32(regs[0])
            q = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                q = -q
            r = dividend - q * divisor
            regs[0] = wrap32(q)
            regs[2] = wrap32(r)
        elif m == "jmp":
            next_eip = ops[0].value
        elif m == "call":
            self.push(next_eip)
            next_eip = ops[0].value
        elif m == "jmp_a":
            next_eip = self.read32(ops[0].disp)
        elif m == "call_a":
            self.push(next_eip)
            next_eip = self.read32(ops[0].disp)
        elif m == "jmp_r":
            next_eip = regs[ops[0].code]
        elif m == "ret":
            next_eip = self.pop()
        elif m in _JCC:
            if _JCC[m](self.flags_val):
                next_eip = ops[0].value
        elif m == "sys_out":
            self.output.append(signed32(regs[0]))
        elif m == "sys_in":
            if self._input_pos >= len(self._inputs):
                raise MachineFault("input exhausted", eip)
            regs[0] = wrap32(self._inputs[self._input_pos])
            self._input_pos += 1
        elif m == "nop":
            pass
        elif m == "halt":
            return False
        else:  # pragma: no cover - forms table is closed
            raise MachineFault(f"unimplemented {m}", eip)

        self.eip = wrap32(next_eip)
        if self.eip == EXIT_ADDRESS:
            return False
        return True


_ALU_RR = {
    "add_rr": lambda a, b: a + b,
    "sub_rr": lambda a, b: a - b,
    "and_rr": lambda a, b: a & b,
    "or_rr": lambda a, b: a | b,
    "xor_rr": lambda a, b: a ^ b,
    "cmp_rr": lambda a, b: a - b,
    "test_rr": lambda a, b: a & b,
}
_ALU_RI = {
    "add_ri": lambda a, b: a + b,
    "sub_ri": lambda a, b: a - b,
    "and_ri": lambda a, b: a & b,
    "or_ri": lambda a, b: a | b,
    "xor_ri": lambda a, b: a ^ b,
    "cmp_ri": lambda a, b: a - b,
}
_JCC = {
    "je": lambda f: f == 0,
    "jne": lambda f: f != 0,
    "jl": lambda f: f < 0,
    "jle": lambda f: f <= 0,
    "jg": lambda f: f > 0,
    "jge": lambda f: f >= 0,
}


def run_image(
    image: BinaryImage,
    inputs: Sequence[int] = (),
    max_steps: int = DEFAULT_MAX_STEPS,
    step_hook: Optional[StepHook] = None,
) -> NRunResult:
    """Convenience: fresh machine, run to completion."""
    return Machine(image, max_steps).run(inputs, step_hook)
