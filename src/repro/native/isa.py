"""N32 instruction-set architecture.

N32 is the byte-addressed register machine standing in for IA-32 (see
DESIGN.md). It keeps every property the paper's Section 4 relies on:

* instructions live at byte addresses and have **variable encoded
  lengths** (call rel32 = 5 bytes, jcc = 6, push reg = 1, ...), so
  no-op insertion moves addresses and a 5-byte ``call`` can be
  overwritten in place by a 5-byte ``jmp`` (attack 4 of §5.2.2);
* ``call`` pushes the return address on the stack and ``ret`` pops it,
  so a branch function can ``xchg``/``xor`` its return address through
  ``[esp+disp]`` exactly like Figure 7;
* direct control transfers are **relative**; data-section constants
  (the XOR table, lockdown cells) hold **absolute** addresses — the
  asymmetry that makes address-changing transformations break
  tamper-proofed binaries;
* eight IA-32-named registers, a flags word saved/restored by
  ``pushf``/``popf``.

Encodings are this simulator's own (an opcode byte plus packed
operands) with lengths chosen to match the IA-32 flavor; the encoder
and decoder in :mod:`repro.native.encoding` are exact inverses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

REGISTERS = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
REG_INDEX: Dict[str, int] = {name: i for i, name in enumerate(REGISTERS)}

_MASK32 = 0xFFFFFFFF


def wrap32(v: int) -> int:
    """Wrap to unsigned 32-bit (register width)."""
    return v & _MASK32


def signed32(v: int) -> int:
    """Interpret a 32-bit value as signed."""
    v &= _MASK32
    return v - (1 << 32) if v & 0x80000000 else v


@dataclass(frozen=True)
class Reg:
    name: str

    def __post_init__(self):
        if self.name not in REG_INDEX:
            raise ValueError(f"unknown register {self.name!r}")

    @property
    def code(self) -> int:
        return REG_INDEX[self.name]

    def __repr__(self):
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    value: int

    def __repr__(self):
        return f"${self.value:#x}" if self.value >= 10 else f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """``[base + disp]`` when ``base`` is set, else absolute ``[disp]``.

    ``index`` adds a scaled register (``[disp + index*4]``), used by
    the perfect-hash table lookup.
    """

    base: Optional[str] = None
    disp: int = 0
    index: Optional[str] = None

    def __post_init__(self):
        if self.base is not None and self.base not in REG_INDEX:
            raise ValueError(f"unknown base register {self.base!r}")
        if self.index is not None and self.index not in REG_INDEX:
            raise ValueError(f"unknown index register {self.index!r}")

    def __repr__(self):
        if self.base is not None:
            return f"{self.disp:#x}(%{self.base})"
        if self.index is not None:
            return f"{self.disp:#x}(,%{self.index},4)"
        return f"[{self.disp:#x}]"


@dataclass(frozen=True)
class Label:
    """Symbolic address operand, resolved at layout time."""

    name: str

    def __repr__(self):
        return self.name


#: mnemonic -> (operand signature, encoded byte length)
#: Signatures: r = register, i = imm32, m = [base+disp32],
#: a = absolute [addr32], x = [addr32 + idx*4], s8 = imm8 shift count,
#: rel = rel32 branch target, none = no operands.
INSTRUCTION_FORMS: Dict[str, Tuple[Tuple[str, ...], int]] = {
    "nop": ((), 1),
    "halt": ((), 1),
    "ret": ((), 1),
    "pushf": ((), 1),
    "popf": ((), 1),
    "push": (("r",), 1),
    "pop": (("r",), 1),
    "pushi": (("i",), 5),
    "mov_ri": (("r", "i"), 5),
    "mov_rr": (("r", "r"), 2),
    "mov_rm": (("r", "m"), 6),
    "mov_mr": (("m", "r"), 6),
    "mov_ra": (("r", "a"), 6),
    "mov_ar": (("a", "r"), 6),
    "mov_mi": (("m", "i"), 10),
    "mov_rx": (("r", "x"), 7),
    "lea": (("r", "m"), 6),
    "xchg_rm": (("r", "m"), 6),
    "xchg_rr": (("r", "r"), 2),
    # ALU register-register
    "add_rr": (("r", "r"), 2),
    "sub_rr": (("r", "r"), 2),
    "and_rr": (("r", "r"), 2),
    "or_rr": (("r", "r"), 2),
    "xor_rr": (("r", "r"), 2),
    "cmp_rr": (("r", "r"), 2),
    "test_rr": (("r", "r"), 2),
    "imul_rr": (("r", "r"), 3),
    # ALU register-immediate
    "add_ri": (("r", "i"), 6),
    "sub_ri": (("r", "i"), 6),
    "and_ri": (("r", "i"), 6),
    "or_ri": (("r", "i"), 6),
    "xor_ri": (("r", "i"), 6),
    "cmp_ri": (("r", "i"), 6),
    # memory-destination ALU
    "add_mr": (("m", "r"), 6),
    "sub_mr": (("m", "r"), 6),
    "xor_mr": (("m", "r"), 6),
    # register-from-memory ALU
    "add_rm": (("r", "m"), 6),
    "xor_rm": (("r", "m"), 6),
    "cmp_rm": (("r", "m"), 6),
    "cmp_mi": (("m", "i"), 10),
    # shifts / unary
    "shl_ri": (("r", "s8"), 3),
    "shr_ri": (("r", "s8"), 3),
    "sar_ri": (("r", "s8"), 3),
    "shl_rr": (("r", "r"), 2),
    "shr_rr": (("r", "r"), 2),
    "sar_rr": (("r", "r"), 2),
    "neg": (("r",), 2),
    "not": (("r",), 2),
    "imul_rri": (("r", "r", "i"), 6),
    "idiv": (("r",), 2),
    # control transfer
    "jmp": (("rel",), 5),
    "call": (("rel",), 5),
    "jmp_a": (("a",), 6),     # indirect through a memory cell
    "call_a": (("a",), 6),
    "jmp_r": (("r",), 2),
    "je": (("rel",), 6),
    "jne": (("rel",), 6),
    "jl": (("rel",), 6),
    "jle": (("rel",), 6),
    "jg": (("rel",), 6),
    "jge": (("rel",), 6),
    # system interface
    "sys_out": ((), 2),       # print signed value of eax
    "sys_in": ((), 2),        # eax = next secret-input value
}

CONDITIONAL_JUMPS = frozenset({"je", "jne", "jl", "jle", "jg", "jge"})
JCC_INVERSES = {
    "je": "jne", "jne": "je", "jl": "jge", "jge": "jl",
    "jle": "jg", "jg": "jle",
}
RELATIVE_TRANSFERS = CONDITIONAL_JUMPS | {"jmp", "call"}
UNCONDITIONAL_FLOW = frozenset({"jmp", "jmp_a", "jmp_r", "ret", "halt"})


@dataclass(eq=False)
class NInstruction:
    """One decoded/authored N32 instruction.

    Identity (not value) equality: chains of identical ``call bf``
    instructions must remain distinguishable to the embedder.

    ``operands`` follow the form signature. Relative-transfer targets
    are :class:`Label` before layout and :class:`Imm` (absolute target
    address) after decoding; the encoder converts to rel32.
    """

    mnemonic: str
    operands: Tuple = ()

    def __post_init__(self):
        if self.mnemonic not in INSTRUCTION_FORMS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")

    @property
    def length(self) -> int:
        return INSTRUCTION_FORMS[self.mnemonic][1]

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in CONDITIONAL_JUMPS

    def copy(self) -> "NInstruction":
        return NInstruction(self.mnemonic, tuple(self.operands))

    def __repr__(self):
        ops = ", ".join(repr(o) for o in self.operands)
        return f"{self.mnemonic} {ops}".strip()


def ni(mnemonic: str, *operands) -> NInstruction:
    """Shorthand constructor."""
    return NInstruction(mnemonic, tuple(operands))
