"""PLTO-style binary rewriting for N32 images.

The paper's native implementation is "built on top of PLTO, a binary
rewriting system [...] reads in statically linked executables,
disassembles the input binary, and constructs a control flow graph,
which can then either be instrumented to obtain execution profiles,
or modified to have a given watermark embedded into it."

:func:`lift` disassembles an image into an editable instruction list
whose intra-text control transfers are symbolic; :func:`lower`
re-lays-out and re-encodes the edited list. Crucially, **the data
section and its base address are preserved verbatim**: a rewriter can
re-target the relative branches it can *see* in the code, but it has
no relocation information for code addresses *stored as data* (the
branch function's XOR table, tamper-proofing cells). This asymmetry
is exactly why address-shifting attacks break tamper-proofed binaries
(Section 4.3 / 5.2.2) while honest rewriting of unwatermarked
binaries is safe.

:func:`patch_bytes` performs in-place same-length byte patching — the
"overwrite the call with a jump instruction of exactly the same size"
attack (Section 5.2.2, attack 4) without any relayout at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from .encoding import encode_instruction
from .image import BinaryImage
from .isa import Imm, Label, NInstruction, RELATIVE_TRANSFERS

TextItem = Union[Tuple[str, str], NInstruction]


class RewriteError(Exception):
    """Lift/lower failure (overlapping edits, text overflow, ...)."""


@dataclass
class LiftedProgram:
    """Editable form of a binary's text section."""

    items: List[TextItem]
    image: BinaryImage
    entry_label: str
    #: original address -> index into ``items`` of that instruction
    index_of_addr: Dict[int, int] = field(default_factory=dict)

    def find(self, addr: int) -> int:
        """Item index of the instruction originally at ``addr``."""
        try:
            return self.index_of_addr[addr]
        except KeyError:
            raise RewriteError(f"no instruction at {addr:#x}") from None

    def insert(self, index: int, instructions: List[NInstruction]) -> None:
        """Insert instructions before item ``index``; invalidates no
        labels (they are symbolic) but shifts later indices."""
        self.items[index:index] = instructions
        shift = len(instructions)
        for addr, idx in self.index_of_addr.items():
            if idx >= index:
                self.index_of_addr[addr] = idx + shift


def _target_label(addr: int) -> str:
    return f"La_{addr:08x}"


def lift(image: BinaryImage) -> LiftedProgram:
    """Disassemble into symbolic, editable form."""
    listing = image.disassemble()
    addresses = {addr for addr, _ in listing}

    targets = set()
    for addr, instr in listing:
        if instr.mnemonic in RELATIVE_TRANSFERS:
            dest = instr.operands[0]
            if isinstance(dest, Imm) and image.in_text(dest.value):
                if dest.value not in addresses:
                    raise RewriteError(
                        f"branch into the middle of an instruction at "
                        f"{dest.value:#x}"
                    )
                targets.add(dest.value)
    targets.add(image.entry)

    items: List[TextItem] = []
    index_of_addr: Dict[int, int] = {}
    for addr, instr in listing:
        if addr in targets:
            items.append(("label", _target_label(addr)))
        edited = instr.copy()
        if edited.mnemonic in RELATIVE_TRANSFERS:
            dest = edited.operands[0]
            if isinstance(dest, Imm) and image.in_text(dest.value):
                edited = NInstruction(
                    edited.mnemonic, (Label(_target_label(dest.value)),)
                )
        index_of_addr[addr] = len(items)
        items.append(edited)

    return LiftedProgram(
        items, image, _target_label(image.entry), index_of_addr
    )


def lower(prog: LiftedProgram) -> BinaryImage:
    """Re-layout and re-encode; data section stays put.

    Raises :class:`RewriteError` if the rewritten text would collide
    with the (immovable) data section.
    """
    image = prog.image
    symbols: Dict[str, int] = {}
    addr = image.text_base
    for item in prog.items:
        if isinstance(item, tuple):
            name = item[1]
            if name in symbols:
                raise RewriteError(f"duplicate label {name!r}")
            symbols[name] = addr
        else:
            addr += item.length
    if addr > image.data_base:
        raise RewriteError(
            f"rewritten text ({addr - image.text_base} bytes) overflows "
            f"into the data section"
        )
    if prog.entry_label not in symbols:
        raise RewriteError(f"entry label {prog.entry_label!r} lost")

    text = bytearray()
    addr = image.text_base
    for item in prog.items:
        if isinstance(item, tuple):
            continue
        resolved = item
        if item.mnemonic in RELATIVE_TRANSFERS and isinstance(
            item.operands[0], Label
        ):
            name = item.operands[0].name
            if name not in symbols:
                raise RewriteError(f"undefined label {name!r}")
            resolved = NInstruction(item.mnemonic, (Imm(symbols[name]),))
        try:
            text += encode_instruction(resolved, addr)
        except Exception as exc:
            raise RewriteError(f"encode failed for {resolved!r}: {exc}")
        addr += resolved.length

    new_symbols = dict(image.symbols)
    # Remap original text symbols through the edit when possible.
    for name, sym_addr in image.symbols.items():
        if image.in_text(sym_addr):
            label = _target_label(sym_addr)
            if label in symbols:
                new_symbols[name] = symbols[label]
            elif sym_addr in prog.index_of_addr:
                new_symbols[name] = _address_of_index(
                    prog, symbols, image.text_base, prog.index_of_addr[sym_addr]
                )
    return BinaryImage(
        bytes(text),
        bytearray(image.data),
        image.data_base,
        symbols[prog.entry_label],
        image.text_base,
        new_symbols,
        image.bss_bytes,
    )


def _address_of_index(
    prog: LiftedProgram,
    symbols: Dict[str, int],
    text_base: int,
    index: int,
) -> int:
    addr = text_base
    for item in prog.items[:index]:
        if not isinstance(item, tuple):
            addr += item.length
    return addr


def patch_bytes(image: BinaryImage, addr: int, new_bytes: bytes) -> BinaryImage:
    """In-place byte patch: same length, no relayout.

    The address arithmetic of every other instruction is untouched —
    the only transformation an attacker can apply to a tamper-proofed
    binary without shifting addresses.
    """
    if not image.in_text(addr) or not image.in_text(addr + len(new_bytes) - 1):
        raise RewriteError(f"patch outside text: {addr:#x}")
    off = addr - image.text_base
    text = bytearray(image.text)
    text[off:off + len(new_bytes)] = new_bytes
    return BinaryImage(
        bytes(text),
        bytearray(image.data),
        image.data_base,
        image.entry,
        image.text_base,
        dict(image.symbols),
        image.bss_bytes,
    )
