"""Control-flow graph over N32 binaries (PLTO's CFG stage).

    "The system reads in statically linked executables, disassembles
    the input binary, and constructs a control flow graph..."

Blocks are address ranges; edges follow direct transfers (conditional
targets, fall-throughs, direct jumps). Calls are treated as
fall-through (the callee returns); indirect transfers contribute no
edges (the classic conservative gap that makes binary rewriting hard
— and that the tamper-proofing exploits).

Used by the native watermarker for the paper's tamper-proofing
candidate criterion: "a branch is considered to be a candidate if it
occurs in an infrequently executed portion of the code and is not
part of a loop" — loop membership is computed here, statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .image import BinaryImage
from .isa import CONDITIONAL_JUMPS, Imm, NInstruction

_FLOW_BREAKERS = frozenset({"jmp", "jmp_a", "jmp_r", "ret", "halt"})


@dataclass
class NBlock:
    """A basic block: [start, end) addresses plus successor starts."""

    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    instructions: List[Tuple[int, NInstruction]] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[NInstruction]:
        return self.instructions[-1][1] if self.instructions else None


@dataclass
class NativeCFG:
    """Whole-text CFG of a binary image."""

    image: BinaryImage
    blocks: Dict[int, NBlock]
    order: List[int]
    entry: int

    def block_of(self, addr: int) -> Optional[int]:
        """Start address of the block containing ``addr``."""
        return self._containing.get(addr)

    def __post_init__(self):
        self._containing: Dict[int, int] = {}
        for start, block in self.blocks.items():
            for a, _i in block.instructions:
                self._containing[a] = start

    def back_edges(self) -> List[Tuple[int, int]]:
        """(source, target) block starts forming DFS back edges."""
        color: Dict[int, int] = {}
        out: List[Tuple[int, int]] = []
        for root in [self.entry] + self.order:
            if color.get(root, 0) != 0:
                continue
            color[root] = 1
            stack: List[Tuple[int, int]] = [(root, 0)]
            while stack:
                name, child = stack[-1]
                succs = self.blocks[name].successors
                if child < len(succs):
                    stack[-1] = (name, child + 1)
                    succ = succs[child]
                    c = color.get(succ, 0)
                    if c == 1:
                        out.append((name, succ))
                    elif c == 0:
                        color[succ] = 1
                        stack.append((succ, 0))
                else:
                    color[name] = 2
                    stack.pop()
        return out

    def loop_blocks(self) -> Set[int]:
        """Blocks participating in some natural loop."""
        preds: Dict[int, List[int]] = {b: [] for b in self.blocks}
        for start, block in self.blocks.items():
            for s in block.successors:
                if s in preds:
                    preds[s].append(start)
        in_loop: Set[int] = set()
        for source, target in self.back_edges():
            body = {target, source}
            work = [source]
            while work:
                b = work.pop()
                if b == target:
                    continue
                for p in preds.get(b, []):
                    if p not in body:
                        body.add(p)
                        work.append(p)
            in_loop |= body
        return in_loop

    def dominators(self) -> Dict[int, Set[int]]:
        """Dominator sets per block (iterative dataflow, from entry).

        Section 4.3 frames tamper-proofing placement in dominator
        terms: "We begin by taking an unconditional branch at a
        location l such that begin dominates l" - a branch the
        watermark region provably executes before. Blocks unreachable
        from the entry get an empty set.
        """
        preds: Dict[int, List[int]] = {b: [] for b in self.blocks}
        for start, block in self.blocks.items():
            for s in block.successors:
                if s in preds:
                    preds[s].append(start)
        # Reachable blocks only.
        reach: Set[int] = set()
        work = [self.entry]
        while work:
            n = work.pop()
            if n in reach:
                continue
            reach.add(n)
            work.extend(self.blocks[n].successors)

        dom: Dict[int, Set[int]] = {
            b: (set(reach) if b != self.entry else {self.entry})
            for b in reach
        }
        changed = True
        order = [b for b in self.order if b in reach]
        while changed:
            changed = False
            for b in order:
                if b == self.entry:
                    continue
                pred_doms = [dom[p] for p in preds[b] if p in reach]
                if pred_doms:
                    new = set.intersection(*pred_doms) | {b}
                else:
                    new = {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        for b in self.blocks:
            dom.setdefault(b, set())
        return dom

    def dominates(self, a_addr: int, b_addr: int) -> bool:
        """Whether the block holding ``a_addr`` dominates ``b_addr``'s."""
        a_block = self.block_of(a_addr)
        b_block = self.block_of(b_addr)
        if a_block is None or b_block is None:
            return False
        return a_block in self.dominators().get(b_block, set())

    def loop_instruction_addresses(self) -> Set[int]:
        """Addresses of every instruction inside some loop."""
        out: Set[int] = set()
        for start in self.loop_blocks():
            for addr, _instr in self.blocks[start].instructions:
                out.add(addr)
        return out


def build_native_cfg(image: BinaryImage) -> NativeCFG:
    """Disassemble and construct the whole-text CFG."""
    listing = image.disassemble()
    addresses = [a for a, _ in listing]
    addr_set = set(addresses)
    by_addr = dict(listing)

    leaders: Set[int] = set()
    if addresses:
        leaders.add(addresses[0])
    leaders.add(image.entry)
    for addr, instr in listing:
        m = instr.mnemonic
        if m in CONDITIONAL_JUMPS or m in ("jmp", "call"):
            dest = instr.operands[0]
            if isinstance(dest, Imm) and dest.value in addr_set:
                leaders.add(dest.value)
        if m in _FLOW_BREAKERS or m in CONDITIONAL_JUMPS or m == "call":
            nxt = addr + instr.length
            if nxt in addr_set:
                leaders.add(nxt)

    ordered = sorted(leaders)
    blocks: Dict[int, NBlock] = {}
    for pos, start in enumerate(ordered):
        end = ordered[pos + 1] if pos + 1 < len(ordered) else (
            image.text_end
        )
        block = NBlock(start, end)
        addr = start
        while addr < end:
            instr = by_addr[addr]
            block.instructions.append((addr, instr))
            addr += instr.length
        blocks[start] = block

    for pos, start in enumerate(ordered):
        block = blocks[start]
        term = block.terminator
        nxt = ordered[pos + 1] if pos + 1 < len(ordered) else None
        if term is None:
            if nxt is not None:
                block.successors.append(nxt)
            continue
        m = term.mnemonic
        if m in CONDITIONAL_JUMPS:
            dest = term.operands[0]
            if isinstance(dest, Imm) and dest.value in blocks:
                block.successors.append(dest.value)
            if nxt is not None:
                block.successors.append(nxt)
        elif m == "jmp":
            dest = term.operands[0]
            if isinstance(dest, Imm) and dest.value in blocks:
                block.successors.append(dest.value)
        elif m == "call":
            # The callee returns: fall-through edge. (Not an edge to
            # the callee: this is a layout CFG, not a call graph.)
            if nxt is not None:
                block.successors.append(nxt)
        elif m in ("jmp_a", "jmp_r", "ret", "halt"):
            pass  # indirect / terminal: no static successors
        else:
            if nxt is not None:
                block.successors.append(nxt)

    entry_block = blocks.get(image.entry)
    entry = image.entry if entry_block is not None else ordered[0]
    return NativeCFG(image, blocks, ordered, entry)
