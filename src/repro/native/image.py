"""N32 binary images: text + data sections, symbols, entry point.

The layout mimics a statically linked ELF executable the way PLTO
sees one: a read-only text section at a fixed base, a writable data
section above it, and a symbol table that exists for the *producer's*
convenience only — the machine and the attacks never need it, which
models the paper's "statically linked executables, no relocation
information" setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .encoding import decode_instruction
from .isa import NInstruction

TEXT_BASE = 0x08048000
DATA_ALIGN = 0x1000
STACK_TOP = 0x0C000000
STACK_SIZE = 0x40000


@dataclass
class BinaryImage:
    """An executable N32 program."""

    text: bytes
    data: bytearray
    data_base: int
    entry: int
    text_base: int = TEXT_BASE
    symbols: Dict[str, int] = field(default_factory=dict)
    #: Trailing zero-initialized bytes (the runtime heap). Like ELF
    #: .bss, they occupy address space but no file space, so the size
    #: metrics of the evaluation exclude them.
    bss_bytes: int = 0

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.text)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)

    def total_size(self) -> int:
        """text + data address-space bytes (including bss)."""
        return len(self.text) + len(self.data)

    def file_size(self) -> int:
        """text + initialized data: the Figure 9(a) size metric.

        Zero-initialized heap space is .bss-like and free on disk.
        """
        return len(self.text) + len(self.data) - self.bss_bytes

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no symbol {name!r}") from None

    def in_text(self, addr: int) -> bool:
        return self.text_base <= addr < self.text_end

    def in_data(self, addr: int) -> bool:
        return self.data_base <= addr < self.data_end

    def read_data_word(self, addr: int) -> int:
        off = addr - self.data_base
        return int.from_bytes(self.data[off:off + 4], "little")

    def write_data_word(self, addr: int, value: int) -> None:
        off = addr - self.data_base
        self.data[off:off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def copy(self) -> "BinaryImage":
        return BinaryImage(
            bytes(self.text),
            bytearray(self.data),
            self.data_base,
            self.entry,
            self.text_base,
            dict(self.symbols),
            self.bss_bytes,
        )

    # -- disassembly helpers --------------------------------------------------

    def decode_at(self, addr: int) -> Tuple[NInstruction, int]:
        """Decode the instruction at an absolute text address."""
        return decode_instruction(self.text, addr - self.text_base, addr)

    def disassemble(self) -> List[Tuple[int, NInstruction]]:
        """Linear-sweep disassembly of the whole text section.

        N32 encodings are self-synchronizing from the section start
        (we never embed data in text), so the linear sweep is exact —
        the convenient part of the substrate that PLTO must work much
        harder for on real IA-32.
        """
        out: List[Tuple[int, NInstruction]] = []
        addr = self.text_base
        while addr < self.text_end:
            instr, length = self.decode_at(addr)
            out.append((addr, instr))
            addr += length
        return out


#: Gap left between text and data at initial layout. Real linkers
#: leave page slack; we leave more so that rewriting passes (watermark
#: embedding, attack transformations) can grow the text while keeping
#: the data section - and every absolute address stored in it - fixed.
TEXT_DATA_GAP = 0x20000


def default_data_base(text_len: int) -> int:
    """First page-aligned address comfortably above the text section."""
    end = TEXT_BASE + text_len + TEXT_DATA_GAP
    return (end + DATA_ALIGN - 1) // DATA_ALIGN * DATA_ALIGN
