"""Execution profiling for N32 binaries.

Models PLTO's instrumentation mode: "instrumented to obtain execution
profiles. The programs were profiled using the SPEC training inputs
and these profiles were used to identify any hot spots during our
transformations" (Section 5.2).

A :class:`Profile` records, per instruction address:

* the execution count (hot/cold classification for the embedder and
  the tamper-proofing candidate filter);
* the first-execution sequence number (so tamper-proofing can require
  a candidate branch to first execute *after* the watermark region,
  i.e. after the lockdown cells have been initialized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .image import BinaryImage
from .machine import Machine


@dataclass
class Profile:
    counts: Dict[int, int] = field(default_factory=dict)
    first_seen: Dict[int, int] = field(default_factory=dict)
    total_steps: int = 0
    output: List[int] = field(default_factory=list)

    def count(self, addr: int) -> int:
        return self.counts.get(addr, 0)

    def executed(self, addr: int) -> bool:
        return addr in self.counts

    def first_execution(self, addr: int) -> Optional[int]:
        return self.first_seen.get(addr)

    def hotness_threshold(self, fraction: float = 0.9) -> int:
        """Count level below which an address is considered cold.

        Addresses are ranked by count; the threshold is the count at
        the given quantile (default: anything below the top decile's
        level is cold).
        """
        if not self.counts:
            return 0
        ranked = sorted(self.counts.values())
        idx = min(len(ranked) - 1, int(len(ranked) * fraction))
        return ranked[idx]


def profile_image(
    image: BinaryImage,
    inputs: Sequence[int] = (),
    max_steps: Optional[int] = None,
) -> Profile:
    """Run the binary on training inputs, collecting the profile."""
    profile = Profile()
    counts = profile.counts
    first_seen = profile.first_seen
    seq = [0]

    def hook(machine: Machine, addr: int, instr) -> None:
        c = counts.get(addr, 0)
        counts[addr] = c + 1
        if c == 0:
            first_seen[addr] = seq[0]
        seq[0] += 1

    machine = Machine(image) if max_steps is None else Machine(image, max_steps)
    result = machine.run(inputs, hook)
    profile.total_steps = result.steps
    profile.output = result.output
    return profile
