"""N32 binary image file format.

A minimal executable container (think "statically linked ELF for the
simulator"): a JSON header with the section geometry, entry point and
symbol table, followed by hex-encoded text and initialized data. The
.bss-like heap travels as a length, not as bytes, so image files stay
small even with megabyte heaps.

Used by the CLI's native subcommands so watermarked binaries can be
shipped between the embedding and extraction sides.
"""

from __future__ import annotations

import base64
import json
import zlib
from typing import TextIO

from .image import BinaryImage

MAGIC = "n32-image"
FORMAT_VERSION = 2


class ImageFormatError(Exception):
    """The file is not a valid N32 image."""


def dump_image(image: BinaryImage, fp: TextIO) -> None:
    """Serialize an image to a file object.

    The data section is stored whole (embedders may append initialized
    tables *after* the zero heap, so "bss is a trailing suffix" does
    not hold) but compressed - megabytes of heap zeros cost nothing.
    """
    doc = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "text_base": image.text_base,
        "data_base": image.data_base,
        "entry": image.entry,
        "bss_bytes": image.bss_bytes,
        "symbols": dict(image.symbols),
        "text": bytes(image.text).hex(),
        "data_z": base64.b64encode(
            zlib.compress(bytes(image.data), 6)
        ).decode("ascii"),
    }
    json.dump(doc, fp)


def load_image(fp: TextIO) -> BinaryImage:
    """Load an image previously written by :func:`dump_image`."""
    try:
        doc = json.load(fp)
    except json.JSONDecodeError as exc:
        raise ImageFormatError(f"not an image file: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("magic") != MAGIC:
        raise ImageFormatError("missing n32-image magic")
    if doc.get("version") != FORMAT_VERSION:
        raise ImageFormatError(f"unsupported version {doc.get('version')!r}")
    try:
        data = bytearray(zlib.decompress(base64.b64decode(doc["data_z"])))
        return BinaryImage(
            text=bytes.fromhex(doc["text"]),
            data=data,
            data_base=int(doc["data_base"]),
            entry=int(doc["entry"]),
            text_base=int(doc["text_base"]),
            symbols={str(k): int(v) for k, v in doc["symbols"].items()},
            bss_bytes=int(doc["bss_bytes"]),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ImageFormatError(f"malformed image file: {exc}") from exc
