"""objdump-style listings of N32 binaries.

Used by the examples and handy when debugging embeddings: renders the
text section (with symbol anchors and branch-target annotations) and
the interesting part of the data section.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .image import BinaryImage
from .isa import Imm, RELATIVE_TRANSFERS


def _symbol_names(image: BinaryImage) -> Dict[int, List[str]]:
    by_addr: Dict[int, List[str]] = {}
    for name, addr in sorted(image.symbols.items()):
        by_addr.setdefault(addr, []).append(name)
    return by_addr


def format_listing(
    image: BinaryImage,
    start: Optional[int] = None,
    end: Optional[int] = None,
    max_instructions: int = 200,
) -> str:
    """Render ``[start, end)`` of the text section (defaults: all).

    Each line: address, raw bytes, mnemonic/operands, and a symbolic
    annotation for direct branch targets.
    """
    start = image.text_base if start is None else start
    end = image.text_end if end is None else end
    names = _symbol_names(image)
    lines: List[str] = []
    addr = image.text_base
    emitted = 0
    while addr < image.text_end and emitted < max_instructions:
        instr, length = image.decode_at(addr)
        if addr >= start:
            for name in names.get(addr, []):
                lines.append(f"{name}:")
            raw = image.text[addr - image.text_base:
                             addr - image.text_base + length].hex()
            note = ""
            if instr.mnemonic in RELATIVE_TRANSFERS and isinstance(
                instr.operands[0], Imm
            ):
                target = instr.operands[0].value
                labels = names.get(target)
                if labels:
                    note = f"   ; -> {labels[0]}"
            lines.append(f"  {addr:#010x}: {raw:<20s} {instr!r}{note}")
            emitted += 1
        addr += length
        if addr >= end:
            break
    if addr < end and emitted >= max_instructions:
        lines.append(f"  ... truncated at {max_instructions} instructions")
    return "\n".join(lines)


def format_data_words(
    image: BinaryImage, start: int, count: int
) -> str:
    """Render ``count`` 32-bit data words starting at address ``start``."""
    lines = []
    names = _symbol_names(image)
    for i in range(count):
        addr = start + 4 * i
        if not image.in_data(addr):
            lines.append(f"  {addr:#010x}: <outside data section>")
            break
        word = image.read_data_word(addr)
        name = names.get(addr)
        anchor = f"   ; {name[0]}" if name else ""
        lines.append(f"  {addr:#010x}: {word:#010x}{anchor}")
    return "\n".join(lines)
