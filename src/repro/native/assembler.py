"""N32 assembler: authored instructions / text assembly -> BinaryImage.

Two levels:

* :func:`build_image` — the programmatic core used by the wee native
  code generator and by the watermark rewriter: a list of text items
  (``("label", name)`` markers and :class:`NInstruction` objects whose
  operands may be symbolic) plus named data blocks, laid out into a
  concrete :class:`BinaryImage`. Layout is two-pass: addresses are
  fixed by the (constant) encoded lengths, then symbolic operands are
  resolved and everything is encoded.
* :func:`assemble_text` — a small Intel-flavoured textual syntax for
  tests and examples.

Symbolic operands in authored code:

* :class:`Label` where an immediate or branch target is expected
  (resolves to the symbol's absolute address);
* :class:`SymMem` where an absolute memory operand is expected
  (resolves to ``Mem(disp=address, index=...)``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .encoding import encode_instruction
from .image import BinaryImage, TEXT_BASE, default_data_base
from .isa import (
    INSTRUCTION_FORMS,
    Imm,
    Label,
    Mem,
    NInstruction,
    REG_INDEX,
    Reg,
)


class NasmError(Exception):
    """Assembly or layout failure."""


@dataclass(frozen=True)
class SymMem:
    """Authored absolute memory operand: ``[symbol]`` or ``[symbol + reg*4]``."""

    symbol: str
    index: Optional[str] = None
    offset: int = 0


TextItem = Union[Tuple[str, str], NInstruction]


@dataclass
class DataBlock:
    """A named run of initialized 32-bit words in the data section."""

    name: str
    words: List[int]


def build_image(
    text_items: Sequence[TextItem],
    data_blocks: Sequence[DataBlock] = (),
    entry: str = "main",
    extra_data_space: int = 0,
    text_base: int = TEXT_BASE,
) -> BinaryImage:
    """Lay out and encode a program.

    ``extra_data_space`` reserves additional zeroed bytes after the
    named blocks (the runtime heap).
    """
    # Pass 1: addresses.
    symbols: Dict[str, int] = {}
    addr = text_base
    for item in text_items:
        if isinstance(item, tuple):
            kind, name = item
            if kind != "label":
                raise NasmError(f"unknown text item {item!r}")
            if name in symbols:
                raise NasmError(f"duplicate label {name!r}")
            symbols[name] = addr
        else:
            addr += item.length
    text_len = addr - text_base

    data_base = default_data_base(text_len)
    offset = 0
    for block in data_blocks:
        if block.name in symbols:
            raise NasmError(f"duplicate symbol {block.name!r}")
        symbols[block.name] = data_base + offset
        offset += 4 * len(block.words)
    data = bytearray(offset + extra_data_space)
    offset = 0
    for block in data_blocks:
        for w in block.words:
            data[offset:offset + 4] = (w & 0xFFFFFFFF).to_bytes(4, "little")
            offset += 4

    if entry not in symbols:
        raise NasmError(f"entry symbol {entry!r} not defined")

    # Pass 2: resolve and encode.
    text = bytearray()
    addr = text_base
    for item in text_items:
        if isinstance(item, tuple):
            continue
        resolved = _resolve(item, symbols)
        text += encode_instruction(resolved, addr)
        addr += resolved.length

    return BinaryImage(
        bytes(text), data, data_base, symbols[entry], text_base, symbols,
        bss_bytes=extra_data_space,
    )


def _resolve(instr: NInstruction, symbols: Dict[str, int]) -> NInstruction:
    sig, _length = INSTRUCTION_FORMS[instr.mnemonic]
    ops = []
    for kind, op in zip(sig, instr.operands):
        if isinstance(op, Label):
            if op.name not in symbols:
                raise NasmError(f"undefined symbol {op.name!r}")
            target = symbols[op.name]
            if kind in ("rel", "i", "s8"):
                ops.append(Imm(target))
            elif kind in ("a", "m", "x"):
                ops.append(Mem(disp=target))
            else:
                raise NasmError(
                    f"label operand not allowed for {kind!r} in "
                    f"{instr.mnemonic}"
                )
        elif isinstance(op, SymMem):
            if op.symbol not in symbols:
                raise NasmError(f"undefined symbol {op.symbol!r}")
            ops.append(
                Mem(disp=symbols[op.symbol] + op.offset, index=op.index)
            )
        else:
            ops.append(op)
    return NInstruction(instr.mnemonic, tuple(ops))


# ---------------------------------------------------------------------------
# Textual assembly
# ---------------------------------------------------------------------------

_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z_][A-Za-z0-9_]*|-?\d+|0x[0-9a-fA-F]+)"
    r"(?:\s*([+-])\s*(\d+|0x[0-9a-fA-F]+|[a-z]{3}\s*\*\s*4))?\s*\]$"
)


def _parse_int(tok: str) -> int:
    return int(tok, 0)


def _parse_operand(tok: str):
    tok = tok.strip()
    if tok in REG_INDEX:
        return Reg(tok)
    if re.fullmatch(r"-?\d+|-?0x[0-9a-fA-F]+", tok):
        return Imm(_parse_int(tok))
    m = _MEM_RE.match(tok)
    if m:
        first, sign, second = m.group(1), m.group(2), m.group(3)
        if first in REG_INDEX:
            disp = 0
            if second is not None:
                disp = _parse_int(second)
                if sign == "-":
                    disp = -disp
            return Mem(base=first, disp=disp)
        if re.fullmatch(r"-?\d+|0x[0-9a-fA-F]+", first):
            return Mem(disp=_parse_int(first))
        # symbol, possibly with scaled index
        if second is not None and "*" in second:
            idx = second.split("*")[0].strip()
            return SymMem(first, index=idx)
        offset = 0
        if second is not None:
            offset = _parse_int(second)
            if sign == "-":
                offset = -offset
        return SymMem(first, offset=offset)
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.$]*", tok):
        return Label(tok)
    raise NasmError(f"cannot parse operand {tok!r}")


#: user mnemonic -> candidate internal forms, tried by operand shapes.
_FORM_CANDIDATES = {
    "mov": ["mov_rr", "mov_ri", "mov_rm", "mov_mr", "mov_ra", "mov_ar",
            "mov_mi", "mov_rx"],
    "add": ["add_rr", "add_ri", "add_mr", "add_rm"],
    "sub": ["sub_rr", "sub_ri", "sub_mr"],
    "and": ["and_rr", "and_ri"],
    "or": ["or_rr", "or_ri"],
    "xor": ["xor_rr", "xor_ri", "xor_mr", "xor_rm"],
    "cmp": ["cmp_rr", "cmp_ri", "cmp_rm", "cmp_mi"],
    "test": ["test_rr"],
    "imul": ["imul_rr", "imul_rri"],
    "shl": ["shl_ri", "shl_rr"],
    "shr": ["shr_ri", "shr_rr"],
    "sar": ["sar_ri", "sar_rr"],
    "xchg": ["xchg_rr", "xchg_rm"],
    "push": ["push", "pushi"],
    "jmp": ["jmp", "jmp_a", "jmp_r"],
    "call": ["call", "call_a"],
    "lea": ["lea"],
}


def _operand_matches(kind: str, op) -> bool:
    if kind == "r":
        return isinstance(op, Reg)
    if kind in ("i", "s8"):
        return isinstance(op, (Imm, Label))
    if kind == "rel":
        return isinstance(op, (Imm, Label))
    if kind == "m":
        return (isinstance(op, Mem) and op.base is not None) or \
            isinstance(op, SymMem) and op.index is None
    if kind == "a":
        return (isinstance(op, Mem) and op.base is None and op.index is None) \
            or (isinstance(op, SymMem) and op.index is None) \
            or isinstance(op, Label)
    if kind == "x":
        return (isinstance(op, Mem) and op.index is not None) or \
            (isinstance(op, SymMem) and op.index is not None)
    return False


def _pick_form(user_mnemonic: str, operands: list) -> str:
    # Shape-based candidates take precedence; exact internal names
    # (e.g. "mov_ra") remain available for forms without sugar.
    candidates = _FORM_CANDIDATES.get(user_mnemonic)
    if candidates is None:
        if user_mnemonic in INSTRUCTION_FORMS:
            return user_mnemonic
        candidates = []
    for form in candidates:
        sig, _ = INSTRUCTION_FORMS[form]
        if len(sig) == len(operands) and all(
            _operand_matches(k, o) for k, o in zip(sig, operands)
        ):
            return form
    raise NasmError(
        f"no encoding of {user_mnemonic!r} matches operands {operands!r}"
    )


def assemble_text(source: str, entry: str = "main") -> BinaryImage:
    """Assemble textual N32 assembly into a binary image."""
    text_items: List[TextItem] = []
    data_blocks: List[DataBlock] = []
    extra_space = 0
    for line_no, raw in enumerate(source.splitlines(), 1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith(".entry"):
                entry = line.split()[1]
            elif line.startswith(".word"):
                parts = line.split()
                data_blocks.append(
                    DataBlock(parts[1], [_parse_int(v) for v in parts[2:]])
                )
            elif line.startswith(".space"):
                parts = line.split()
                data_blocks.append(
                    DataBlock(parts[1], [0] * _parse_int(parts[2]))
                )
            elif line.startswith(".heap"):
                extra_space = _parse_int(line.split()[1])
            elif line.endswith(":"):
                text_items.append(("label", line[:-1].strip()))
            else:
                parts = line.split(None, 1)
                mnemonic = parts[0]
                operands = []
                if len(parts) > 1:
                    operands = [
                        _parse_operand(tok)
                        for tok in _split_operands(parts[1])
                    ]
                form = _pick_form(mnemonic, operands)
                text_items.append(NInstruction(form, tuple(operands)))
        except NasmError as exc:
            raise NasmError(f"line {line_no}: {exc}") from None
    return build_image(text_items, data_blocks, entry,
                       extra_data_space=extra_space)


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside brackets."""
    out, depth, cur = [], 0, ""
    for c in text:
        if c == "[":
            depth += 1
        elif c == "]":
            depth -= 1
        if c == "," and depth == 0:
            out.append(cur)
            cur = ""
        else:
            cur += c
    if cur.strip():
        out.append(cur)
    return out
