"""N32 — the native-code substrate (IA-32 analog).

Public surface:

* :mod:`repro.native.isa` — instructions and operands;
* :func:`assemble_text` / :func:`build_image` — assembly to binaries;
* :class:`Machine` / :func:`run_image` — simulation with single-step
  hooks and a hardware fault model;
* :func:`lift` / :func:`lower` / :func:`patch_bytes` — PLTO-style
  rewriting;
* :func:`profile_image` — training-input profiles.
"""

from .assembler import DataBlock, NasmError, SymMem, assemble_text, build_image
from .encoding import EncodingError, decode_instruction, encode_instruction
from .image import (
    BinaryImage,
    STACK_TOP,
    TEXT_BASE,
    default_data_base,
)
from .isa import (
    CONDITIONAL_JUMPS,
    Imm,
    JCC_INVERSES,
    Label,
    Mem,
    NInstruction,
    REGISTERS,
    Reg,
    ni,
    signed32,
    wrap32,
)
from .machine import (
    DEFAULT_MAX_STEPS,
    EXIT_ADDRESS,
    Machine,
    MachineFault,
    NRunResult,
    run_image,
)
from .cfg import NativeCFG, build_native_cfg
from .listing import format_data_words, format_listing
from .profiler import Profile, profile_image
from .rewriter import (
    LiftedProgram,
    RewriteError,
    lift,
    lower,
    patch_bytes,
)

__all__ = [
    "BinaryImage",
    "CONDITIONAL_JUMPS",
    "DEFAULT_MAX_STEPS",
    "DataBlock",
    "EXIT_ADDRESS",
    "EncodingError",
    "Imm",
    "JCC_INVERSES",
    "Label",
    "LiftedProgram",
    "Machine",
    "MachineFault",
    "Mem",
    "NInstruction",
    "NRunResult",
    "NasmError",
    "NativeCFG",
    "Profile",
    "REGISTERS",
    "Reg",
    "RewriteError",
    "STACK_TOP",
    "SymMem",
    "TEXT_BASE",
    "assemble_text",
    "build_image",
    "build_native_cfg",
    "decode_instruction",
    "default_data_base",
    "encode_instruction",
    "format_data_words",
    "format_listing",
    "lift",
    "lower",
    "ni",
    "patch_bytes",
    "profile_image",
    "run_image",
    "signed32",
    "wrap32",
]
