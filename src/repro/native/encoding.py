"""N32 binary encoding: instructions <-> bytes.

The encoder and decoder are exact inverses over the instruction forms
of :mod:`repro.native.isa`. Addresses matter: relative transfers
(jmp/call/jcc) are encoded as rel32 offsets from the *end* of the
instruction, IA-32 style, so the decoder needs the instruction's own
address to reconstruct the absolute target, and the encoder needs it
to emit the offset. Absolute operands (indirect jumps, table lookups,
global loads) encode 32-bit absolute addresses — the distinction the
whole tamper-proofing story rests on.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from .isa import (
    INSTRUCTION_FORMS,
    Imm,
    Mem,
    NInstruction,
    REGISTERS,
    Reg,
    wrap32,
)


class EncodingError(Exception):
    """Malformed instruction or undecodable bytes."""


# Opcode space layout. Register-in-opcode families occupy 8 consecutive
# byte values; everything else gets one byte from the sequential pool.
_REG_FAMILIES = {
    "push": 0x10,
    "pop": 0x18,
    "mov_ri": 0x20,
}
_POOL_START = 0x30
_POOL_MNEMONICS = [
    m for m in INSTRUCTION_FORMS
    if m not in _REG_FAMILIES
]
OPCODE_OF: Dict[str, int] = dict(_REG_FAMILIES)
OPCODE_OF.update(
    {m: _POOL_START + i for i, m in enumerate(_POOL_MNEMONICS)}
)
_MNEMONIC_AT: Dict[int, str] = {}
for _m, _op in OPCODE_OF.items():
    if _m in _REG_FAMILIES:
        for _r in range(8):
            _MNEMONIC_AT[_op + _r] = _m
    else:
        _MNEMONIC_AT[_op] = _m


def _enc32(value: int) -> bytes:
    return struct.pack("<I", wrap32(value))


def _dec32(data: bytes, offset: int) -> int:
    return struct.unpack_from("<I", data, offset)[0]


def _dec32s(data: bytes, offset: int) -> int:
    return struct.unpack_from("<i", data, offset)[0]


def encode_instruction(instr: NInstruction, address: int) -> bytes:
    """Encode one instruction placed at ``address``."""
    m = instr.mnemonic
    sig, length = INSTRUCTION_FORMS[m]
    ops = instr.operands
    if len(ops) != len(sig):
        raise EncodingError(f"{m}: expected {len(sig)} operands, got {len(ops)}")
    out = bytearray()

    if m in _REG_FAMILIES:
        reg = ops[0]
        if not isinstance(reg, Reg):
            raise EncodingError(f"{m}: first operand must be a register")
        out.append(OPCODE_OF[m] + reg.code)
        if m == "mov_ri":
            imm = ops[1]
            if not isinstance(imm, Imm):
                raise EncodingError("mov_ri: second operand must be Imm")
            out += _enc32(imm.value)
        result = bytes(out)
        if len(result) != length:
            raise EncodingError(f"{m}: encoded {len(result)} != {length}")
        return result

    out.append(OPCODE_OF[m])

    if m in ("jmp", "call", "je", "jne", "jl", "jle", "jg", "jge"):
        target = ops[0]
        if not isinstance(target, Imm):
            raise EncodingError(f"{m}: unresolved target {target!r}")
        if length == 6:
            out.append(0)  # pad byte (two-byte jcc opcode in IA-32)
        rel = wrap32(target.value - (address + length))
        out += _enc32(rel)
    elif m in ("jmp_a", "call_a"):
        cell = ops[0]
        if not isinstance(cell, Mem) or cell.base or cell.index:
            raise EncodingError(f"{m}: operand must be an absolute cell")
        out.append(0)
        out += _enc32(cell.disp)
    elif m == "jmp_r":
        out.append(ops[0].code)
    elif m == "pushi":
        out += _enc32(ops[0].value)
    elif m == "mov_rx":
        r, mem = ops
        if not isinstance(mem, Mem) or mem.index is None or mem.base:
            raise EncodingError("mov_rx: operand must be [abs + idx*4]")
        out.append((r.code << 4) | Reg(mem.index).code)
        out += _enc32(mem.disp)
        out.append(0)  # pad to the declared 7-byte length
    elif sig == ("r", "m") or sig == ("m", "r"):
        mem = ops[1] if sig == ("r", "m") else ops[0]
        reg = ops[0] if sig == ("r", "m") else ops[1]
        if not isinstance(mem, Mem) or mem.index is not None:
            raise EncodingError(f"{m}: operand must be [base+disp]")
        base_code = Reg(mem.base).code if mem.base else 0x8
        out.append((reg.code << 4) | base_code)
        out += _enc32(mem.disp)
    elif sig == ("r", "a") or sig == ("a", "r"):
        mem = ops[1] if sig == ("r", "a") else ops[0]
        reg = ops[0] if sig == ("r", "a") else ops[1]
        if not isinstance(mem, Mem) or mem.base or mem.index:
            raise EncodingError(f"{m}: operand must be absolute [addr]")
        out.append(reg.code)
        out += _enc32(mem.disp)
    elif sig == ("m", "i"):
        mem, imm = ops
        base_code = Reg(mem.base).code if mem.base else 0x8
        out.append(base_code)
        out += _enc32(mem.disp)
        out += _enc32(imm.value)
    elif sig == ("r", "i"):
        out.append(ops[0].code)
        out += _enc32(ops[1].value)
    elif sig == ("r", "s8"):
        out.append(ops[0].code)
        out.append(ops[1].value & 0xFF)
    elif sig == ("r", "r", "i"):
        out.append((ops[0].code << 4) | ops[1].code)
        out += _enc32(ops[2].value)
    elif sig == ("r", "r"):
        out.append((ops[0].code << 4) | ops[1].code)
        if length == 3:
            out.append(0)  # imul_rr pads to IA-32's 3 bytes
    elif sig == ("r",):
        out.append(ops[0].code)
    elif sig == ():
        if length == 2:
            out.append(0)  # sys_* pad (int 0x80 style two-byte form)
    else:  # pragma: no cover - forms table is closed
        raise EncodingError(f"unhandled signature {sig} for {m}")

    result = bytes(out)
    if len(result) != length:
        raise EncodingError(
            f"{m}: encoded {len(result)} bytes, expected {length}"
        )
    return result


def decode_instruction(data: bytes, offset: int, address: int
                       ) -> Tuple[NInstruction, int]:
    """Decode one instruction at ``data[offset:]`` located at ``address``.

    Returns (instruction, length). Relative targets come back as
    :class:`Imm` absolute addresses.
    """
    if offset >= len(data):
        raise EncodingError("decode past end of text")
    opcode = data[offset]
    m = _MNEMONIC_AT.get(opcode)
    if m is None:
        raise EncodingError(f"bad opcode {opcode:#x} at {address:#x}")
    sig, length = INSTRUCTION_FORMS[m]
    if offset + length > len(data):
        raise EncodingError(f"truncated {m} at {address:#x}")
    body = data[offset:offset + length]

    def reg(code):
        return Reg(REGISTERS[code & 7])

    if m in _REG_FAMILIES:
        r = reg(opcode - OPCODE_OF[m])
        if m == "mov_ri":
            return NInstruction(m, (r, Imm(_dec32(body, 1)))), length
        return NInstruction(m, (r,)), length

    if m in ("jmp", "call", "je", "jne", "jl", "jle", "jg", "jge"):
        rel_off = 2 if length == 6 else 1
        rel = _dec32s(body, rel_off)
        return NInstruction(m, (Imm(wrap32(address + length + rel)),)), length
    if m in ("jmp_a", "call_a"):
        return NInstruction(m, (Mem(disp=_dec32(body, 2)),)), length
    if m == "jmp_r":
        return NInstruction(m, (reg(body[1]),)), length
    if m == "pushi":
        return NInstruction(m, (Imm(_dec32(body, 1)),)), length
    if m == "mov_rx":
        r = reg(body[1] >> 4)
        idx = REGISTERS[body[1] & 7]
        return NInstruction(m, (r, Mem(disp=_dec32(body, 2), index=idx))), length

    if sig == ("r", "m") or sig == ("m", "r"):
        r = reg(body[1] >> 4)
        base_code = body[1] & 0xF
        base = None if base_code == 0x8 else REGISTERS[base_code & 7]
        # Base-relative displacements are signed (frame offsets);
        # absolute displacements are plain addresses.
        disp = _dec32s(body, 2) if base is not None else _dec32(body, 2)
        mem = Mem(base=base, disp=disp)
        ops = (r, mem) if sig == ("r", "m") else (mem, r)
        return NInstruction(m, ops), length
    if sig == ("r", "a") or sig == ("a", "r"):
        r = reg(body[1])
        mem = Mem(disp=_dec32(body, 2))
        ops = (r, mem) if sig == ("r", "a") else (mem, r)
        return NInstruction(m, ops), length
    if sig == ("m", "i"):
        base_code = body[1]
        base = None if base_code == 0x8 else REGISTERS[base_code & 7]
        disp = _dec32s(body, 2) if base is not None else _dec32(body, 2)
        mem = Mem(base=base, disp=disp)
        return NInstruction(m, (mem, Imm(_dec32(body, 6)))), length
    if sig == ("r", "i"):
        return NInstruction(m, (reg(body[1]), Imm(_dec32(body, 2)))), length
    if sig == ("r", "s8"):
        return NInstruction(m, (reg(body[1]), Imm(body[2]))), length
    if sig == ("r", "r", "i"):
        return NInstruction(
            m, (reg(body[1] >> 4), reg(body[1]), Imm(_dec32(body, 2)))
        ), length
    if sig == ("r", "r"):
        return NInstruction(m, (reg(body[1] >> 4), reg(body[1]))), length
    if sig == ("r",):
        return NInstruction(m, (reg(body[1]),)), length
    if sig == ():
        return NInstruction(m, ()), length
    raise EncodingError(f"unhandled decode for {m}")  # pragma: no cover
