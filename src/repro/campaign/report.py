"""Campaign artifacts: per-cell outcomes, serialized like BatchReport.

A campaign's unit of evidence is the **cell** — one
(workload, bits, attack, intensity) point of the sweep matrix, judged
over every fingerprinted copy minted for that workload. Cells separate
what they record into two strata:

* **outcomes** — recovery counts, program-survival counts, stealth
  deltas, and the seeds needed to replay the cell. These are pure
  functions of the campaign seed: two runs of the same campaign
  produce byte-identical outcome documents (the replayability
  contract, pinned by ``tests/test_campaign.py`` and CI).
* **measurements** — wall-clock times. Real but nondeterministic, so
  they ride in separate fields that the outcome view excludes.

:class:`CampaignReport` serializes exactly like
:class:`~repro.pipeline.metrics.BatchReport` (``to_dict``/``from_dict``,
``to_json``/``from_json``, ``write``/``read``) and additionally
supports **additive merge**: two reports over disjoint slices of a
matrix combine cell-by-cell, associatively, so sharded campaigns can
be folded into one artifact in any grouping.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "WorkloadRecord",
]


@dataclass
class WorkloadRecord:
    """One generated workload's identity and oracle verdict."""

    name: str
    seed: int
    inputs: List[int] = field(default_factory=list)
    functions: int = 0
    loops: int = 0
    branches: int = 0
    oracle_ok: bool = False
    oracle_steps: int = 0
    oracle_branch_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "inputs": list(self.inputs),
            "functions": self.functions,
            "loops": self.loops,
            "branches": self.branches,
            "oracle_ok": self.oracle_ok,
            "oracle_steps": self.oracle_steps,
            "oracle_branch_events": self.oracle_branch_events,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "WorkloadRecord":
        return WorkloadRecord(
            name=doc["name"],
            seed=doc["seed"],
            inputs=list(doc.get("inputs", [])),
            functions=doc.get("functions", 0),
            loops=doc.get("loops", 0),
            branches=doc.get("branches", 0),
            oracle_ok=doc.get("oracle_ok", False),
            oracle_steps=doc.get("oracle_steps", 0),
            oracle_branch_events=doc.get("oracle_branch_events", 0),
        )


@dataclass
class CampaignCell:
    """One (workload, bits, attack, intensity) point of the matrix."""

    workload: str
    workload_seed: int
    bits: int
    attack: str
    intensity: float
    intensity_index: int
    cell_seed: int
    substrate: str = "bytecode"
    #: Redundancy codec the cell's copies were embedded (and their
    #: marks recognized) with — one axis of the sweep matrix.
    codec: str = "gcrt"
    copies: int = 0
    #: Copies whose mark survived the attack (complete + correct value).
    recovered: int = 0
    #: Copies that still behave like the original after the attack.
    program_ok: int = 0
    #: Copies where the attack (or recognition) raised — the error
    #: strings for the first few live in ``errors``.
    errored: int = 0
    #: Mean fractional increase in the program's branch count (the
    #: fig8c stealth axis), over the attacked copies.
    branch_delta: float = 0.0
    #: Mean emitted-size increase in bytes over the attacked copies.
    size_delta_bytes: float = 0.0
    #: Replay data: the exact (watermark, embed-seed) pairs attacked.
    copy_watermarks: List[int] = field(default_factory=list)
    copy_seeds: List[int] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    #: Wall time (attack + recognize, all copies). Excluded from the
    #: outcome view: real, but not reproducible.
    wall_seconds: float = 0.0

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.copies if self.copies else 0.0

    @property
    def attack_succeeded(self) -> bool:
        """The adversary's win condition, lifted from AttackOutcome:
        the program still works but at least one mark is gone."""
        return self.program_ok > 0 and self.recovered < self.copies

    def key(self) -> tuple:
        """Stable identity of the cell inside a campaign matrix."""
        return (self.workload, self.bits, self.substrate, self.codec,
                self.attack, self.intensity_index)

    def outcome_dict(self) -> Dict[str, Any]:
        """The deterministic slice: everything except measurements.

        Two runs of the same campaign seed must produce byte-identical
        JSON for this document — it is what the CI artifact diff and
        the replayability regression test compare.
        """
        return {
            "workload": self.workload,
            "workload_seed": self.workload_seed,
            "bits": self.bits,
            "attack": self.attack,
            "intensity": self.intensity,
            "intensity_index": self.intensity_index,
            "cell_seed": self.cell_seed,
            "substrate": self.substrate,
            "codec": self.codec,
            "copies": self.copies,
            "recovered": self.recovered,
            "program_ok": self.program_ok,
            "errored": self.errored,
            "branch_delta": self.branch_delta,
            "size_delta_bytes": self.size_delta_bytes,
            "copy_watermarks": list(self.copy_watermarks),
            "copy_seeds": list(self.copy_seeds),
            "errors": list(self.errors),
        }

    def to_dict(self) -> Dict[str, Any]:
        doc = self.outcome_dict()
        doc["wall_seconds"] = self.wall_seconds
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "CampaignCell":
        return CampaignCell(
            workload=doc["workload"],
            workload_seed=doc.get("workload_seed", 0),
            bits=doc["bits"],
            attack=doc["attack"],
            intensity=doc.get("intensity", 0.0),
            intensity_index=doc.get("intensity_index", 0),
            cell_seed=doc.get("cell_seed", 0),
            substrate=doc.get("substrate", "bytecode"),
            codec=doc.get("codec", "gcrt"),
            copies=doc.get("copies", 0),
            recovered=doc.get("recovered", 0),
            program_ok=doc.get("program_ok", 0),
            errored=doc.get("errored", 0),
            branch_delta=doc.get("branch_delta", 0.0),
            size_delta_bytes=doc.get("size_delta_bytes", 0.0),
            copy_watermarks=list(doc.get("copy_watermarks", [])),
            copy_seeds=list(doc.get("copy_seeds", [])),
            errors=list(doc.get("errors", [])),
            wall_seconds=doc.get("wall_seconds", 0.0),
        )


@dataclass
class CampaignReport:
    """Everything one campaign run measured, cell by cell."""

    seed: int
    attacks: List[str] = field(default_factory=list)
    bits: List[int] = field(default_factory=list)
    codecs: List[str] = field(default_factory=lambda: ["gcrt"])
    copies_per_cell: int = 0
    workloads: List[WorkloadRecord] = field(default_factory=list)
    cells: List[CampaignCell] = field(default_factory=list)
    #: Per-(workload, bits) embed batch summaries: the run_batch side.
    embeds: List[Dict[str, Any]] = field(default_factory=list)
    #: Cells restored from a checkpoint journal instead of re-run.
    resumed_cells: int = 0
    wall_seconds: float = 0.0

    # -- aggregates --------------------------------------------------------

    @property
    def total_copies_attacked(self) -> int:
        return sum(c.copies for c in self.cells)

    @property
    def total_recovered(self) -> int:
        return sum(c.recovered for c in self.cells)

    @property
    def recovery_rate(self) -> float:
        total = self.total_copies_attacked
        return self.total_recovered / total if total else 0.0

    def by_attack(self) -> Dict[str, float]:
        """Recovery rate per attack name, over every cell."""
        totals: Dict[str, List[int]] = {}
        for cell in self.cells:
            bucket = totals.setdefault(cell.attack, [0, 0])
            bucket[0] += cell.recovered
            bucket[1] += cell.copies
        return {
            name: (rec / cop if cop else 0.0)
            for name, (rec, cop) in sorted(totals.items())
        }

    def by_codec(self) -> Dict[str, float]:
        """Recovery rate per codec spec — the resilience comparison a
        multi-codec campaign exists to make."""
        totals: Dict[str, List[int]] = {}
        for cell in self.cells:
            bucket = totals.setdefault(cell.codec, [0, 0])
            bucket[0] += cell.recovered
            bucket[1] += cell.copies
        return {
            name: (rec / cop if cop else 0.0)
            for name, (rec, cop) in sorted(totals.items())
        }

    # -- determinism contract ---------------------------------------------

    def outcomes(self) -> List[Dict[str, Any]]:
        """Every cell's deterministic outcome, in stable matrix order."""
        return [c.outcome_dict() for c in
                sorted(self.cells, key=CampaignCell.key)]

    def outcomes_json(self) -> str:
        """Canonical JSON of the outcome view — byte-identical across
        reruns of the same campaign seed."""
        return json.dumps(
            {"seed": self.seed, "cells": self.outcomes()},
            sort_keys=True, indent=2,
        ) + "\n"

    def outcomes_digest(self) -> str:
        """SHA-256 of :meth:`outcomes_json` — one line to compare runs."""
        return hashlib.sha256(self.outcomes_json().encode()).hexdigest()

    # -- merge -------------------------------------------------------------

    def merge(self, other: "CampaignReport") -> "CampaignReport":
        """Additive, associative fold of two campaign slices.

        Cells with the same :meth:`CampaignCell.key` have their counts
        summed (two shards that each attacked some of a cell's
        copies); distinct cells concatenate. Workload and embed
        records deduplicate by identity. Neither operand is mutated.
        """
        merged: Dict[tuple, CampaignCell] = {}
        for cell in list(self.cells) + list(other.cells):
            key = cell.key()
            if key not in merged:
                merged[key] = CampaignCell.from_dict(cell.to_dict())
                continue
            into = merged[key]
            into.copies += cell.copies
            into.recovered += cell.recovered
            into.program_ok += cell.program_ok
            into.errored += cell.errored
            total = into.copies or 1
            into.branch_delta = (
                into.branch_delta * (total - cell.copies)
                + cell.branch_delta * cell.copies
            ) / total
            into.size_delta_bytes = (
                into.size_delta_bytes * (total - cell.copies)
                + cell.size_delta_bytes * cell.copies
            ) / total
            into.copy_watermarks = into.copy_watermarks + cell.copy_watermarks
            into.copy_seeds = into.copy_seeds + cell.copy_seeds
            into.errors = (into.errors + cell.errors)[:8]
            into.wall_seconds += cell.wall_seconds
        seen = set()
        workloads = []
        for record in list(self.workloads) + list(other.workloads):
            if record.name not in seen:
                seen.add(record.name)
                workloads.append(WorkloadRecord.from_dict(record.to_dict()))
        embed_seen = set()
        embeds = []
        for doc in list(self.embeds) + list(other.embeds):
            identity = (doc.get("workload"), doc.get("bits"))
            if identity not in embed_seen:
                embed_seen.add(identity)
                embeds.append(dict(doc))
        return CampaignReport(
            seed=self.seed,
            attacks=sorted(set(self.attacks) | set(other.attacks)),
            bits=sorted(set(self.bits) | set(other.bits)),
            codecs=sorted(set(self.codecs) | set(other.codecs)),
            copies_per_cell=max(self.copies_per_cell, other.copies_per_cell),
            workloads=workloads,
            cells=sorted(merged.values(), key=CampaignCell.key),
            embeds=embeds,
            resumed_cells=self.resumed_cells + other.resumed_cells,
            wall_seconds=self.wall_seconds + other.wall_seconds,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "attacks": list(self.attacks),
            "bits": list(self.bits),
            "codecs": list(self.codecs),
            "copies_per_cell": self.copies_per_cell,
            "cell_count": len(self.cells),
            "total_copies_attacked": self.total_copies_attacked,
            "total_recovered": self.total_recovered,
            "recovery_rate": self.recovery_rate,
            "by_attack": self.by_attack(),
            "by_codec": self.by_codec(),
            "resumed_cells": self.resumed_cells,
            "wall_seconds": self.wall_seconds,
            "workloads": [w.to_dict() for w in self.workloads],
            "embeds": [dict(e) for e in self.embeds],
            "cells": [c.to_dict() for c in self.cells],
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "CampaignReport":
        return CampaignReport(
            seed=doc["seed"],
            attacks=list(doc.get("attacks", [])),
            bits=list(doc.get("bits", [])),
            codecs=list(doc.get("codecs", ["gcrt"])),
            copies_per_cell=doc.get("copies_per_cell", 0),
            workloads=[
                WorkloadRecord.from_dict(w) for w in doc.get("workloads", [])
            ],
            cells=[CampaignCell.from_dict(c) for c in doc.get("cells", [])],
            embeds=[dict(e) for e in doc.get("embeds", [])],
            resumed_cells=doc.get("resumed_cells", 0),
            wall_seconds=doc.get("wall_seconds", 0.0),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "CampaignReport":
        return CampaignReport.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    @staticmethod
    def read(path: str) -> "CampaignReport":
        with open(path) as fp:
            return CampaignReport.from_json(fp.read())

    # -- presentation ------------------------------------------------------

    def summary(self) -> str:
        """A short human-readable account for CLI stderr."""
        lines = [
            f"campaign seed {self.seed}: {len(self.workloads)} workload(s) "
            f"x {len(self.attacks)} attack(s) x bits={self.bits} "
            f"x codecs={self.codecs} "
            f"-> {len(self.cells)} cells, {self.wall_seconds:.2f}s",
            f"recovery: {self.total_recovered}/{self.total_copies_attacked} "
            f"copies ({self.recovery_rate:.1%}) across the matrix",
        ]
        for attack, rate in self.by_attack().items():
            lines.append(f"  {attack:<28} {rate:7.1%}")
        if len(self.codecs) > 1:
            lines.append("recovery by codec:")
            for codec, rate in self.by_codec().items():
                lines.append(f"  {codec:<28} {rate:7.1%}")
        broken = [c for c in self.cells if c.errored]
        if broken:
            lines.append(f"errored cells: {len(broken)} "
                         f"(first: {broken[0].errors[:1]})")
        if self.resumed_cells:
            lines.append(
                f"resumed: {self.resumed_cells} cells from checkpoint"
            )
        lines.append(f"outcomes digest: {self.outcomes_digest()}")
        return "\n".join(lines)
