"""Seeded attack schedules for campaign sweeps.

A campaign cell applies one **scheduled attack** — a semantics-
preserving transformation from :mod:`repro.attacks.bytecode` plus an
*intensity schedule* mapping the sweep's abstract intensity axis
(``0 < intensity <= 1``) onto that attack's natural knob (a count of
insertions, a probability, a number of peeled loops). Scheduling
lives here, in one table, so every consumer — runner, CLI, tests,
docs — sweeps the same axes.

Determinism: every random choice an attack makes flows from a
``random.Random`` handed in by the caller, and the campaign derives
that RNG's seed from the cell coordinates alone (:func:`cell_seed`).
No module-level RNG state exists to leak between cells, so cells are
order-independent and individually replayable.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..attacks.bytecode import (
    chain_branches,
    insert_branches,
    insert_noops,
    invert_branch_senses,
    peel_loops,
    renumber_locals,
    reorder_blocks,
    split_blocks,
    unfold_constants,
)
from ..vm.program import Module

__all__ = [
    "AttackSchedule",
    "DEFAULT_ATTACKS",
    "campaign_attacks",
    "cell_seed",
    "copy_rng",
]

#: An attack as the campaign sees it: (module, intensity, rng) -> module.
ApplyFn = Callable[[Module, float, random.Random], Module]


@dataclass(frozen=True)
class AttackSchedule:
    """One attack family with its intensity ladder."""

    name: str
    apply: ApplyFn
    #: The intensities a default sweep visits, weakest first.
    levels: Tuple[float, ...]
    description: str = ""


def _scaled(count_at_full: int) -> Callable[[float], int]:
    """Map intensity in (0, 1] to a count, never below one."""

    def scale(intensity: float) -> int:
        return max(1, round(count_at_full * intensity))

    return scale


_NOOPS = _scaled(160)
_BRANCHES = _scaled(24)
_SPLITS = _scaled(40)
_CHAINS = _scaled(30)
_UNFOLDS = _scaled(48)
_PEELS = _scaled(4)

_THREE_STEP = (0.25, 0.5, 1.0)
_SINGLE = (1.0,)


def _combined_layout(module: Module, intensity: float,
                     rng: random.Random) -> Module:
    """The kitchen-sink adversary: layout attacks stacked in one pass."""
    module = insert_noops(module, _NOOPS(intensity) // 2, rng)
    module = split_blocks(module, _SPLITS(intensity) // 2, rng)
    module = reorder_blocks(module, rng)
    module = renumber_locals(module, rng)
    return module


_SCHEDULES: Tuple[AttackSchedule, ...] = (
    AttackSchedule(
        "noop-insertion",
        lambda m, x, r: insert_noops(m, _NOOPS(x), r),
        _THREE_STEP,
        "random nop padding (layout noise; should never dislodge marks)",
    ),
    AttackSchedule(
        "branch-insertion",
        lambda m, x, r: insert_branches(m, _BRANCHES(x), r),
        _THREE_STEP,
        "opaque executed branches — the Fig. 8(c) resilience axis",
    ),
    AttackSchedule(
        "sense-inversion",
        lambda m, x, r: invert_branch_senses(m, x, r),
        _THREE_STEP,
        "invert each conditional with probability = intensity",
    ),
    AttackSchedule(
        "block-splitting",
        lambda m, x, r: split_blocks(m, _SPLITS(x), r),
        _THREE_STEP,
        "cut straight-line runs with goto bridges",
    ),
    AttackSchedule(
        "block-reordering",
        lambda m, x, r: reorder_blocks(m, r),
        _SINGLE,
        "shuffle every function's basic blocks",
    ),
    AttackSchedule(
        "branch-chaining",
        lambda m, x, r: chain_branches(m, _CHAINS(x), r),
        _THREE_STEP,
        "reroute branches through goto trampolines",
    ),
    AttackSchedule(
        "constant-unfolding",
        lambda m, x, r: unfold_constants(m, _UNFOLDS(x), r),
        _THREE_STEP,
        "rewrite consts as additions (data obfuscation)",
    ),
    AttackSchedule(
        "loop-peeling",
        lambda m, x, r: peel_loops(m, _PEELS(x), r),
        _THREE_STEP,
        "peel loop iterations (duplicates marked bodies)",
    ),
    AttackSchedule(
        "locals-renumbering",
        lambda m, x, r: renumber_locals(m, r),
        _SINGLE,
        "permute frame slots",
    ),
    AttackSchedule(
        "combined-layout",
        _combined_layout,
        (0.5, 1.0),
        "noops + splits + reorder + renumber stacked in one pass",
    ),
)

_BY_NAME: Dict[str, AttackSchedule] = {s.name: s for s in _SCHEDULES}

#: The default sweep: one cheap layout attack, the paper's headline
#: distortive axis, and the stacked adversary.
DEFAULT_ATTACKS: Tuple[str, ...] = (
    "noop-insertion",
    "branch-insertion",
    "sense-inversion",
    "combined-layout",
)


def campaign_attacks(
    names: Optional[Iterable[str]] = None,
) -> List[AttackSchedule]:
    """Resolve attack names (default: every registered family).

    Raises ``KeyError`` naming the unknown attack and the available
    set, so CLI typos fail with a usable message.
    """
    if names is None:
        return list(_SCHEDULES)
    out = []
    for name in names:
        if name not in _BY_NAME:
            raise KeyError(
                f"unknown attack {name!r}; available: "
                f"{', '.join(sorted(_BY_NAME))}"
            )
        out.append(_BY_NAME[name])
    return out


def cell_seed(
    campaign_seed: int,
    workload: str,
    bits: int,
    attack: str,
    intensity_index: int,
    substrate: str = "bytecode",
) -> int:
    """The cell's RNG seed, a pure function of its matrix coordinates.

    crc32 over the coordinate string folds each coordinate in, so
    neighbouring cells (same workload, adjacent intensity) get
    unrelated streams and sweep order cannot matter.
    """
    tag = f"{workload}/{bits}/{substrate}/{attack}/{intensity_index}"
    return (campaign_seed ^ zlib.crc32(tag.encode())) & 0xFFFFFFFF


def copy_rng(seed: int, copy_id: str) -> random.Random:
    """A per-copy RNG inside a cell, independent of copy order."""
    return random.Random(seed ^ zlib.crc32(copy_id.encode()))
