"""The campaign runner: workloads x attacks x widths, resumably.

A campaign is three nested sweeps over deterministic coordinates:

1. **Generate** — :func:`~.generator.generate_corpus` emits the
   workload set, each program oracle-validated against the reference
   interpreter before it is allowed into the matrix.
2. **Mint** — for every (workload, bits) pair the runner prepares the
   program once (:func:`repro.pipeline.prepare.prepare`) and mints its
   fingerprinted copies through :func:`repro.pipeline.batch.run_batch`,
   inheriting that pipeline's workers/retry/checkpoint machinery.
   Copy watermarks and embed salts derive from the campaign seed, so
   the fleet of marked modules is a pure function of the seed.
3. **Attack** — every (attack, intensity) cell re-derives the minted
   modules (embedding is deterministic in ``(watermark, seed)``, so no
   module needs to survive the batch boundary), attacks each with a
   per-copy RNG derived from the cell coordinates, and judges
   recovery, semantics and stealth per copy.

Resumability: with a ``checkpoint_dir``, each (workload, bits) batch
journals through ``run_batch``'s own checkpoint file and every
finished cell appends to ``cells.jsonl``; a rerun with ``resume=True``
replays finished cells from the journal instead of re-attacking.
Because cell outcomes are deterministic, a resumed campaign's report
is identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..attacks.bytecode import branch_increase_fraction
from ..bytecode_wm import WatermarkKey, embed, recognize
from ..codec import resolve_codec
from ..faults.retry import RetryPolicy
from ..pipeline.batch import CopySpec, run_batch
from ..pipeline.prepare import PreparedProgram, prepare, resolve_piece_count
from ..vm import VMError, run_module
from ..vm.program import Module
from .attacks import (
    AttackSchedule,
    DEFAULT_ATTACKS,
    campaign_attacks,
    cell_seed,
    copy_rng,
)
from .generator import (
    GeneratedProgram,
    GeneratorConfig,
    differential_check,
    generate_corpus,
)
from .report import CampaignCell, CampaignReport, WorkloadRecord

__all__ = ["CampaignConfig", "run_campaign"]

_MAX_CELL_ERRORS = 8


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's outcome.

    Two configs with equal deterministic fields produce byte-identical
    outcome documents; ``workers``/``checkpoint_dir``/``resume``/
    ``retry`` only affect how (and whether) the work is redone.
    """

    seed: int = 2004
    workloads: int = 3
    copies: int = 4
    bits: Tuple[int, ...] = (16,)
    attacks: Tuple[str, ...] = DEFAULT_ATTACKS
    #: Redundancy codecs to sweep — each (workload, bits) fleet is
    #: minted and attacked once per codec, so the report can compare
    #: GCRT, Reed-Solomon and hybrid survival on identical coordinates.
    codecs: Tuple[str, ...] = ("gcrt",)
    pieces: Optional[int] = None
    secret: bytes = b"campaign"
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    max_steps: int = 2_000_000
    # Execution knobs (outcome-neutral).
    workers: int = 1
    #: Attack cells evaluated concurrently in separate processes.
    #: Cells are coordinate-pure, so any interleaving produces the
    #: same (sorted) report as a serial sweep.
    cell_workers: int = 1
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.workloads < 1:
            raise ValueError("need at least one workload")
        if self.cell_workers < 1:
            raise ValueError("need at least one cell worker")
        if self.copies < 1:
            raise ValueError("need at least one copy per cell")
        if not self.bits:
            raise ValueError("need at least one bit width")
        for width in self.bits:
            if not 4 <= width <= 32:
                raise ValueError(f"bits={width} out of range [4, 32]")
        if not self.codecs:
            raise ValueError("need at least one codec")
        # Fail on unknown attack/codec names now, not mid-campaign.
        campaign_attacks(self.attacks)
        for codec in self.codecs:
            resolve_codec(codec)


def _copy_specs(config: CampaignConfig, workload: GeneratedProgram,
                bits: int) -> List[CopySpec]:
    """The minted fleet for one (workload, bits): distinct random
    watermarks drawn from a coordinate-derived stream."""
    rng = copy_rng(cell_seed(config.seed, workload.name, bits, "mint", 0),
                   "specs")
    seen: set = set()
    specs = []
    for index in range(config.copies):
        watermark = rng.randrange(1, 1 << bits)
        while watermark in seen:
            watermark = rng.randrange(1, 1 << bits)
        seen.add(watermark)
        specs.append(CopySpec(
            copy_id=f"{workload.name}-b{bits}-c{index:03d}",
            watermark=watermark,
            seed=index,
        ))
    return specs


def _remint(prepared: PreparedProgram, spec: CopySpec) -> Module:
    """Re-derive the exact module ``run_batch`` emitted for ``spec``.

    Embedding is deterministic in (watermark, seed) — the batch
    docstring's reproducibility contract — so this avoids shipping
    modules back across the process pool.
    """
    return embed(
        prepared.module,
        spec.watermark,
        prepared.key,
        pieces=prepared.pieces,
        watermark_bits=prepared.watermark_bits,
        trace=prepared.trace,
        sites=prepared.sites,
        rng_salt=f"{spec.watermark}/{spec.seed}",
        codec=prepared.codec,
    ).module


def _with_codec(
    base: PreparedProgram, codec: str, pieces: Optional[int]
) -> PreparedProgram:
    """A codec-variant of one preparation, sharing the heavy state.

    Preparation's expensive stages (trace, CFGs, site mining) are
    codec-independent; only the planned piece count and the recorded
    spec differ. The variant shares the trace/module/site objects with
    ``base`` — the sweep reads, never mutates, a prepared program.
    """
    spec = resolve_codec(codec).spec
    if spec == base.codec:
        return base
    _moduli, piece_count = resolve_piece_count(
        base.watermark_bits, pieces, codec=spec
    )
    return replace(base, pieces=piece_count, codec=spec)


def _attack_cell(
    config: CampaignConfig,
    workload: GeneratedProgram,
    bits: int,
    prepared: PreparedProgram,
    specs: Sequence[CopySpec],
    marked: Sequence[Module],
    schedule: AttackSchedule,
    intensity: float,
    intensity_index: int,
) -> CampaignCell:
    """Attack every minted copy at one intensity and judge each."""
    seed = cell_seed(config.seed, workload.name, bits, schedule.name,
                     intensity_index)
    cell = CampaignCell(
        workload=workload.name,
        workload_seed=workload.seed,
        bits=bits,
        attack=schedule.name,
        intensity=intensity,
        intensity_index=intensity_index,
        cell_seed=seed,
        codec=prepared.codec,
        copies=len(specs),
        copy_watermarks=[s.watermark for s in specs],
        copy_seeds=[s.seed for s in specs],
    )
    start = time.perf_counter()
    branch_deltas: List[float] = []
    size_deltas: List[float] = []
    for spec, module in zip(specs, marked):
        rng = copy_rng(seed, spec.copy_id)
        try:
            attacked = schedule.apply(module, intensity, rng)
        except Exception as exc:  # attack itself broke — isolate it
            cell.errored += 1
            if len(cell.errors) < _MAX_CELL_ERRORS:
                cell.errors.append(f"{spec.copy_id}: attack: {exc}")
            continue
        branch_deltas.append(branch_increase_fraction(module, attacked))
        size_deltas.append(
            float(attacked.byte_size() - module.byte_size())
        )
        try:
            out = run_module(attacked, workload.inputs,
                             max_steps=config.max_steps)
            if out.output == prepared.baseline_output:
                cell.program_ok += 1
        except VMError as exc:
            if len(cell.errors) < _MAX_CELL_ERRORS:
                cell.errors.append(f"{spec.copy_id}: run: {exc}")
        try:
            found = recognize(attacked, prepared.key,
                              watermark_bits=bits,
                              max_steps=config.max_steps,
                              codec=prepared.codec)
            if found.complete and found.value == spec.watermark:
                cell.recovered += 1
        except VMError as exc:
            if len(cell.errors) < _MAX_CELL_ERRORS:
                cell.errors.append(f"{spec.copy_id}: recognize: {exc}")
    if branch_deltas:
        cell.branch_delta = sum(branch_deltas) / len(branch_deltas)
        cell.size_delta_bytes = sum(size_deltas) / len(size_deltas)
    cell.wall_seconds = time.perf_counter() - start
    return cell


def _cell_task(
    config: CampaignConfig,
    workload: GeneratedProgram,
    bits: int,
    prepared: PreparedProgram,
    specs: Sequence[CopySpec],
    schedule_name: str,
    intensity: float,
    intensity_index: int,
) -> CampaignCell:
    """One attack cell, self-contained for a worker process.

    The marked modules are re-minted here rather than shipped across
    the pool — embedding is deterministic in (watermark, seed), and
    the pickled preparation is far smaller than ``copies`` modules.
    """
    schedule = campaign_attacks((schedule_name,))[0]
    marked = [_remint(prepared, spec) for spec in specs]
    return _attack_cell(config, workload, bits, prepared, specs, marked,
                        schedule, intensity, intensity_index)


def _journal_path(config: CampaignConfig) -> Optional[str]:
    if config.checkpoint_dir is None:
        return None
    return os.path.join(config.checkpoint_dir, "cells.jsonl")


def _load_journal(path: Optional[str]) -> Dict[tuple, CampaignCell]:
    """Finished cells from a previous run; torn tail lines tolerated."""
    done: Dict[tuple, CampaignCell] = {}
    if path is None or not os.path.exists(path):
        return done
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                cell = CampaignCell.from_dict(json.loads(line))
            except (ValueError, KeyError):
                continue  # torn write from an interrupted run
            done[cell.key()] = cell
    return done


def run_campaign(
    config: CampaignConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run the full matrix and return its :class:`CampaignReport`."""
    say = progress or (lambda _msg: None)
    registry = obs.get_registry()
    cells_total = registry.counter(
        "repro_campaign_cells_total", "Campaign cells completed"
    )
    copies_attacked = registry.counter(
        "repro_campaign_copies_attacked_total",
        "Fingerprinted copies put through an attack cell",
    )
    recovered_total = registry.counter(
        "repro_campaign_recovered_total",
        "Copies whose mark survived the attack",
    )
    cell_seconds = registry.histogram(
        "repro_campaign_cell_seconds", "Wall time per campaign cell"
    )

    start = time.perf_counter()
    schedules = campaign_attacks(config.attacks)
    codec_list = [resolve_codec(c).spec for c in config.codecs]
    report = CampaignReport(
        seed=config.seed,
        attacks=[s.name for s in schedules],
        bits=sorted(config.bits),
        codecs=codec_list,
        copies_per_cell=config.copies,
    )
    journal = _journal_path(config)
    if config.checkpoint_dir is not None:
        os.makedirs(config.checkpoint_dir, exist_ok=True)
    done = _load_journal(journal) if config.resume else {}
    journal_fp = open(journal, "a") if journal is not None else None
    cell_pool: Optional[ProcessPoolExecutor] = None
    if config.cell_workers > 1:
        cell_pool = ProcessPoolExecutor(max_workers=config.cell_workers)

    def record(cell: CampaignCell) -> None:
        """Bookkeeping for one finished cell (any completion order —
        the report is sorted by coordinates at the end)."""
        report.cells.append(cell)
        cells_total.inc(attack=cell.attack)
        copies_attacked.inc(cell.copies)
        recovered_total.inc(cell.recovered)
        cell_seconds.observe(cell.wall_seconds, attack=cell.attack)
        obs.emit(
            "campaign.cell",
            f"{cell.workload}/{cell.attack}",
            workload=cell.workload,
            bits=cell.bits,
            codec=cell.codec,
            attack=cell.attack,
            intensity=cell.intensity,
            copies=cell.copies,
            recovered=cell.recovered,
            wall_seconds=cell.wall_seconds,
        )
        if journal_fp is not None:
            journal_fp.write(
                json.dumps(cell.to_dict(), sort_keys=True) + "\n"
            )
            journal_fp.flush()

    try:
        with obs.span("campaign", seed=config.seed,
                      workloads=config.workloads,
                      attacks=len(schedules)):
            with obs.span("campaign.generate", count=config.workloads):
                corpus = generate_corpus(
                    config.workloads, base_seed=config.seed,
                    config=config.generator,
                )
            for program in corpus:
                oracle = differential_check(
                    program,
                    min_branch_events=config.generator.min_branch_events,
                )
                report.workloads.append(WorkloadRecord(
                    name=program.name,
                    seed=program.seed,
                    inputs=list(program.inputs),
                    functions=program.functions,
                    loops=program.loops,
                    branches=program.branches,
                    oracle_ok=oracle.ok,
                    oracle_steps=oracle.steps,
                    oracle_branch_events=oracle.branch_events,
                ))
            say(f"generated {len(corpus)} workloads, oracle-validated")

            for program in corpus:
                key = WatermarkKey(secret=config.secret,
                                   inputs=list(program.inputs))
                for bits in sorted(config.bits):
                    base_prepared: Optional[PreparedProgram] = None
                    for codec in codec_list:
                        with obs.span("campaign.mint", workload=program.name,
                                      bits=bits, codec=codec):
                            if base_prepared is None:
                                # The heavy, codec-independent stages
                                # run once per (workload, bits); codec
                                # variants share the trace.
                                base_prepared = prepare(
                                    program.module(), key,
                                    watermark_bits=bits,
                                    pieces=config.pieces,
                                    max_steps=config.max_steps,
                                    codec=codec,
                                )
                            prepared = _with_codec(
                                base_prepared, codec, config.pieces
                            )
                            specs = _copy_specs(config, program, bits)
                            checkpoint = None
                            if config.checkpoint_dir is not None:
                                # GCRT keeps the pre-codec file name so
                                # old checkpoints stay resumable.
                                suffix = "" if codec == "gcrt" else f"-{codec}"
                                checkpoint = os.path.join(
                                    config.checkpoint_dir,
                                    f"batch-{program.name}-b{bits}"
                                    f"{suffix}.jsonl",
                                )
                            batch = run_batch(
                                prepared, specs,
                                workers=config.workers,
                                checkpoint=checkpoint,
                                resume=config.resume,
                                retry=config.retry,
                            )
                        if not batch.all_ok:
                            bad = [r.copy_id for r in batch.copies
                                   if not r.verified]
                            raise RuntimeError(
                                f"{program.name} b{bits} {codec}: batch "
                                f"failed to mint {len(bad)} copies "
                                f"({bad[:3]}...)"
                            )
                        report.embeds.append({
                            "workload": program.name,
                            "bits": bits,
                            "codec": codec,
                            "copies": len(batch.copies),
                            "resumed": batch.resumed,
                            "mean_size_increase": (
                                sum(r.byte_size_increase
                                    for r in batch.copies)
                                / len(batch.copies)
                            ),
                            "wall_seconds": batch.wall_seconds,
                        })
                        marked = [_remint(prepared, s) for s in specs]
                        say(f"{program.name} b{bits} {codec}: minted "
                            f"{len(marked)} copies")

                        pending: List[Tuple[AttackSchedule, float, int]] = []
                        for schedule in schedules:
                            for index, intensity in enumerate(
                                schedule.levels
                            ):
                                key_tuple = (program.name, bits, "bytecode",
                                             codec, schedule.name, index)
                                if key_tuple in done:
                                    report.cells.append(done[key_tuple])
                                    report.resumed_cells += 1
                                    continue
                                pending.append((schedule, intensity, index))
                        if cell_pool is not None and len(pending) > 1:
                            with obs.span("campaign.cells",
                                          workload=program.name,
                                          bits=bits, codec=codec,
                                          cells=len(pending)):
                                futures = [
                                    cell_pool.submit(
                                        _cell_task, config, program, bits,
                                        prepared, specs, schedule.name,
                                        intensity, index,
                                    )
                                    for schedule, intensity, index in pending
                                ]
                                for future in as_completed(futures):
                                    record(future.result())
                        else:
                            for schedule, intensity, index in pending:
                                with obs.span("campaign.cell",
                                              workload=program.name,
                                              bits=bits,
                                              codec=codec,
                                              attack=schedule.name,
                                              intensity=intensity):
                                    cell = _attack_cell(
                                        config, program, bits, prepared,
                                        specs, marked, schedule,
                                        intensity, index,
                                    )
                                record(cell)
                        say(f"{program.name} b{bits} {codec}: "
                            f"{len(schedules)} attacks swept")
    finally:
        if cell_pool is not None:
            cell_pool.shutdown(wait=False, cancel_futures=True)
        if journal_fp is not None:
            journal_fp.close()

    report.cells.sort(key=CampaignCell.key)
    report.wall_seconds = time.perf_counter() - start
    return report
