"""Seeded workload generation + swept attack campaigns.

The campaign subsystem turns the paper's spot-check evaluation into a
swept one: :mod:`.generator` emits diverse-but-deterministic wee
programs (each validated against the reference interpreter before
use), :mod:`.attacks` schedules the distortive attack families over an
intensity axis, :mod:`.runner` sweeps the full
workloads x attacks x bit-widths matrix through the batch pipeline,
and :mod:`.report` serializes the per-cell outcomes with enough seeds
to replay any single cell.

    from repro.campaign import CampaignConfig, run_campaign

    report = run_campaign(CampaignConfig(seed=7, workloads=2))
    print(report.summary())
    report.write("campaign.json")
"""

from .attacks import (
    AttackSchedule,
    DEFAULT_ATTACKS,
    campaign_attacks,
    cell_seed,
    copy_rng,
)
from .generator import (
    GeneratedProgram,
    GeneratorConfig,
    GeneratorError,
    OracleResult,
    differential_check,
    generate_corpus,
    generate_program,
)
from .report import CampaignCell, CampaignReport, WorkloadRecord
from .runner import CampaignConfig, run_campaign

__all__ = [
    "AttackSchedule",
    "CampaignCell",
    "CampaignConfig",
    "CampaignReport",
    "DEFAULT_ATTACKS",
    "GeneratedProgram",
    "GeneratorConfig",
    "GeneratorError",
    "OracleResult",
    "WorkloadRecord",
    "campaign_attacks",
    "cell_seed",
    "copy_rng",
    "differential_check",
    "generate_corpus",
    "generate_program",
    "run_campaign",
]
