"""Seeded wee program generator: diverse-but-deterministic workloads.

The resilience experiments are only as convincing as the programs they
run over, and a hand-written corpus covers exactly the shapes someone
thought to write down. This generator emits wee programs whose control
structure is *drawn* from a seeded RNG — parameterized loop nesting,
call depth, branch shape, bounded recursion, array traffic and dead
code — so a campaign can sweep hundreds of distinct program shapes
while staying bit-for-bit reproducible from a single integer seed.

Two invariants shape every emitted program:

* **Termination and safety.** Every loop is literally bounded, every
  recursive call strictly decreases a non-negative counter, and
  ``/``/``%`` never see a zero or negative operand. A generated
  program cannot hang or trap, on any substrate.
* **A 32-bit-safe value domain.** Every assignment masks its value to
  :data:`VALUE_MASK` (2^18-1) and multiplications only ever scale a
  byte-masked operand by a small literal, so no intermediate leaves
  +/-2^28 — the domain where the 64-bit WVM, the reference engine and
  the 32-bit N32 machine agree exactly. The same programs therefore
  feed the differential fuzz corpus (``tests/test_fuzz_differential``)
  across all three evaluators.

The generator's output is *validated, not trusted*:
:func:`differential_check` runs each program on both WVM engines —
the fast path and the seed interpreter kept as
:mod:`repro.vm._reference` — and compares outputs, step counts and
branch-event streams. :func:`generate_corpus` gates every program
through that oracle before handing it to a campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..lang import compile_source
from ..vm._reference import run_module_reference
from ..vm.interpreter import run_module
from ..vm.program import Module

__all__ = [
    "VALUE_MASK",
    "GeneratedProgram",
    "GeneratorConfig",
    "GeneratorError",
    "OracleResult",
    "differential_check",
    "generate_corpus",
    "generate_program",
]

#: Assignments mask to 18 bits so every intermediate stays far inside
#: the +/-2^28 window where 32- and 64-bit arithmetic coincide.
VALUE_MASK = 0x3FFFF


class GeneratorError(Exception):
    """A generated program failed validation (a generator or VM bug)."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape knobs for one family of generated programs.

    All knobs bound *maximums*; the per-program RNG draws the actual
    shape, so one config still yields structurally diverse programs
    across seeds.
    """

    functions: int = 3          #: helper functions (call-graph depth)
    max_loop_nest: int = 2      #: deepest loop nesting in main
    max_block_stmts: int = 4    #: statements per generated block
    max_expr_depth: int = 3     #: expression tree depth
    recursion: bool = True      #: emit a bounded-recursion helper
    dead_code: bool = True      #: emit statically-dead branches
    arrays: bool = True         #: emit array allocation + traffic
    input_count: int = 2        #: ``input()`` reads (the key inputs)
    min_branch_events: int = 8  #: oracle floor on executed branches

    def __post_init__(self) -> None:
        if self.functions < 0 or self.input_count < 1:
            raise ValueError("functions must be >= 0, input_count >= 1")
        if self.max_loop_nest < 1 or self.max_block_stmts < 1:
            raise ValueError("loop nest and block sizes must be positive")
        if self.max_expr_depth < 1:
            raise ValueError("max_expr_depth must be positive")


@dataclass
class GeneratedProgram:
    """One generated workload: source, key inputs, and shape stats."""

    name: str
    seed: int
    source: str
    inputs: List[int]
    functions: int = 0
    loops: int = 0
    branches: int = 0
    calls: int = 0

    def module(self) -> Module:
        """Compile the source to a fresh WVM module."""
        return compile_source(self.source)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "inputs": list(self.inputs),
            "functions": self.functions,
            "loops": self.loops,
            "branches": self.branches,
            "calls": self.calls,
        }


@dataclass
class OracleResult:
    """What the differential oracle saw for one program."""

    ok: bool
    steps: int = 0
    branch_events: int = 0
    output_values: int = 0
    detail: str = ""


class _Emitter:
    """Seeded source builder; every draw comes from one ``Random``."""

    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.rng = random.Random(seed)
        self.config = config
        self.lines: List[str] = []
        self.indent = 0
        self.counter = 0
        self.loops = 0
        self.branches = 0
        self.calls = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- expressions -------------------------------------------------------

    def expr(self, names: List[str], depth: int = 0,
             callees: Optional[List[str]] = None) -> str:
        """A random expression over ``names``, bounded in magnitude."""
        rng = self.rng
        if depth >= self.config.max_expr_depth or rng.random() < 0.3:
            if names and rng.random() < 0.7:
                return rng.choice(names)
            return str(rng.randrange(0, 256))
        roll = rng.random()
        if callees and roll < 0.15:
            self.calls += 1
            fn = rng.choice(callees)
            a = self.expr(names, depth + 1, callees)
            b = self.expr(names, depth + 1, callees)
            return f"{fn}(({a}) & 1023, ({b}) & 1023)"
        if roll < 0.25:
            op = rng.choice(["-", "!", "~"])
            return f"{op}({self.expr(names, depth + 1, callees)})"
        if roll < 0.35:
            # Multiplication keeps one side byte-masked and the other a
            # small literal so products never approach the 32-bit edge.
            sub = self.expr(names, depth + 1, callees)
            return f"(({sub}) & 255) * {rng.randrange(2, 10)}"
        op = rng.choice(
            ["+", "-", "&", "|", "^",
             "<", "<=", "==", "!=", ">", ">=", "&&", "||"]
        )
        left = self.expr(names, depth + 1, callees)
        right = self.expr(names, depth + 1, callees)
        return f"({left} {op} {right})"

    def cond(self, names: List[str],
             callees: Optional[List[str]] = None) -> str:
        """A comparison-shaped condition (always cheap to evaluate)."""
        left = self.expr(names, 1, callees)
        op = self.rng.choice(["<", "<=", "==", "!=", ">", ">="])
        right = self.expr(names, 1, callees)
        return f"({left}) {op} ({right})"

    # -- statements --------------------------------------------------------

    def assign(self, names: List[str], targets: List[str],
               callees: Optional[List[str]] = None) -> None:
        target = self.rng.choice(targets)
        value = self.expr(names, 0, callees)
        self.emit(f"{target} = ({value}) & {VALUE_MASK};")

    def if_stmt(self, names: List[str], targets: List[str],
                callees: List[str], loop_depth: int,
                stmt_depth: int = 0) -> None:
        self.branches += 1
        shape = self.rng.random()
        self.emit(f"if ({self.cond(names, callees)}) {{")
        self.indent += 1
        self.block(names, targets, callees, loop_depth, allow_loops=False,
                   stmt_depth=stmt_depth + 1)
        self.indent -= 1
        if shape < 0.4:
            self.emit("}")
            return
        if shape < 0.7:
            self.emit("} else {")
        else:
            self.branches += 1
            self.emit(f"}} else if ({self.cond(names, callees)}) {{")
        self.indent += 1
        self.block(names, targets, callees, loop_depth, allow_loops=False,
                   stmt_depth=stmt_depth + 1)
        self.indent -= 1
        self.emit("}")

    def for_loop(self, names: List[str], targets: List[str],
                 callees: List[str], loop_depth: int) -> None:
        self.loops += 1
        self.branches += 1
        var = self.fresh("i")
        bound = self.rng.randrange(4, 13)
        step = self.rng.randrange(1, 3)
        self.emit(f"for (var {var} = 0; {var} < {bound}; "
                  f"{var} = {var} + {step}) {{")
        self.indent += 1
        # The counter joins the readable names but NOT the assignment
        # targets: a body that wrote its own counter could reset the
        # loop forever.
        self.block(names + [var], targets, callees, loop_depth + 1,
                   allow_loops=True)
        self.indent -= 1
        self.emit("}")

    def while_loop(self, names: List[str], targets: List[str],
                   callees: List[str], loop_depth: int) -> None:
        self.loops += 1
        self.branches += 1
        var = self.fresh("t")
        self.emit(f"var {var} = {self.rng.randrange(3, 9)};")
        self.emit(f"while ({var} > 0) {{")
        self.indent += 1
        self.block(names + [var], targets, callees, loop_depth + 1,
                   allow_loops=True)
        self.emit(f"{var} = {var} - 1;")
        self.indent -= 1
        self.emit("}")

    #: Deepest statement nesting inside a single loop level; without a
    #: bound the if->block->if recursion has a supercritical branching
    #: factor and the occasional seed would emit a monster.
    MAX_STMT_DEPTH = 2

    def dead_branch(self, names: List[str]) -> None:
        """A statically-false branch: present in the bytecode, never
        executed — layout chaff for the attacks to chew on."""
        self.branches += 1
        self.emit("if (0 > 1) {")
        self.indent += 1
        if names:
            self.emit(f"{self.rng.choice(names)} = "
                      f"{self.rng.randrange(0, 65536)};")
        self.indent -= 1
        self.emit("}")

    def array_block(self, names: List[str], targets: List[str],
                    callees: List[str]) -> None:
        """Allocate a power-of-two array, fill it, fold it back."""
        self.loops += 1
        self.branches += 1
        arr = self.fresh("arr")
        idx = self.fresh("ai")
        size = self.rng.choice([4, 8, 16])
        self.emit(f"var {arr} = new({size});")
        self.emit(f"for (var {idx} = 0; {idx} < len({arr}); "
                  f"{idx} = {idx} + 1) {{")
        self.indent += 1
        value = self.expr(names + [idx], 1, callees)
        self.emit(f"{arr}[{idx}] = ({value}) & {VALUE_MASK};")
        self.indent -= 1
        self.emit("}")
        target = self.rng.choice(targets)
        pick = self.expr(names, 1, callees)
        self.emit(f"{target} = ({target} + {arr}[({pick}) & {size - 1}])"
                  f" & {VALUE_MASK};")

    def block(self, names: List[str], targets: List[str],
              callees: List[str], loop_depth: int, allow_loops: bool,
              stmt_depth: int = 0) -> None:
        for _ in range(self.rng.randrange(1, self.config.max_block_stmts + 1)):
            roll = self.rng.random()
            if allow_loops and loop_depth < self.config.max_loop_nest \
                    and roll < 0.25:
                if self.rng.random() < 0.5:
                    self.for_loop(names, targets, callees, loop_depth)
                else:
                    self.while_loop(names, targets, callees, loop_depth)
            elif roll < 0.5 and stmt_depth < self.MAX_STMT_DEPTH:
                self.if_stmt(names, targets, callees, loop_depth, stmt_depth)
            else:
                self.assign(names, targets, callees)


def _emit_helper(em: _Emitter, name: str, callees: List[str]) -> None:
    """One helper function: a few statements and a masked return."""
    em.emit(f"fn {name}(a, b) {{")
    em.indent += 1
    local = em.fresh("h")
    em.emit(f"var {local} = (a + b) & {VALUE_MASK};")
    names = ["a", "b", local]
    for _ in range(em.rng.randrange(1, 4)):
        if em.rng.random() < 0.4:
            em.if_stmt(names, names, callees, loop_depth=0)
        else:
            em.assign(names, names, callees)
    em.emit(f"return ({em.expr(names, 1, callees)}) & {VALUE_MASK};")
    em.indent -= 1
    em.emit("}")
    em.emit("")


def _emit_recursive(em: _Emitter, name: str) -> None:
    """A bounded-recursion helper: ``n`` strictly decreases to 0."""
    op = em.rng.choice(["+", "^", "|"])
    factor = em.rng.randrange(2, 6)
    em.branches += 1
    em.emit(f"fn {name}(n, acc) {{")
    em.indent += 1
    em.emit(f"if (n <= 0) {{ return acc & {VALUE_MASK}; }}")
    em.emit(f"return {name}(n - 1, (acc {op} n * {factor})"
            f" & {VALUE_MASK});")
    em.indent -= 1
    em.emit("}")
    em.emit("")


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedProgram:
    """Emit one program. A pure function of ``(seed, config)``."""
    config = config or GeneratorConfig()
    em = _Emitter(seed, config)

    helpers: List[str] = []
    for index in range(config.functions):
        name = f"f{index}"
        _emit_helper(em, name, list(helpers))
        helpers.append(name)
    rec_name = None
    if config.recursion:
        rec_name = "rec0"
        _emit_recursive(em, rec_name)

    em.emit("fn main() {")
    em.indent += 1
    names: List[str] = []
    for index in range(config.input_count):
        var = f"x{index}"
        em.emit(f"var {var} = input() & 1023;")
        names.append(var)
    for index in range(em.rng.randrange(2, 5)):
        var = f"v{index}"
        em.emit(f"var {var} = {em.rng.randrange(0, 512)};")
        names.append(var)

    # Guaranteed spine: at least one input-coupled loop with a branch
    # inside, so every program yields branch events (and therefore
    # insertion sites) on its key input no matter what else the RNG
    # draws below.
    spine = em.fresh("i")
    em.loops += 1
    em.branches += 2
    em.emit(f"for (var {spine} = 0; {spine} < 8 + ({names[0]} & 7); "
            f"{spine} = {spine} + 1) {{")
    em.indent += 1
    em.emit(f"if (({spine} & 1) == 0) {{")
    em.indent += 1
    em.emit(f"{names[-1]} = ({names[-1]} + {spine} * 3) & {VALUE_MASK};")
    em.indent -= 1
    em.emit("} else {")
    em.indent += 1
    em.emit(f"{names[-1]} = ({names[-1]} ^ {names[0]}) & {VALUE_MASK};")
    em.indent -= 1
    em.emit("}")
    em.indent -= 1
    em.emit("}")

    for _ in range(em.rng.randrange(2, 4)):
        roll = em.rng.random()
        if roll < 0.45:
            em.for_loop(names, names, helpers, loop_depth=0)
        elif roll < 0.6:
            em.while_loop(names, names, helpers, loop_depth=0)
        elif roll < 0.8:
            em.if_stmt(names, names, helpers, loop_depth=0)
        else:
            em.assign(names, names, helpers)
    if config.arrays and em.rng.random() < 0.8:
        em.array_block(names, names, helpers)
    if config.dead_code:
        em.dead_branch(names)
    if rec_name is not None:
        em.calls += 1
        target = em.rng.choice(names)
        depth = em.expr(names, 1, helpers)
        em.emit(f"{target} = {rec_name}(({depth}) & 15, {target});")

    for var in names:
        em.emit(f"print({var});")
    em.emit("return 0;")
    em.indent -= 1
    em.emit("}")

    inputs = [em.rng.randrange(1, 1024) for _ in range(config.input_count)]
    return GeneratedProgram(
        name=f"gen-{seed:08d}",
        seed=seed,
        source="\n".join(em.lines) + "\n",
        inputs=inputs,
        functions=config.functions + (1 if rec_name else 0) + 1,
        loops=em.loops,
        branches=em.branches,
        calls=em.calls,
    )


def differential_check(
    program: GeneratedProgram,
    min_branch_events: int = 8,
) -> OracleResult:
    """Run the program on both WVM engines and compare everything.

    The seed interpreter (:mod:`repro.vm._reference`) is the oracle:
    outputs, step counts, and the branch-event stream (length plus
    taken-flags) must match the fast path exactly, and the program
    must actually exercise enough branches to be embeddable.
    """
    try:
        module = compile_source(program.source)
    except Exception as exc:
        return OracleResult(ok=False, detail=f"does not compile: {exc}")
    try:
        fast = run_module(module, program.inputs, trace_mode="branch")
        ref = run_module_reference(module, program.inputs,
                                   trace_mode="branch")
    except Exception as exc:
        return OracleResult(ok=False, detail=f"execution trapped: {exc}")
    assert fast.trace is not None and ref.trace is not None
    if fast.output != ref.output:
        return OracleResult(
            ok=False, steps=fast.steps,
            detail=f"output divergence: fast={fast.output[:8]} "
                   f"reference={ref.output[:8]}",
        )
    if fast.steps != ref.steps:
        return OracleResult(
            ok=False, steps=fast.steps,
            detail=f"step divergence: fast={fast.steps} ref={ref.steps}",
        )
    fast_branches = [e.taken for e in fast.trace.branches]
    ref_branches = [e.taken for e in ref.trace.branches]
    if fast_branches != ref_branches:
        return OracleResult(
            ok=False, steps=fast.steps,
            detail="branch-event divergence between engines",
        )
    if len(fast_branches) < min_branch_events:
        return OracleResult(
            ok=False, steps=fast.steps,
            branch_events=len(fast_branches),
            detail=f"only {len(fast_branches)} branch events "
                   f"(need {min_branch_events})",
        )
    return OracleResult(
        ok=True,
        steps=fast.steps,
        branch_events=len(fast_branches),
        output_values=len(fast.output),
    )


def generate_corpus(
    count: int,
    base_seed: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> List[GeneratedProgram]:
    """``count`` oracle-validated programs, seeded ``base_seed + i``.

    Raises :class:`GeneratorError` on the first program that fails the
    differential oracle — a generator bug must stop a campaign, not
    silently shrink its matrix.
    """
    if count < 1:
        raise ValueError("count must be positive")
    config = config or GeneratorConfig()
    corpus: List[GeneratedProgram] = []
    for index in range(count):
        program = generate_program(base_seed + index, config)
        oracle = differential_check(program, config.min_branch_events)
        if not oracle.ok:
            raise GeneratorError(
                f"{program.name}: differential oracle rejected the "
                f"program: {oracle.detail}\n--- source ---\n"
                f"{program.source}"
            )
        corpus.append(program)
    return corpus
