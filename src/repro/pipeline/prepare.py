"""The shared preparation cache: run watermark-independent work once.

Fingerprinting is per-copy by definition — every distributed copy gets
its own mark — but most of the embed pipeline does not depend on the
mark at all. Key-input tracing, CFG construction, insertion-site
mining and redundancy planning depend only on (program, key,
fingerprint width); only splitting, encryption and code insertion
depend on the watermark value. :func:`prepare` runs the former once
and snapshots the results into a :class:`PreparedProgram`, turning a
batch of N embeds from O(N × full pipeline) into
O(1 prepare + N × insert-only).

A :class:`PreparedProgram` is picklable as one object graph, which
matters twice: it ships to pool workers (``pipeline.batch``) and it
persists to disk (``save``/``load``) so repeated CLI runs against the
same release skip preparation entirely. The trace — by far the
heaviest field — is pickled as a compact binary blob (the version-2
format of :mod:`repro.vm.trace_io`) and re-bound against the pickled
module on load, which both shrinks artifacts several-fold and
preserves the branch-event → instruction identity the trace model
relies on. Artifacts written before the binary encoding existed
pickled the trace as a plain object graph; ``load`` still accepts
those.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from ..serve.store import ArtifactStore

from .. import obs
from ..bytecode_wm.keys import WatermarkKey
from ..codec import resolve_codec
from ..bytecode_wm.placement import eligible_sites
from ..core.errors import EmbeddingError
from ..core.planner import plan_redundancy
from ..core.primes import choose_moduli
from ..vm.cfg import CFG, build_cfg
from ..vm.disassembler import disassemble
from ..vm.interpreter import DEFAULT_MAX_STEPS, StepLimitExceeded, run_module
from ..vm.program import Module
from ..vm.trace_io import (
    TraceFormatError,
    dump_trace_binary,
    load_trace_binary,
)
from ..vm.tracing import SiteKey, Trace
from ..vm.verifier import verify_module
from .metrics import StageTimings

#: Bumped whenever the artifact layout changes; ``load`` rejects other
#: versions rather than mis-embedding from a stale cache file.
FORMAT_VERSION = 1


class PrepareError(EmbeddingError):
    """The program cannot be prepared (or a cache artifact is unusable)."""


@dataclass
class PreparedProgram:
    """Snapshot of all watermark-independent embedding state.

    Holds its own private copy of the module: callers may mutate their
    module afterwards without invalidating the cache, and every
    per-copy embed clones from this snapshot.
    """

    module: Module
    key: WatermarkKey
    watermark_bits: int
    moduli: List[int]
    pieces: int
    trace: Trace
    sites: Dict[SiteKey, int]
    cfgs: Dict[str, CFG]
    baseline_output: List[int]
    timings: StageTimings = field(default_factory=StageTimings)
    version: int = FORMAT_VERSION
    #: Raw per-opcode dispatch counts of the key-input trace run, set
    #: only when preparation ran with ``profile=True``. Additive field:
    #: artifacts pickled before it existed load with ``None``.
    dispatch_counts: Optional[List[int]] = None
    #: Redundancy codec spec the release is planned for. Additive
    #: field: artifacts pickled before the codec layer existed load as
    #: GCRT (the only scheme they could have been embedded with).
    codec: str = "gcrt"

    def fingerprint(self) -> str:
        """Content hash identifying (program, key, width, pieces, codec).

        Used to decide whether a persisted artifact still matches the
        inputs of a new run.
        """
        return prepare_fingerprint(
            self.module, self.key, self.watermark_bits, self.pieces,
            self.codec,
        )

    def matches(
        self,
        module: Module,
        key: WatermarkKey,
        watermark_bits: int,
        pieces: Optional[int] = None,
        codec: str = "gcrt",
    ) -> bool:
        """Is this artifact valid for the given embedding inputs?

        ``pieces=None`` accepts whatever piece count the artifact
        planned (the caller is delegating to the planner).
        """
        if self.version != FORMAT_VERSION:
            return False
        if pieces is not None and pieces != self.pieces:
            return False
        return (
            key == self.key
            and watermark_bits == self.watermark_bits
            and codec == self.codec
            and disassemble(module) == disassemble(self.module)
        )

    # -- persistence -------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle the trace as a compact binary blob, not an object graph.

        The trace dominates artifact size (tens of MB of TracePoint /
        BranchEvent objects for a jess-scale program); the version-2
        binary encoding is several times smaller and much cheaper for
        pickle to traverse. ``__setstate__`` re-binds it against the
        module that travels in the same pickle.
        """
        state = dict(self.__dict__)
        buf = io.BytesIO()
        dump_trace_binary(self.trace, self.module, buf)
        state["trace"] = buf.getvalue()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        blob = state["trace"]
        state.setdefault("dispatch_counts", None)
        # Pre-codec artifacts can only have been GCRT-embedded.
        state.setdefault("codec", "gcrt")
        self.__dict__.update(state)
        if isinstance(blob, bytes):
            try:
                self.trace = load_trace_binary(io.BytesIO(blob), self.module)
            except TraceFormatError as exc:
                raise PrepareError(
                    f"prepared-program artifact has a corrupt trace: {exc}"
                ) from exc
        elif not isinstance(blob, Trace):
            raise PrepareError(
                "prepared-program artifact has an unrecognisable trace field"
            )
        # else: pre-binary artifact that pickled the Trace directly —
        # already bound to the module, nothing to do.

    def save(self, path: str) -> None:
        with open(path, "wb") as fp:
            pickle.dump(self, fp, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path: str) -> "PreparedProgram":
        with open(path, "rb") as fp:
            try:
                obj = pickle.load(fp)
            except Exception as exc:
                raise PrepareError(
                    f"not a prepared-program artifact: {exc}"
                ) from exc
        if not isinstance(obj, PreparedProgram):
            raise PrepareError("file does not contain a PreparedProgram")
        if obj.version != FORMAT_VERSION:
            raise PrepareError(
                f"prepared-program version {obj.version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        return obj


def prepare_fingerprint(
    module: Module,
    key: WatermarkKey,
    watermark_bits: int,
    pieces: Optional[int],
    codec: str = "gcrt",
) -> str:
    """Stable digest of everything preparation depends on.

    The codec only enters the digest when it is not the default, so
    every digest minted before the codec layer existed — including
    store paths of persisted releases — stays valid.
    """
    h = hashlib.sha256()
    h.update(disassemble(module).encode())
    h.update(key.secret)
    h.update(repr(tuple(key.inputs)).encode())
    h.update(f"bits={watermark_bits};pieces={pieces}".encode())
    if codec != "gcrt":
        h.update(f";codec={codec}".encode())
    return h.hexdigest()


def resolve_piece_count(
    watermark_bits: int,
    pieces: Optional[int] = None,
    piece_loss: Optional[float] = None,
    target_success: float = 0.99,
    codec: str = "gcrt",
) -> Tuple[List[int], int]:
    """(moduli, piece count) for one fingerprint width and codec.

    Precedence: an explicit ``pieces`` wins; otherwise a threat model
    (``piece_loss``) invokes the Eq. (1)-style planner under the
    codec's survival model; otherwise the codec's own default applies
    (twice the modulus count for GCRT). The planner call is memoized
    (``core.planner``), so a batch pays for at most one plan
    regardless of copy count.
    """
    moduli = choose_moduli(watermark_bits)
    if pieces is not None:
        if pieces < 1:
            raise PrepareError("piece count must be positive")
        return moduli, pieces
    if piece_loss is not None:
        plan = plan_redundancy(
            watermark_bits, piece_loss, target_success, codec=codec
        )
        return moduli, plan.pieces
    return moduli, resolve_codec(codec).default_piece_count(watermark_bits)


def prepare(
    module: Module,
    key: WatermarkKey,
    watermark_bits: int,
    pieces: Optional[int] = None,
    piece_loss: Optional[float] = None,
    target_success: float = 0.99,
    max_steps: int = DEFAULT_MAX_STEPS,
    profile: bool = False,
    codec: str = "gcrt",
) -> PreparedProgram:
    """Run every watermark-independent stage once and snapshot it.

    Stages (each individually timed in the returned artifact):

    * **verify** — the module must pass the bytecode verifier before
      any copies are minted from it;
    * **trace** — one full-mode execution on the key input (the
      dominant cost of a single-shot embed);
    * **cfg** — control-flow graphs of every function, kept for
      consumers that analyse placements without re-deriving them;
    * **placement** — eligible insertion sites with frequencies;
    * **plan** — moduli selection plus redundancy planning.

    A key-input run that exhausts ``max_steps`` mid-trace raises
    :class:`PrepareError` naming the step budget; the partial trace is
    discarded with the failed run and never reaches an artifact or a
    :class:`PrepareCache` entry.

    ``profile=True`` counts VM dispatches during the trace run and
    keeps the raw array on the artifact for batch-level profiling.
    """
    if watermark_bits < 1:
        raise PrepareError("watermark_bits must be positive")
    timings = StageTimings()
    with obs.span("prepare", watermark_bits=watermark_bits):
        with timings.measure("verify"), obs.span("prepare.verify"):
            verify_module(module)
        snapshot = module.copy()
        with timings.measure("trace"), obs.span("prepare.trace") as sp:
            try:
                run = run_module(
                    snapshot, key.inputs, trace_mode="full",
                    max_steps=max_steps, profile=profile,
                )
            except StepLimitExceeded as exc:
                raise PrepareError(
                    f"key-input trace did not terminate: {exc}"
                ) from exc
            sp.set(steps=run.steps)
        trace = run.trace
        assert trace is not None
        with timings.measure("cfg"), obs.span("prepare.cfg"):
            cfgs = {
                name: build_cfg(fn) for name, fn in snapshot.functions.items()
            }
        with timings.measure("placement"), obs.span("prepare.placement"):
            sites = eligible_sites(trace, snapshot)
            if not sites:
                raise PrepareError(
                    "trace contains no usable insertion sites on the key input"
                )
            for site in sites:
                if site.site != "<entry>" and site.site not in cfgs[site.function].blocks:
                    raise PrepareError(
                        f"trace site {site!r} has no CFG block — "
                        f"trace and module disagree"
                    )
        with timings.measure("plan"), obs.span("prepare.plan"):
            codec_spec = resolve_codec(codec).spec
            moduli, piece_count = resolve_piece_count(
                watermark_bits, pieces, piece_loss, target_success,
                codec=codec_spec,
            )
    return PreparedProgram(
        module=snapshot,
        key=key,
        watermark_bits=watermark_bits,
        moduli=moduli,
        pieces=piece_count,
        trace=trace,
        sites=sites,
        cfgs=cfgs,
        baseline_output=list(run.output),
        timings=timings,
        dispatch_counts=run.dispatch_counts,
        codec=codec_spec,
    )


class PrepareCache:
    """In-memory cache of :class:`PreparedProgram` artifacts.

    Keyed by :func:`prepare_fingerprint`; long-lived services embedding
    many batches across a handful of releases hold one of these and
    pay for preparation once per release. Hit/miss counts feed the
    batch report.

    With a ``store`` (an :class:`~repro.serve.store.ArtifactStore`)
    the cache becomes the in-memory tier over durable artifacts: a
    memory miss falls through to the store before preparing (a
    ``store_hits`` hit), and a fresh preparation is persisted so the
    *next* process starts warm. Store integrity failures degrade to a
    re-prepare, and store write failures (disk full) to an unpersisted
    artifact — never to an error.
    """

    def __init__(
        self,
        max_entries: int = 8,
        store: Optional["ArtifactStore"] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max = max_entries
        self._store = store
        self._entries: Dict[str, PreparedProgram] = {}
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_prepare(
        self,
        module: Module,
        key: WatermarkKey,
        watermark_bits: int,
        pieces: Optional[int] = None,
        piece_loss: Optional[float] = None,
        target_success: float = 0.99,
        max_steps: int = DEFAULT_MAX_STEPS,
        profile: bool = False,
        codec: str = "gcrt",
    ) -> Tuple[PreparedProgram, bool]:
        """(artifact, was_hit) — preparing and caching on a miss.

        Insertion order doubles as eviction order (FIFO): release
        churn is slow, so anything smarter is not worth the state. A
        failed preparation (e.g. a key-input trace that exhausts
        ``max_steps``) propagates and caches nothing.
        """
        codec = resolve_codec(codec).spec
        digest = prepare_fingerprint(
            module, key, watermark_bits, pieces, codec
        )
        cached = self._entries.get(digest)
        if cached is not None:
            self.hits += 1
            return cached, True
        if self._store is not None and self._store.contains(digest):
            try:
                prepared = self._store.load(digest)
            except Exception:
                pass  # corrupt/stale artifact: fall through and re-prepare
            else:
                self.hits += 1
                self.store_hits += 1
                self._insert(digest, prepared)
                return prepared, True
        self.misses += 1
        prepared = prepare(
            module,
            key,
            watermark_bits,
            pieces,
            piece_loss,
            target_success,
            max_steps=max_steps,
            profile=profile,
            codec=codec,
        )
        if self._store is not None:
            try:
                self._store.put(prepared)
            except OSError:
                # A full or failing disk must not cost the caller the
                # preparation it just paid for; the next process simply
                # starts cold.
                pass
        self._insert(digest, prepared)
        return prepared, False

    def _insert(self, digest: str, prepared: PreparedProgram) -> None:
        if len(self._entries) >= self._max:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[digest] = prepared
