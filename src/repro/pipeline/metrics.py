"""Metrics and reporting for the batch fingerprinting pipeline.

The pipeline is judged on throughput (copies/second), so every run
records where the time went: per-stage wall time for the shared
preparation work, per-copy wall time for the mark-dependent work, and
the cache behaviour that separates the two. Each copy also carries its
verification outcome — every emitted module is immediately re-run and
re-recognized in-worker, so a report with ``all_ok`` set is a batch of
copies that are *known* to decode to their own fingerprints.

Reports serialize to JSON (``BatchReport.write``) so deployments can
archive one document per fingerprinting run.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class Stopwatch:
    """Context manager measuring one wall-clock interval."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class StageTimings:
    """Accumulated wall time per named pipeline stage."""

    stages: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[stage] = self.stages.get(stage, 0.0) + elapsed

    def record(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def total(self) -> float:
        return sum(self.stages.values())


@dataclass
class CopyResult:
    """Outcome of embedding (and self-checking) one fingerprinted copy.

    ``text`` holds the emitted module's assembly and is excluded from
    the JSON report (it lives in the output directory instead).
    """

    copy_id: str
    watermark: int
    seed: int
    ok: bool
    checked: bool = False
    self_check: bool = False
    output_ok: bool = False
    recognized: Optional[int] = None
    piece_count: int = 0
    bytes_emitted: int = 0
    byte_size_increase: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None
    text: Optional[str] = None

    @property
    def verified(self) -> bool:
        """The copy embedded cleanly and, if checks ran, passed both.

        ``checked`` records whether the in-worker self-check ran at
        all (batches may trade it away for throughput).
        """
        if not self.ok:
            return False
        return not self.checked or (self.self_check and self.output_ok)

    def to_dict(self) -> dict:
        return {
            "copy_id": self.copy_id,
            "watermark": self.watermark,
            "seed": self.seed,
            "ok": self.ok,
            "checked": self.checked,
            "self_check": self.self_check,
            "output_ok": self.output_ok,
            "recognized": self.recognized,
            "piece_count": self.piece_count,
            "bytes_emitted": self.bytes_emitted,
            "byte_size_increase": self.byte_size_increase,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
        }


@dataclass
class BatchReport:
    """Everything one batch run produced, minus the modules themselves."""

    workers: int
    copies: List[CopyResult] = field(default_factory=list)
    prepare_timings: StageTimings = field(default_factory=StageTimings)
    batch_timings: StageTimings = field(default_factory=StageTimings)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0

    @property
    def succeeded(self) -> int:
        return sum(1 for c in self.copies if c.verified)

    @property
    def failed(self) -> int:
        return len(self.copies) - self.succeeded

    @property
    def all_ok(self) -> bool:
        return bool(self.copies) and all(c.verified for c in self.copies)

    @property
    def copies_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return len(self.copies) / self.wall_seconds

    @property
    def total_bytes_emitted(self) -> int:
        return sum(c.bytes_emitted for c in self.copies)

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "copy_count": len(self.copies),
            "succeeded": self.succeeded,
            "failed": self.failed,
            "all_ok": self.all_ok,
            "wall_seconds": self.wall_seconds,
            "copies_per_second": self.copies_per_second,
            "total_bytes_emitted": self.total_bytes_emitted,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "prepare_stages": dict(self.prepare_timings.stages),
            "batch_stages": dict(self.batch_timings.stages),
            "copies": [c.to_dict() for c in self.copies],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    def summary(self) -> str:
        """A short human-readable account for CLI stderr."""
        lines = [
            f"batch: {len(self.copies)} copies, {self.workers} worker(s), "
            f"{self.wall_seconds:.2f}s "
            f"({self.copies_per_second:.2f} copies/s)",
            f"prepare: {self.prepare_timings.total():.2f}s "
            f"(cache {self.cache_hits} hit / {self.cache_misses} miss)",
            f"verified: {self.succeeded}/{len(self.copies)}, "
            f"{self.total_bytes_emitted} bytes emitted",
        ]
        for c in self.copies:
            if not c.verified:
                reason = c.error or (
                    "self-check failed" if not c.self_check
                    else "output mismatch"
                )
                lines.append(f"  FAILED {c.copy_id}: {reason}")
        return "\n".join(lines)
