"""Metrics and reporting for the batch fingerprinting pipeline.

The pipeline is judged on throughput (copies/second), so every run
records where the time went: per-stage wall time for the shared
preparation work, per-copy wall time for the mark-dependent work, and
the cache behaviour that separates the two. Each copy also carries its
verification outcome — every emitted module is immediately re-run and
re-recognized in-worker, so a report with ``all_ok`` set is a batch of
copies that are *known* to decode to their own fingerprints.

The timing internals live in :mod:`repro.obs.timing` now;
:class:`StageTimings` keeps its public name and pickle format but is a
reentrancy-safe accumulator that also feeds every completed stage into
the ambient metrics registry (``repro_stage_seconds{stage=...}``), so
a batch run's stage times are scrapeable without any call-site change.

Reports serialize to JSON (``BatchReport.write``) and back
(``BatchReport.from_json``) so deployments can archive one document
per fingerprinting run and tooling can re-load it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.metrics import get_registry
from ..obs.spans import Span
from ..obs.timing import StageAccumulator, Stopwatch
from ..obs.vmprofile import DispatchProfile

__all__ = [
    "BatchReport",
    "CopyResult",
    "StageTimings",
    "Stopwatch",
]


class StageTimings(StageAccumulator):
    """Accumulated wall time per named pipeline stage.

    Reentrancy-safe (see :class:`repro.obs.timing.StageAccumulator`):
    a stage re-entered recursively accumulates once per outermost
    entry, not once per exit. Completed intervals are additionally
    observed into the ambient registry's ``repro_stage_seconds``
    histogram, labelled by stage.
    """

    def __init__(self, stages: Optional[Dict[str, float]] = None) -> None:
        super().__init__()
        if stages:
            self.stages.update(stages)

    def _accumulate(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds
        get_registry().histogram(
            "repro_stage_seconds", "Pipeline stage wall time"
        ).observe(seconds, stage=stage)


@dataclass
class CopyResult:
    """Outcome of embedding (and self-checking) one fingerprinted copy.

    ``text`` holds the emitted module's assembly and is excluded from
    the JSON report (it lives in the output directory instead).
    ``traceback`` is the formatted Python traceback of a failed embed —
    the part of a failure the one-line ``error`` summary loses.
    ``error_kind`` classifies failures for the retry machinery:
    ``"permanent"`` (the embed itself raised — deterministic, retrying
    cannot help) versus ``"transient"`` (the worker was lost under the
    copy — a dead process, an injected kill — and retries were
    exhausted). ``attempts`` counts how many rounds the copy took;
    ``resumed`` marks a copy restored from a checkpoint journal
    instead of re-embedded (see ``run_batch(..., resume=True)``).
    ``spans``/``dispatch_counts`` are observability payloads recorded
    in the worker and aggregated by the parent; they travel on the
    object (across the process pool) but not into the JSON report —
    spans land in the ``--obs-out`` stream, dispatch counts in the
    batch-level profile.
    """

    copy_id: str
    watermark: int
    seed: int
    ok: bool
    checked: bool = False
    self_check: bool = False
    output_ok: bool = False
    recognized: Optional[int] = None
    piece_count: int = 0
    bytes_emitted: int = 0
    byte_size_increase: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None
    error_kind: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    resumed: bool = False
    text: Optional[str] = None
    spans: List[Span] = field(default_factory=list)
    dispatch_counts: Optional[List[int]] = None

    @property
    def verified(self) -> bool:
        """The copy embedded cleanly and, if checks ran, passed both.

        ``checked`` records whether the in-worker self-check ran at
        all (batches may trade it away for throughput).
        """
        if not self.ok:
            return False
        return not self.checked or (self.self_check and self.output_ok)

    def to_dict(self) -> dict:
        return {
            "copy_id": self.copy_id,
            "watermark": self.watermark,
            "seed": self.seed,
            "ok": self.ok,
            "checked": self.checked,
            "self_check": self.self_check,
            "output_ok": self.output_ok,
            "recognized": self.recognized,
            "piece_count": self.piece_count,
            "bytes_emitted": self.bytes_emitted,
            "byte_size_increase": self.byte_size_increase,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "error_kind": self.error_kind,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "resumed": self.resumed,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "CopyResult":
        return CopyResult(
            copy_id=doc["copy_id"],
            watermark=doc["watermark"],
            seed=doc.get("seed", 0),
            ok=doc.get("ok", False),
            checked=doc.get("checked", False),
            self_check=doc.get("self_check", False),
            output_ok=doc.get("output_ok", False),
            recognized=doc.get("recognized"),
            piece_count=doc.get("piece_count", 0),
            bytes_emitted=doc.get("bytes_emitted", 0),
            byte_size_increase=doc.get("byte_size_increase", 0),
            wall_seconds=doc.get("wall_seconds", 0.0),
            error=doc.get("error"),
            error_kind=doc.get("error_kind"),
            traceback=doc.get("traceback"),
            attempts=doc.get("attempts", 1),
            resumed=doc.get("resumed", False),
        )


@dataclass
class BatchReport:
    """Everything one batch run produced, minus the modules themselves."""

    workers: int
    copies: List[CopyResult] = field(default_factory=list)
    prepare_timings: StageTimings = field(default_factory=StageTimings)
    batch_timings: StageTimings = field(default_factory=StageTimings)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    dispatch_profile: Optional[DispatchProfile] = None
    #: How many extra submission rounds the executor ran after losing
    #: work to dead workers (0 = nothing was ever retried).
    retry_rounds: int = 0

    @property
    def succeeded(self) -> int:
        return sum(1 for c in self.copies if c.verified)

    @property
    def resumed(self) -> int:
        """Copies restored from a checkpoint journal, not re-embedded."""
        return sum(1 for c in self.copies if c.resumed)

    @property
    def failed(self) -> int:
        return len(self.copies) - self.succeeded

    @property
    def all_ok(self) -> bool:
        return bool(self.copies) and all(c.verified for c in self.copies)

    @property
    def copies_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return len(self.copies) / self.wall_seconds

    @property
    def total_bytes_emitted(self) -> int:
        return sum(c.bytes_emitted for c in self.copies)

    def to_dict(self) -> dict:
        doc = {
            "workers": self.workers,
            "copy_count": len(self.copies),
            "succeeded": self.succeeded,
            "failed": self.failed,
            "all_ok": self.all_ok,
            "wall_seconds": self.wall_seconds,
            "copies_per_second": self.copies_per_second,
            "total_bytes_emitted": self.total_bytes_emitted,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "retry_rounds": self.retry_rounds,
            "resumed": self.resumed,
            "prepare_stages": dict(self.prepare_timings.stages),
            "batch_stages": dict(self.batch_timings.stages),
            "copies": [c.to_dict() for c in self.copies],
        }
        if self.dispatch_profile is not None:
            doc["dispatch_profile"] = self.dispatch_profile.to_dict()
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "BatchReport":
        profile = doc.get("dispatch_profile")
        return BatchReport(
            workers=doc["workers"],
            copies=[CopyResult.from_dict(c) for c in doc.get("copies", [])],
            prepare_timings=StageTimings(doc.get("prepare_stages", {})),
            batch_timings=StageTimings(doc.get("batch_stages", {})),
            cache_hits=doc.get("cache", {}).get("hits", 0),
            cache_misses=doc.get("cache", {}).get("misses", 0),
            wall_seconds=doc.get("wall_seconds", 0.0),
            dispatch_profile=(
                DispatchProfile.from_dict(profile)
                if profile is not None
                else None
            ),
            retry_rounds=doc.get("retry_rounds", 0),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "BatchReport":
        return BatchReport.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    @staticmethod
    def read(path: str) -> "BatchReport":
        with open(path) as fp:
            return BatchReport.from_json(fp.read())

    def summary(self) -> str:
        """A short human-readable account for CLI stderr."""
        lines = [
            f"batch: {len(self.copies)} copies, {self.workers} worker(s), "
            f"{self.wall_seconds:.2f}s "
            f"({self.copies_per_second:.2f} copies/s)",
            f"prepare: {self.prepare_timings.total():.2f}s "
            f"(cache {self.cache_hits} hit / {self.cache_misses} miss)",
            f"verified: {self.succeeded}/{len(self.copies)}, "
            f"{self.total_bytes_emitted} bytes emitted",
        ]
        if self.retry_rounds:
            lines.append(
                f"recovered: {self.retry_rounds} retry round(s) after "
                f"worker loss"
            )
        if self.resumed:
            lines.append(
                f"resumed: {self.resumed} copies restored from checkpoint"
            )
        for c in self.copies:
            if not c.verified:
                reason = c.error or (
                    "self-check failed" if not c.self_check
                    else "output mismatch"
                )
                lines.append(f"  FAILED {c.copy_id}: {reason}")
        return "\n".join(lines)
