"""Batch fingerprinting pipeline: many marks from one preparation.

The paper's schemes are fingerprinting schemes — "every distributed
copy of a program encodes a unique integer" — so a vendor's embed cost
scales with the customer count. This package factors the pipeline at
its natural seam:

* :mod:`repro.pipeline.prepare` — run the watermark-independent work
  (trace, CFGs, placement mining, redundancy planning) once and
  snapshot it into a picklable :class:`PreparedProgram`;
* :mod:`repro.pipeline.batch` — fan per-copy embeds out over a
  process pool with deterministic per-copy seeding, per-copy error
  isolation, and an in-worker recognize self-check on every copy;
* :mod:`repro.pipeline.metrics` — stage timings, cache behaviour and
  per-copy verification outcomes, exported as a JSON report;
* :mod:`repro.pipeline.manifest` — the JSON job description consumed
  by ``python -m repro batch-embed``.

Typical use::

    from repro.pipeline import prepare, run_batch, sequential_specs

    prepared = prepare(module, key, watermark_bits=16)
    report = run_batch(prepared, sequential_specs(1000), workers=8,
                       outdir="dist/")
    assert report.all_ok
"""

from .batch import (
    CopySpec,
    default_chunksize,
    embed_copy,
    load_prepared_artifact,
    run_batch,
    sequential_specs,
    service_embed_copy,
    service_recognize,
)
from .manifest import BatchManifest, ManifestError, load_manifest, parse_manifest
from .metrics import BatchReport, CopyResult, StageTimings, Stopwatch
from .prepare import (
    FORMAT_VERSION,
    PrepareCache,
    PrepareError,
    PreparedProgram,
    prepare,
    prepare_fingerprint,
    resolve_piece_count,
)

__all__ = [
    "BatchManifest",
    "BatchReport",
    "CopyResult",
    "CopySpec",
    "FORMAT_VERSION",
    "ManifestError",
    "PrepareCache",
    "PrepareError",
    "PreparedProgram",
    "StageTimings",
    "Stopwatch",
    "default_chunksize",
    "embed_copy",
    "load_manifest",
    "load_prepared_artifact",
    "parse_manifest",
    "prepare",
    "prepare_fingerprint",
    "resolve_piece_count",
    "run_batch",
    "sequential_specs",
    "service_embed_copy",
    "service_recognize",
]
