"""Batch-job manifests: the on-disk description of a fingerprinting run.

A manifest is one JSON document naming the program, the key, the
fingerprint width and the copies to mint::

    {
      "module": "app.wasm",
      "secret": "vendor-master-key",
      "inputs": [25, 10],
      "bits": 16,
      "pieces": 12,
      "copies": [
        {"id": "acme-corp", "watermark": "0x3E9"},
        {"id": "globex",    "watermark": 2477, "seed": 7}
      ]
    }

``copies`` may instead be a generator form for "customers 1..N"::

    "copies": {"count": 16, "start_watermark": 1, "id_prefix": "customer"}

Optional fields: ``pieces`` (explicit redundancy), or ``piece_loss``
plus ``target_success`` to delegate the piece count to the Eq. (1)
planner; ``codec`` (``"gcrt"``/``"rs"``/``"rs-N"``/``"hybrid"``/
``"hybrid-N"``) selects the error-correcting scheme for every copy in
the job; ``seed`` per copy (defaults to the copy's position) salts the
embedder's RNG streams. ``module`` paths resolve relative to the
manifest file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bytecode_wm.keys import WatermarkKey
from ..codec import CodecError, resolve_codec
from .batch import CopySpec


class ManifestError(ValueError):
    """The manifest document is malformed or inconsistent."""


@dataclass
class BatchManifest:
    """A parsed, validated fingerprinting job."""

    module_path: str
    secret: bytes
    inputs: Tuple[int, ...]
    watermark_bits: int
    copies: List[CopySpec] = field(default_factory=list)
    pieces: Optional[int] = None
    piece_loss: Optional[float] = None
    target_success: float = 0.99
    codec: str = "gcrt"

    def key(self) -> WatermarkKey:
        return WatermarkKey(secret=self.secret, inputs=list(self.inputs))


def _parse_watermark(value: Any, where: str) -> int:
    if isinstance(value, bool):
        raise ManifestError(f"{where}: watermark must be an integer")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            raise ManifestError(
                f"{where}: cannot parse watermark {value!r}"
            ) from None
    raise ManifestError(f"{where}: watermark must be an integer")


def _parse_copies(doc: Any, bits: int) -> List[CopySpec]:
    if isinstance(doc, dict):
        count = doc.get("count")
        if not isinstance(count, int) or count < 1:
            raise ManifestError("copies.count must be a positive integer")
        start = doc.get("start_watermark", 1)
        if not isinstance(start, int) or start < 0:
            raise ManifestError("copies.start_watermark must be >= 0")
        prefix = doc.get("id_prefix", "copy")
        width = max(4, len(str(start + count - 1)))
        specs = [
            CopySpec(f"{prefix}-{start + i:0{width}d}", start + i, seed=i)
            for i in range(count)
        ]
    elif isinstance(doc, list):
        if not doc:
            raise ManifestError("copies list is empty")
        specs = []
        for index, entry in enumerate(doc):
            if not isinstance(entry, dict):
                raise ManifestError(f"copies[{index}] must be an object")
            where = f"copies[{index}]"
            if "id" not in entry or "watermark" not in entry:
                raise ManifestError(f"{where}: needs 'id' and 'watermark'")
            seed = entry.get("seed", index)
            if not isinstance(seed, int):
                raise ManifestError(f"{where}: seed must be an integer")
            try:
                specs.append(
                    CopySpec(
                        copy_id=str(entry["id"]),
                        watermark=_parse_watermark(entry["watermark"], where),
                        seed=seed,
                    )
                )
            except ValueError as exc:
                raise ManifestError(str(exc)) from None
    else:
        raise ManifestError("copies must be a list or a generator object")

    seen = set()
    for spec in specs:
        if spec.copy_id in seen:
            raise ManifestError(f"duplicate copy id {spec.copy_id!r}")
        seen.add(spec.copy_id)
        if spec.watermark >= (1 << bits):
            raise ManifestError(
                f"{spec.copy_id}: watermark {spec.watermark:#x} does not "
                f"fit in {bits} bits"
            )
    return specs


def parse_manifest(doc: Dict[str, Any], base_dir: str = ".") -> BatchManifest:
    """Validate a loaded JSON document into a :class:`BatchManifest`."""
    if not isinstance(doc, dict):
        raise ManifestError("manifest must be a JSON object")
    for name in ("module", "secret", "bits", "copies"):
        if name not in doc:
            raise ManifestError(f"manifest is missing {name!r}")
    if not isinstance(doc["module"], str) or not doc["module"]:
        raise ManifestError("module must be a non-empty path")
    if not isinstance(doc["secret"], str) or not doc["secret"]:
        raise ManifestError("secret must be a non-empty string")
    bits = doc["bits"]
    if not isinstance(bits, int) or bits < 1:
        raise ManifestError("bits must be a positive integer")
    inputs = doc.get("inputs", [])
    if not isinstance(inputs, list) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in inputs
    ):
        raise ManifestError("inputs must be a list of integers")
    pieces = doc.get("pieces")
    if pieces is not None and (not isinstance(pieces, int) or pieces < 1):
        raise ManifestError("pieces must be a positive integer")
    piece_loss = doc.get("piece_loss")
    if piece_loss is not None:
        if not isinstance(piece_loss, (int, float)) or not (
            0.0 <= piece_loss < 1.0
        ):
            raise ManifestError("piece_loss must be in [0, 1)")
    target = doc.get("target_success", 0.99)
    if not isinstance(target, (int, float)) or not 0.0 < target < 1.0:
        raise ManifestError("target_success must be in (0, 1)")
    codec = doc.get("codec", "gcrt")
    if not isinstance(codec, str):
        raise ManifestError("codec must be a string")
    try:
        codec = resolve_codec(codec).spec
    except CodecError as exc:
        raise ManifestError(str(exc)) from None

    return BatchManifest(
        module_path=os.path.normpath(os.path.join(base_dir, doc["module"])),
        secret=doc["secret"].encode(),
        inputs=tuple(inputs),
        watermark_bits=bits,
        copies=_parse_copies(doc["copies"], bits),
        pieces=pieces,
        piece_loss=float(piece_loss) if piece_loss is not None else None,
        target_success=float(target),
        codec=codec,
    )


def load_manifest(path: str) -> BatchManifest:
    """Read and validate a manifest file."""
    with open(path) as fp:
        try:
            doc = json.load(fp)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"not a JSON manifest: {exc}") from exc
    return parse_manifest(doc, base_dir=os.path.dirname(path) or ".")
