"""The parallel batch executor: N fingerprints from one preparation.

Per-copy work (split, encrypt, insert, verify, self-check) is pure
CPU with no shared mutable state, so it fans out over a
``ProcessPoolExecutor``. The :class:`~.prepare.PreparedProgram` ships
to each worker exactly once (via the pool initializer), not per task;
tasks themselves are tiny :class:`CopySpec` values and travel in
chunks to keep queue traffic off the critical path.

Determinism: each copy embeds with RNG streams salted by its
``(watermark, seed)`` alone — nothing about scheduling, worker count
or completion order feeds the embedding, so a batch is bit-for-bit
reproducible at any ``workers`` setting. Failures are isolated: a
copy that raises comes back as a failed :class:`.metrics.CopyResult`
(one-line ``error`` plus the full formatted ``traceback``) and the
rest of the batch proceeds.

Every worker re-runs its emitted copy on the key input and recognizes
the mark from that same cached trace (one execution serves both the
semantic check and the recognition self-check).

Observability: when the parent has tracing enabled, the batch span's
:class:`~repro.obs.spans.SpanContext` rides the pool initializer into
each worker; workers record their per-copy spans locally, return them
on the :class:`~.metrics.CopyResult`, and the parent grafts them back
(:meth:`~repro.obs.spans.Tracer.adopt`) — one coherent tree at any
``workers`` setting. With ``profile=True`` each self-check run counts
VM dispatches and the batch folds every copy's counts (plus the
prepared trace's, if it was profiled) into one
:class:`~repro.obs.vmprofile.DispatchProfile` on the report.
"""

from __future__ import annotations

import json
import os
import time
import traceback as traceback_module
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Tuple

from .. import faults, obs
from ..bytecode_wm.embedder import embed
from ..bytecode_wm.recognizer import recognize, recognize_with_report
from ..faults.injector import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs.spans import SpanContext, attach
from ..obs.vmprofile import DispatchProfile
from ..vm.assembler import assemble
from ..vm.disassembler import disassemble
from ..vm.interpreter import run_module
from .metrics import BatchReport, CopyResult, StageTimings, Stopwatch
from .prepare import PreparedProgram

#: Copy ids become output file names; keep them shell- and fs-safe.
_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


@dataclass(frozen=True)
class CopySpec:
    """One requested fingerprinted copy.

    ``seed`` salts the embedder's RNG streams so two copies carrying
    the same watermark still diversify their placements; identical
    (watermark, seed) pairs produce byte-identical modules.
    """

    copy_id: str
    watermark: int
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.copy_id or not set(self.copy_id) <= _ID_SAFE:
            raise ValueError(
                f"copy id {self.copy_id!r} must be non-empty and use only "
                f"letters, digits, '.', '_', '-'"
            )
        if self.watermark < 0:
            raise ValueError(f"{self.copy_id}: watermark must be non-negative")


def embed_copy(
    prepared: PreparedProgram,
    spec: CopySpec,
    self_check: bool = True,
    profile: bool = False,
    codec: Optional[str] = None,
) -> CopyResult:
    """Embed, emit and (by default) self-check one copy. Never raises.

    The embed reuses the prepared trace and site table (no re-trace);
    the self-check runs the marked copy once in branch mode and feeds
    that single trace to both the output comparison and the
    recognizer. ``self_check=False`` skips that run — a throughput
    knob for deployments that verify by sampling instead.
    ``profile=True`` counts VM dispatches during the self-check run
    and attaches the raw per-opcode array to the result.

    ``codec`` overrides the artifact's planned redundancy scheme for
    this copy (the per-request payload-vs-resilience knob the service
    exposes); ``None`` uses ``prepared.codec``. Preparation is codec-
    independent apart from the planned piece count, so overriding is
    always safe — recognition must then use the same codec.
    """
    start = time.perf_counter()
    active_codec = codec or prepared.codec
    try:
        with obs.span("copy", copy_id=spec.copy_id,
                      watermark=spec.watermark):
            with obs.span("copy.embed"):
                result = embed(
                    prepared.module,
                    spec.watermark,
                    prepared.key,
                    pieces=prepared.pieces,
                    watermark_bits=prepared.watermark_bits,
                    trace=prepared.trace,
                    sites=prepared.sites,
                    rng_salt=f"{spec.watermark}/{spec.seed}",
                    codec=active_codec,
                )
            recognized = None
            check_ok = output_ok = False
            dispatch_counts = None
            if self_check:
                with obs.span("copy.self_check") as sp:
                    check_run = run_module(
                        result.module,
                        prepared.key.inputs,
                        trace_mode="branch",
                        profile=profile,
                    )
                    dispatch_counts = check_run.dispatch_counts
                    found = recognize(
                        result.module,
                        prepared.key,
                        watermark_bits=prepared.watermark_bits,
                        trace=check_run.trace,
                        codec=active_codec,
                    )
                    recognized = found.value
                    check_ok = (
                        found.complete and found.value == spec.watermark
                    )
                    output_ok = (
                        list(check_run.output)
                        == list(prepared.baseline_output)
                    )
                    sp.set(steps=check_run.steps, recognized=check_ok,
                           output_ok=output_ok)
            text = disassemble(result.module)
        return CopyResult(
            copy_id=spec.copy_id,
            watermark=spec.watermark,
            seed=spec.seed,
            ok=True,
            checked=self_check,
            self_check=check_ok,
            output_ok=output_ok,
            recognized=recognized,
            piece_count=result.piece_count,
            bytes_emitted=len(text.encode()),
            byte_size_increase=result.byte_size_increase,
            wall_seconds=time.perf_counter() - start,
            text=text,
            dispatch_counts=dispatch_counts,
        )
    except Exception as exc:  # per-copy isolation: report, don't propagate
        # An exception raised *inside* the embed is deterministic in
        # (watermark, seed): re-running it would fail identically, so
        # the failure is classified permanent and never retried.
        return CopyResult(
            copy_id=spec.copy_id,
            watermark=spec.watermark,
            seed=spec.seed,
            ok=False,
            wall_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="permanent",
            traceback=traceback_module.format_exc(),
        )


# -- process-pool plumbing --------------------------------------------------

_WORKER_PREPARED: Optional[PreparedProgram] = None
_WORKER_SELF_CHECK: bool = True
_WORKER_PROFILE: bool = False
_WORKER_PARENT: Optional[SpanContext] = None


def _init_worker(
    prepared: PreparedProgram,
    self_check: bool,
    profile: bool = False,
    parent: Optional[SpanContext] = None,
    fault_plan: Optional[FaultPlan] = None,
    hub_config: Optional[obs.HubConfig] = None,
) -> None:
    global _WORKER_PREPARED, _WORKER_SELF_CHECK
    global _WORKER_PROFILE, _WORKER_PARENT
    _WORKER_PREPARED = prepared
    _WORKER_SELF_CHECK = self_check
    _WORKER_PROFILE = profile
    _WORKER_PARENT = parent
    if fault_plan is not None:
        # A parent with an armed fault plan arms every worker too —
        # that is how injected kills land inside real pool processes.
        faults.install(fault_plan)
    if hub_config is not None:
        # Worker-side events (fault firings, per-copy telemetry)
        # append to the parent's journal; the worker never rotates it
        # and never journals spans (the parent does, on adopt).
        obs.set_hub(obs.TelemetryHub(hub_config))
    if parent is not None:
        # The parent batch span's context travels in; record worker
        # spans locally and hand them back on each CopyResult.
        obs.enable_tracing()


def _embed_in_worker(spec: CopySpec) -> CopyResult:
    assert _WORKER_PREPARED is not None, "worker initializer did not run"
    # The canonical worker-death site: "kill"/"raise"/"delay" rules
    # here simulate a worker lost mid-task, *outside* the per-copy
    # exception isolation of embed_copy.
    faults.check("batch.worker.task", copy_id=spec.copy_id)
    if _WORKER_PARENT is None:
        return embed_copy(
            _WORKER_PREPARED, spec, _WORKER_SELF_CHECK, _WORKER_PROFILE
        )
    tracer = obs.get_tracer()
    with attach(_WORKER_PARENT):
        result = embed_copy(
            _WORKER_PREPARED, spec, _WORKER_SELF_CHECK, _WORKER_PROFILE
        )
    result.spans = tracer.drain()
    return result


def _embed_chunk(specs: List[CopySpec]) -> List[CopyResult]:
    """One pool task: embed a chunk of specs, return all their results.

    Chunks are submitted as individual futures (not ``pool.map``) so
    the parent can tell exactly which specs went down with a dead
    worker and resubmit only those.
    """
    return [_embed_in_worker(spec) for spec in specs]


# -- service workers: artifacts load from the store, by digest --------------
#
# The serving daemon (repro.serve.daemon) dispatches one job per HTTP
# request instead of one batch per pool, so the PreparedProgram cannot
# ride the pool initializer: requests for different releases share the
# same workers. Workers instead load artifacts from the persistent
# store lazily, keyed by content digest, through a small per-process
# cache — each worker pays the unpickle once per release it serves.

#: Per-process artifact cache: releases a worker has already loaded.
#: Small and FIFO like PrepareCache: a worker serves few releases.
_ARTIFACT_CACHE: "OrderedDict[Tuple[str, str], PreparedProgram]" = OrderedDict()
_ARTIFACT_CACHE_MAX = 4


def load_prepared_artifact(store_root: str, digest: str) -> PreparedProgram:
    """Load an artifact from the store, memoized per process.

    The cache key includes the store root so one process can serve
    multiple stores (tests do; a daemon normally will not).
    ``store_root`` may name a plain store or a sharded fabric — the
    factory routes either way, so fleet workers pointed at a fabric
    need no special casing.
    """
    key = (store_root, digest)
    cached = _ARTIFACT_CACHE.get(key)
    if cached is not None:
        _ARTIFACT_CACHE.move_to_end(key)
        return cached
    from ..serve.fabric import open_store  # deferred: serve imports us

    prepared = open_store(store_root).load(digest)
    while len(_ARTIFACT_CACHE) >= _ARTIFACT_CACHE_MAX:
        _ARTIFACT_CACHE.popitem(last=False)
    _ARTIFACT_CACHE[key] = prepared
    return prepared


def service_embed_copy(
    store_root: str,
    digest: str,
    spec: CopySpec,
    self_check: bool = True,
    parent: Optional[SpanContext] = None,
    drain_spans: bool = False,
    codec: Optional[str] = None,
) -> CopyResult:
    """One serving-daemon embed job: artifact by digest, copy by spec.

    ``parent`` grafts the job's spans under the request span.
    ``drain_spans=True`` is the process-pool mode: the job records
    spans on a worker-local tracer and hands them back on the result
    for the parent to adopt. Thread-pool mode records straight into
    the server's own tracer and leaves ``result.spans`` empty.
    ``codec`` is the request's per-copy override; ``None`` embeds with
    the artifact's own codec.
    """
    prepared = load_prepared_artifact(store_root, digest)
    if parent is None:
        return embed_copy(prepared, spec, self_check, codec=codec)
    if drain_spans:
        tracer = obs.get_tracer()
        if not tracer.enabled:
            tracer = obs.enable_tracing()
        tracer.drain()  # a prior job's leavings must not leak in
        with attach(parent):
            result = embed_copy(prepared, spec, self_check, codec=codec)
        result.spans = tracer.drain()
        return result
    with attach(parent):
        return embed_copy(prepared, spec, self_check, codec=codec)


def service_recognize(
    store_root: str,
    digest: str,
    module_text: str,
    parent: Optional[SpanContext] = None,
    drain_spans: bool = False,
    codec: Optional[str] = None,
) -> Dict[str, Any]:
    """One serving-daemon recognize job, against an artifact's key.

    The artifact supplies the key and fingerprint width — a recognize
    request names a release and ships only the (possibly attacked)
    module text. ``codec`` overrides the artifact's codec for this
    attempt (needed when the copy was embedded with a per-request
    override). Returns plain data so it travels home from a process
    pool: the recovered value, the diagnostic funnel, and (in
    process-pool mode) the job's spans as dicts.
    """

    def run() -> Dict[str, Any]:
        prepared = load_prepared_artifact(store_root, digest)
        module = assemble(module_text)
        found, report = recognize_with_report(
            module, prepared.key, watermark_bits=prepared.watermark_bits,
            codec=codec or prepared.codec,
        )
        value = found.value if found.complete else None
        return {
            "complete": found.complete,
            "value": value,
            "report": report.to_dict(),
            "spans": [],
        }

    if parent is None:
        return run()
    if drain_spans:
        tracer = obs.get_tracer()
        if not tracer.enabled:
            tracer = obs.enable_tracing()
        tracer.drain()
        with attach(parent):
            doc = run()
        doc["spans"] = [sp.to_dict() for sp in tracer.drain()]
        return doc
    with attach(parent):
        return run()


def default_chunksize(copy_count: int, workers: int) -> int:
    """Chunk the work queue: ~4 chunks per worker balances queue
    overhead against load-balancing granularity."""
    return max(1, copy_count // max(1, workers * 4))


# -- checkpoint journal ------------------------------------------------------


def read_checkpoint(path: str) -> List[CopyResult]:
    """Parse a checkpoint journal, tolerating a torn final line.

    The journal is JSONL appended result-by-result; a process killed
    mid-write leaves at most one truncated trailing line, which is
    dropped (that copy simply re-embeds on resume).
    """
    results: List[CopyResult] = []
    try:
        with open(path) as fp:
            lines = fp.read().splitlines()
    except OSError:
        return results
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
            results.append(CopyResult.from_dict(doc))
        except (ValueError, KeyError, TypeError):
            continue  # torn write; the copy re-runs
    return results


def _journal_result(journal: Optional[TextIO], result: CopyResult) -> None:
    if journal is None:
        return
    doc = result.to_dict()
    journal.write(json.dumps(doc, sort_keys=True) + "\n")
    journal.flush()
    try:
        os.fsync(journal.fileno())
    except OSError:
        pass  # a best-effort journal beats none; resume re-embeds losses


def _run_round(
    prepared: PreparedProgram,
    pending: List[CopySpec],
    workers: int,
    chunksize: Optional[int],
    self_check: bool,
    profile: bool,
    attempt: int,
    record: Callable[[CopyResult], None],
    tracer: Any,
) -> Dict[str, str]:
    """Run one submission round over ``pending``; record what lands.

    Returns a map of ``copy_id -> error text`` for specs whose worker
    died under them this round (they stay pending). Specs that produce
    a :class:`CopyResult` — success or permanent failure — are handed
    to ``record`` and leave the pending set.
    """
    errors: Dict[str, str] = {}

    def stamp(result: CopyResult) -> CopyResult:
        result.attempts = attempt
        return result

    if workers == 1 or len(pending) <= 1:
        for spec in pending:
            try:
                faults.check("batch.worker.task", copy_id=spec.copy_id)
                record(stamp(embed_copy(prepared, spec, self_check, profile)))
            except Exception as exc:
                # In-process there is no worker to lose, but an injected
                # control fault here still counts as transient loss.
                errors[spec.copy_id] = f"{type(exc).__name__}: {exc}"
        return errors

    chunk = chunksize or default_chunksize(len(pending), workers)
    chunks = [pending[i:i + chunk] for i in range(0, len(pending), chunk)]
    parent = obs.current_context() if tracer.enabled else None
    hub = obs.get_hub()
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(prepared, self_check, profile, parent, faults.get_plan(),
                  hub.worker_config() if hub is not None else None),
    ) as pool:
        futures: Dict[Future, List[CopySpec]] = {
            pool.submit(_embed_chunk, group): group for group in chunks
        }
        for future in as_completed(futures):
            group = futures[future]
            try:
                for result in future.result():
                    record(stamp(result))
            except Exception as exc:
                # The whole chunk went down with its worker (e.g. a
                # BrokenProcessPool): every spec in it stays pending.
                for spec in group:
                    errors[spec.copy_id] = f"{type(exc).__name__}: {exc}"
    return errors


def _lost_copy_result(
    spec: CopySpec, attempts: int, error: Optional[str]
) -> CopyResult:
    """The exactly-one-result guarantee's last resort: a spec whose
    worker died on every attempt still yields a (failed) result."""
    return CopyResult(
        copy_id=spec.copy_id,
        watermark=spec.watermark,
        seed=spec.seed,
        ok=False,
        error=error or "worker lost before the copy completed",
        error_kind="transient",
        attempts=attempts,
    )


def run_batch(
    prepared: PreparedProgram,
    copies: Iterable[CopySpec],
    workers: int = 1,
    outdir: Optional[str] = None,
    chunksize: Optional[int] = None,
    cache_hits: int = 0,
    cache_misses: int = 1,
    self_check: bool = True,
    profile: bool = False,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> BatchReport:
    """Embed every requested copy, in parallel when ``workers > 1``.

    ``workers == 1`` runs in-process (no pool, no pickling) — the
    output is identical either way. When ``outdir`` is given each
    successful copy is written to ``<outdir>/<copy_id>.wasm``.
    Results keep the order of ``copies`` regardless of scheduling.
    ``self_check=False`` skips the per-copy re-run + recognition.
    ``profile=True`` aggregates per-opcode VM dispatch counts from
    every self-check run (and the prepared trace, when it was
    profiled) into ``report.dispatch_profile``.

    Resilience:

    * **every submitted spec yields exactly one result** — verified,
      failed, or restored-from-checkpoint; work lost to a dead worker
      is resubmitted, and a spec whose worker dies on every attempt
      comes back as a *transient* failure rather than vanishing;
    * **transient failures retry** — a dead pool worker (or an
      injected kill, see :mod:`repro.faults`) triggers resubmission of
      only the unfinished specs, on a fresh pool, after a capped
      jittered backoff from ``retry`` (default :class:`RetryPolicy`).
      Failures *inside* a copy are deterministic, classified
      permanent, and never retried;
    * **checkpoint/resume** — with ``checkpoint=path`` every completed
      copy (and its output file, when ``outdir`` is set) is journaled
      to a JSONL file as it lands; ``resume=True`` then skips copies
      the journal already shows as verified, so a batch killed mid-run
      finishes without re-embedding its survivors.

    A fault plan armed in the parent (``faults.install``) rides the
    pool initializer into every worker.
    """
    specs = list(copies)
    if workers < 1:
        raise ValueError("workers must be positive")
    if resume and not checkpoint:
        raise ValueError("resume=True requires a checkpoint path")
    seen = set()
    for spec in specs:
        if spec.copy_id in seen:
            raise ValueError(f"duplicate copy id {spec.copy_id!r}")
        seen.add(spec.copy_id)
    policy = retry or RetryPolicy()

    tracer = obs.get_tracer()
    timings = StageTimings()
    watch = Stopwatch()
    results: Dict[str, CopyResult] = {}
    retry_rounds = 0

    journal: Optional[TextIO] = None
    if checkpoint:
        if resume and os.path.exists(checkpoint):
            for prior in read_checkpoint(checkpoint):
                if prior.copy_id in seen and prior.verified:
                    prior.resumed = True
                    prior.text = None  # the file already exists on disk
                    results[prior.copy_id] = prior
        checkpoint_dir = os.path.dirname(checkpoint)
        if checkpoint_dir:
            os.makedirs(checkpoint_dir, exist_ok=True)
        journal = open(checkpoint, "a")

    if outdir is not None:
        os.makedirs(outdir, exist_ok=True)

    def record(result: CopyResult) -> None:
        """Land one result: output file first, then the journal line,
        so a journaled copy always has its module on disk."""
        results[result.copy_id] = result
        if outdir is not None and result.text is not None:
            with timings.measure("write"):
                path = os.path.join(outdir, f"{result.copy_id}.wasm")
                with open(path, "w") as fp:
                    fp.write(result.text)
        _journal_result(journal, result)
        obs.emit(
            "copy",
            result.copy_id,
            ok=result.ok,
            verified=result.verified,
            attempts=result.attempts,
            wall_seconds=result.wall_seconds,
            error_kind=result.error_kind,
        )

    try:
        with watch, obs.span("batch", copies=len(specs), workers=workers):
            with timings.measure("embed"):
                pending = [s for s in specs if s.copy_id not in results]
                attempt = 1
                while pending:
                    round_errors = _run_round(
                        prepared, pending, workers, chunksize,
                        self_check, profile, attempt, record, tracer,
                    )
                    pending = [
                        s for s in pending if s.copy_id not in results
                    ]
                    if not pending:
                        break
                    if not policy.retries_left(attempt):
                        for spec in pending:
                            record(_lost_copy_result(
                                spec, attempt,
                                round_errors.get(spec.copy_id),
                            ))
                        break
                    # Transient loss: back off, then resubmit only the
                    # unfinished specs on a fresh pool.
                    retry_rounds += 1
                    obs.get_registry().counter(
                        "repro_batch_retries_total",
                        "Copies resubmitted after a worker loss",
                    ).inc(len(pending))
                    obs.emit(
                        "batch.retry",
                        f"round-{retry_rounds}",
                        count=len(pending),
                        attempt=attempt,
                    )
                    time.sleep(policy.delay(attempt))
                    attempt += 1
    finally:
        if journal is not None:
            journal.close()

    results_in_order = [results[s.copy_id] for s in specs]

    if tracer.enabled:
        for copy in results_in_order:
            if copy.spans:
                tracer.adopt(copy.spans)
                copy.spans = []

    dispatch_profile = None
    if profile:
        dispatch_profile = DispatchProfile()
        if prepared.dispatch_counts is not None:
            dispatch_profile.merge(DispatchProfile.from_counts(
                prepared.dispatch_counts,
                wall_seconds=prepared.timings.stages.get("trace", 0.0),
            ))
        for copy in results_in_order:
            if copy.dispatch_counts is not None:
                dispatch_profile.merge(
                    DispatchProfile.from_counts(copy.dispatch_counts)
                )

    return BatchReport(
        workers=workers,
        copies=results_in_order,
        prepare_timings=prepared.timings,
        batch_timings=timings,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        wall_seconds=watch.seconds,
        dispatch_profile=dispatch_profile,
        retry_rounds=retry_rounds,
    )


def sequential_specs(
    count: int,
    start_watermark: int = 1,
    id_prefix: str = "copy",
    seed: int = 0,
) -> List[CopySpec]:
    """``count`` specs with consecutive watermarks — the common
    "customer 1..N" fingerprinting shape, used by manifests and tests."""
    if count < 1:
        raise ValueError("count must be positive")
    width = max(4, len(str(start_watermark + count - 1)))
    return [
        CopySpec(
            copy_id=f"{id_prefix}-{start_watermark + i:0{width}d}",
            watermark=start_watermark + i,
            seed=seed + i,
        )
        for i in range(count)
    ]
